// Figure 5 reproduction: log10-transformed execution time of the 26 ATC
// case-study queries (c1-1 .. c5-7) on three engines:
//   * AIQL            — optimized storage + optimized engine
//   * PostgreSQL      — generic SQL engine on *unoptimized* flat storage
//                       (raw denormalized audit_log, no dedup/partitioning)
//   * Neo4j           — traversal-based graph engine
//
// Paper reference: AIQL 124x faster than PostgreSQL and 157x than Neo4j in
// total; Neo4j generally slower than PostgreSQL on multi-join behaviors.
//
//   $ ./build/bench/bench_fig5

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "engine/aiql_engine.h"
#include "graph/graph_executor.h"
#include "graph/graph_store.h"
#include "query/parser.h"
#include "simulator/queries_c.h"
#include "sql/catalog.h"
#include "sql/sql_executor.h"
#include "sql/translator.h"

using namespace aiql;
using namespace aiql_bench;

int main() {
  ScenarioOptions options = BenchScenarioOptions();
  std::printf("== Figure 5: AIQL vs PostgreSQL (w/o optimized storage) vs "
              "Neo4j ==\n");
  std::printf("generating ATC case-study scenario (clients=%d "
              "rate=%.0f/host/h)...\n",
              options.num_clients, options.events_per_host_per_hour);
  AtcScenarioData data = GenerateAtcScenario(options);

  // AIQL runs on the optimized store; the baselines get the raw one.
  auto optimized = IngestRecords(data.records, StorageOptions{});
  StorageOptions raw_options;
  raw_options.enable_partitioning = false;
  raw_options.dedup_window = 0;
  auto raw = IngestRecords(data.records, raw_options);
  if (!optimized.ok() || !raw.ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  std::printf("optimized store: %llu events; raw store: %llu events\n\n",
              static_cast<unsigned long long>(
                  optimized->stats().total_events),
              static_cast<unsigned long long>(raw->stats().total_events));

  AiqlEngine aiql_engine(&*optimized);
  FlatCatalog flat(&*raw);
  SqlExecutor sql_engine(&flat);
  GraphStore graph(&*raw);
  GraphExecutor graph_engine(&graph);

  TablePrinter table({"query", "aiql (s)", "pg (s)", "neo4j (s)",
                      "log10 aiql", "log10 pg", "log10 neo4j", "rows"});
  int64_t aiql_total = 0, sql_total = 0, graph_total = 0;
  int graph_slower_than_pg = 0;
  bool mismatch = false;

  for (const CatalogQuery& query : AtcInvestigationQueries(data.truth)) {
    size_t aiql_rows = 0, sql_rows = 0, graph_rows = 0;
    int64_t aiql_us = TimeUs([&] {
      auto result = aiql_engine.Execute(query.text);
      if (result.ok()) aiql_rows = result->table.num_rows();
    });

    auto parsed = ParseAiql(query.text);
    auto translated = TranslateToSql(*parsed, SqlSchemaMode::kFlat);
    if (!translated.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   translated.status().ToString().c_str());
      return 1;
    }
    int64_t sql_us = TimeUs([&] {
      auto result = sql_engine.Execute(translated->sql);
      if (result.ok()) sql_rows = result->table.num_rows();
    });
    int64_t graph_us = TimeUs([&] {
      auto result = graph_engine.ExecuteAiql(query.text);
      if (result.ok()) graph_rows = result->table.num_rows();
    });
    if (sql_rows != aiql_rows || graph_rows != aiql_rows) mismatch = true;
    if (graph_us > sql_us) ++graph_slower_than_pg;

    aiql_total += aiql_us;
    sql_total += sql_us;
    graph_total += graph_us;
    char la[16], lp[16], ln[16];
    std::snprintf(la, sizeof(la), "%.2f", Log10Seconds(aiql_us));
    std::snprintf(lp, sizeof(lp), "%.2f", Log10Seconds(sql_us));
    std::snprintf(ln, sizeof(ln), "%.2f", Log10Seconds(graph_us));
    table.AddRow({query.id, FormatSeconds(aiql_us), FormatSeconds(sql_us),
                  FormatSeconds(graph_us), la, lp, ln,
                  std::to_string(aiql_rows)});
  }

  std::printf("%s", table.ToString().c_str());
  double aiql_s = static_cast<double>(aiql_total) / 1e6;
  std::printf("\ntotals: AIQL %.2f s | PostgreSQL %.2f s (%.0fx) | "
              "Neo4j %.2f s (%.0fx)\n",
              aiql_s, static_cast<double>(sql_total) / 1e6,
              static_cast<double>(sql_total) / (aiql_total > 0 ? aiql_total : 1),
              static_cast<double>(graph_total) / 1e6,
              static_cast<double>(graph_total) /
                  (aiql_total > 0 ? aiql_total : 1));
  std::printf("paper: 124x (PostgreSQL), 157x (Neo4j); Neo4j generally "
              "slower than PostgreSQL\n");
  std::printf("Neo4j slower than PostgreSQL on %d of 26 queries\n",
              graph_slower_than_pg);
  if (mismatch) {
    std::printf("WARNING: row-count mismatch between engines detected\n");
    return 1;
  }
  return 0;
}
