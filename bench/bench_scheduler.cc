// Ablation of the engine's two key scheduling insights (paper §2.3):
//   1. pruning-power pattern reordering (+ semi-join / temporal pruning)
//   2. spatial/temporal partition parallelism
//
// Runs the multi-pattern investigation queries under engine variants and
// reports per-variant totals. "all-off" approximates what a generic
// executor does with AIQL's storage.
//
//   $ ./build/bench/bench_scheduler

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table_printer.h"
#include "engine/aiql_engine.h"
#include "simulator/queries_a.h"

using namespace aiql;
using namespace aiql_bench;

namespace {

struct Variant {
  const char* name;
  EngineOptions options;
};

}  // namespace

int main() {
  ScenarioOptions scenario = BenchScenarioOptions();
  // Scheduling effects need enough events per partition for parallel scans
  // to amortize dispatch; default to a 10x denser corpus than the other
  // harnesses (override with AIQL_BENCH_RATE as usual).
  if (std::getenv("AIQL_BENCH_RATE") == nullptr) {
    scenario.events_per_host_per_hour = 20000;
  }
  std::printf("== Scheduler ablation (pruning-power reordering, semi-join "
              "pruning, parallelism) ==\n");
  DemoScenarioData data = GenerateDemoScenario(scenario);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) return 1;
  std::printf("events: %llu\n\n",
              static_cast<unsigned long long>(db->stats().total_events));

  EngineOptions full;
  EngineOptions no_reorder = full;
  no_reorder.enable_reordering = false;
  EngineOptions no_semijoin = full;
  no_semijoin.enable_semi_join = false;
  no_semijoin.enable_temporal_pruning = false;
  EngineOptions sequential = full;
  sequential.enable_parallelism = false;
  EngineOptions all_off;
  all_off.enable_reordering = false;
  all_off.enable_semi_join = false;
  all_off.enable_temporal_pruning = false;
  all_off.enable_parallelism = false;

  std::vector<Variant> variants = {
      {"full", full},
      {"no-reorder", no_reorder},
      {"no-semijoin", no_semijoin},
      {"sequential", sequential},
      {"all-off", all_off},
  };

  // Multi-pattern queries exercise reordering / semi-join pruning; the two
  // scan-heavy triage sweeps at the end exercise partition parallelism.
  std::vector<CatalogQuery> queries;
  for (CatalogQuery& query : DemoInvestigationQueries(data.truth)) {
    if (query.id == "a1-3" || query.id == "a2-2" || query.id == "a3-3" ||
        query.id == "a4-4" || query.id == "a5-5") {
      queries.push_back(std::move(query));
    }
  }
  queries.push_back(CatalogQuery{
      "sweep-1", "triage: every program writing files, enterprise-wide",
      "(at \"05/10/2018\")\nproc p write file f\nreturn distinct p", 1});
  queries.push_back(CatalogQuery{
      "sweep-2", "triage: every program with outbound traffic",
      "(at \"05/10/2018\")\nproc p write ip i\nreturn distinct p", 1});

  TablePrinter table({"variant", "total (s)", "slowdown vs full",
                      "events scanned"});
  int64_t full_total = 0;
  for (const Variant& variant : variants) {
    AiqlEngine engine(&*db, variant.options);
    int64_t total = 0;
    uint64_t scanned = 0;
    constexpr int kRepetitions = 5;
    for (const CatalogQuery& query : queries) {
      (void)engine.Execute(query.text);  // warm-up
      for (int rep = 0; rep < kRepetitions; ++rep) {
        total += TimeUs([&] {
          auto result = engine.Execute(query.text);
          if (result.ok() && rep == 0) {
            scanned += result->stats.events_scanned;
          }
        });
      }
    }
    if (variant.options.enable_reordering &&
        variant.options.enable_parallelism &&
        variant.options.enable_semi_join) {
      full_total = total;
    }
    char slowdown[16];
    std::snprintf(slowdown, sizeof(slowdown), "%.2fx",
                  full_total > 0 ? static_cast<double>(total) /
                                       static_cast<double>(full_total)
                                 : 1.0);
    table.AddRow({variant.name, FormatSeconds(total), slowdown,
                  std::to_string(scanned)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nnote: 'events scanned' shrinks with semi-join/temporal "
              "pruning; wall-clock shrinks further with parallel partition "
              "scans.\n");
  return 0;
}
