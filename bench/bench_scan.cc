// Scan-kernel micro-benchmarks (PR 8): per-kernel throughput of the three
// partition scan strategies — posting-list merge, row-at-a-time columnar
// (batch kernels off), and batch-at-a-time columnar kernels — under
// selective and unselective candidate sets, plus the dictionary-match cache
// behind the id-set predicates.
//
//   $ ./build/bench/bench_scan

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/like_matcher.h"
#include "engine/scan.h"
#include "simulator/scenario.h"

using namespace aiql;

namespace {

const AuditDatabase& SharedDb() {
  static const AuditDatabase* db = [] {
    ScenarioOptions options;
    options.num_clients = 4;
    options.events_per_host_per_hour = 20000;  // high-rate: dense partitions
    options.duration = 2 * kHour;
    DemoScenarioData data = GenerateDemoScenario(options);
    auto result = IngestRecords(data.records, StorageOptions{});
    return new AuditDatabase(std::move(result).value());
  }();
  return *db;
}

/// Candidate set over process ids keeping roughly 1/`keep_one_in` entities;
/// 0 = unconstrained (no candidate set).
CompiledPattern ScanPattern(const AuditDatabase& db, OpMask mask,
                            uint32_t keep_one_in) {
  CompiledPattern pattern;
  pattern.op_mask = mask;
  pattern.subject.type = EntityType::kProcess;
  pattern.object.type = EntityType::kFile;
  if (keep_one_in > 0) {
    size_t universe = db.entities().NumEntities(EntityType::kProcess);
    EntitySet candidates(universe);
    for (size_t id = 0; id < universe; id += keep_one_in) {
      candidates.Add(static_cast<uint32_t>(id));
    }
    pattern.subject.candidates = std::move(candidates);
    pattern.subject.has_constraints = true;
  }
  return pattern;
}

/// One full sweep over every sealed partition with the given strategy knobs.
/// state.range(0): 0 = unselective (all ops, no candidates),
///                 1 = selective candidates (all ops, 1-in-16 processes).
void ScanSweep(benchmark::State& state, OpMask mask, bool batch_kernels) {
  const AuditDatabase& db = SharedDb();
  CompiledPattern pattern =
      ScanPattern(db, mask, state.range(0) == 0 ? 0 : 16);
  uint64_t inspected = 0;
  size_t matches = 0;
  for (auto _ : state) {
    inspected = 0;
    matches = 0;
    db.ForEachPartition(
        TimeRange{INT64_MIN, INT64_MAX}, std::nullopt,
        [&](const PartitionKey&, const EventPartition& partition) {
          std::vector<const Event*> out;
          inspected += ScanPartition(partition, pattern,
                                     TimeRange{INT64_MIN, INT64_MAX}, nullptr,
                                     false, &out, nullptr, batch_kernels);
          matches += out.size();
        });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(inspected) *
                          state.iterations());
  state.SetLabel((state.range(0) == 0 ? "unselective" : "selective") +
                 std::string(" matches=") + std::to_string(matches));
}

// Wide op mask => the columnar strategy wins; the kernel flag picks the
// batch vs row-at-a-time inner loop.
void BM_ColumnarRowAtATime(benchmark::State& state) {
  ScanSweep(state, static_cast<OpMask>(0x1FF), false);
}
BENCHMARK(BM_ColumnarRowAtATime)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ColumnarBatchKernel(benchmark::State& state) {
  ScanSweep(state, static_cast<OpMask>(0x1FF), true);
}
BENCHMARK(BM_ColumnarBatchKernel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Single rare op => the posting-list merge path (identical either way; the
// kernel flag only affects the columnar inner loop).
void BM_PostingMerge(benchmark::State& state) {
  ScanSweep(state, OpBit(OpType::kExecute), true);
}
BENCHMARK(BM_PostingMerge)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Dictionary-match cache: cold = fresh cache each iteration (full dictionary
// sweep), warm = repeated pattern (version-checked hit, no matching).
void BM_DictionaryMatchCold(benchmark::State& state) {
  const AuditDatabase& db = SharedDb();
  LikeMatcher matcher("%powershell%");
  for (auto _ : state) {
    DictionaryMatchCache cache;
    auto match = cache.Match(db.entities().exe_names(), matcher);
    benchmark::DoNotOptimize(match->bits.Count());
  }
}
BENCHMARK(BM_DictionaryMatchCold);

void BM_DictionaryMatchWarm(benchmark::State& state) {
  const AuditDatabase& db = SharedDb();
  LikeMatcher matcher("%powershell%");
  for (auto _ : state) {
    auto match = db.entities().MatchDictionary(DictAttr::kExeName, matcher);
    benchmark::DoNotOptimize(match.get());
  }
}
BENCHMARK(BM_DictionaryMatchWarm);

}  // namespace

BENCHMARK_MAIN();
