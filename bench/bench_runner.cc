// Machine-readable benchmark runner: executes the fig4 + fig5 AIQL query
// suites and the storage micro-bench at a pinned seed/rate and writes one
// JSON document (see README.md "Benchmark JSON schema"). With --baseline it
// embeds per-query before/after speedups against a previous run's JSON, so
// every perf PR records its trajectory in a single checked-in file.
//
//   $ ./build/bench/bench_runner --label before --out /tmp/before.json
//   $ ./build/bench/bench_runner --label after
//         --baseline /tmp/before.json --out BENCH_PR2.json
//
// Scale knobs are the usual AIQL_BENCH_* environment variables (see
// bench_common.h) plus AIQL_BENCH_REPEAT (per-query repetitions, best-of).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "engine/aiql_engine.h"
#include "engine/scan.h"
#include "query/parser.h"
#include "simulator/queries_a.h"
#include "simulator/queries_c.h"
#include "simulator/replay.h"
#include "simulator/scenario.h"
#include "storage/shard_map.h"
#include "storage/snapshot.h"
#include "storage/tiered.h"

using namespace aiql;
using namespace aiql_bench;

namespace {

struct QueryRun {
  std::string suite;
  std::string id;
  int64_t wall_us = 0;
  size_t rows = 0;
  uint64_t events_scanned = 0;
  uint64_t events_matched = 0;
  uint64_t partitions_scanned = 0;
  int patterns = 0;
  bool op_selective = false;  ///< every pattern constrains <= 2 operations
  bool like_heavy = false;    ///< some entity constraint carries a wildcard
  bool failed = false;        ///< some repetition returned an error
  std::optional<int64_t> baseline_us;
};

struct StorageRun {
  int64_t ingest_us = 0;
  int64_t scan_us = 0;
  uint64_t raw_events = 0;
  uint64_t stored_events = 0;
  uint64_t partitions = 0;
  uint64_t scan_checksum = 0;  ///< keeps the scan loop observable
};

/// One query's streaming-mode measurements: latency while ingest runs
/// (live), plus a final post-Seal run verified against the sealed-batch
/// row count.
struct StreamQueryRun {
  std::string suite;
  std::string id;
  int live_runs = 0;
  int64_t live_total_us = 0;
  int64_t live_max_us = 0;
  int64_t final_wall_us = 0;
  size_t final_rows = 0;
  size_t expected_rows = 0;
  bool rows_match = false;
  bool failed = false;  ///< some live or final execution returned an error
};

/// One suite's streaming run: ingest at a pinned rate concurrent with the
/// suite's queries.
struct StreamSuiteRun {
  std::string suite;
  uint64_t records = 0;
  int64_t ingest_wall_us = 0;
  uint64_t partitions = 0;
  uint64_t partitions_sealed = 0;
  bool ingest_failed = false;
  std::vector<StreamQueryRun> queries;
};

/// Streams `records` into a fresh database at `rate` records/second
/// (background sealing on a small pool) while executing `queries`
/// round-robin on the calling thread; then seals and verifies each query's
/// row count against `expected` (suite/id -> sealed-batch rows).
StreamSuiteRun RunStreamingSuite(const std::string& suite,
                                 const std::vector<EventRecord>& records,
                                 const std::vector<CatalogQuery>& queries,
                                 const std::map<std::string, size_t>& expected,
                                 double rate) {
  StreamSuiteRun out;
  out.suite = suite;
  out.records = records.size();

  ThreadPool seal_pool(2);
  StorageOptions storage;
  storage.seal_pool = &seal_pool;
  AuditDatabase db(storage);
  AiqlEngine engine(&db);

  out.queries.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    out.queries[i].suite = suite;
    out.queries[i].id = queries[i].id;
    auto it = expected.find(suite + "/" + queries[i].id);
    out.queries[i].expected_rows = it == expected.end() ? 0 : it->second;
  }

  ReplayOptions replay;
  replay.events_per_second = rate;
  StreamReplayer replayer(&db, &records, replay);
  replayer.Start();

  // Live phase: interleave the suite's queries with the ongoing ingest.
  size_t qi = 0;
  while (!replayer.done()) {
    StreamQueryRun& q = out.queries[qi % queries.size()];
    const CatalogQuery& query = queries[qi % queries.size()];
    ++qi;
    int64_t us = TimeUs([&] {
      auto result = engine.Execute(query.text);
      if (!result.ok()) {
        q.failed = true;
        std::fprintf(stderr, "  stream %s %s live FAILED: %s\n",
                     suite.c_str(), query.id.c_str(),
                     result.status().ToString().c_str());
      }
    });
    q.live_runs += 1;
    q.live_total_us += us;
    q.live_max_us = std::max(q.live_max_us, us);
  }
  Status ingest_status = replayer.Join();
  if (!ingest_status.ok()) {
    out.ingest_failed = true;
    std::fprintf(stderr, "  stream %s ingest FAILED: %s\n", suite.c_str(),
                 ingest_status.ToString().c_str());
  }
  out.ingest_wall_us = replayer.wall_us();
  if (!db.Seal().ok()) out.ingest_failed = true;
  out.partitions = db.stats().total_partitions;
  out.partitions_sealed = db.stats().partitions_sealed;

  // Verification phase: after the final seal every query must reproduce
  // the sealed-batch row count exactly.
  for (size_t i = 0; i < queries.size(); ++i) {
    StreamQueryRun& q = out.queries[i];
    q.final_wall_us = TimeUs([&] {
      auto result = engine.Execute(queries[i].text);
      if (result.ok()) {
        q.final_rows = result->table.num_rows();
      } else {
        q.failed = true;
        std::fprintf(stderr, "  stream %s %s final FAILED: %s\n",
                     suite.c_str(), queries[i].id.c_str(),
                     result.status().ToString().c_str());
      }
    });
    q.rows_match = !q.failed && q.final_rows == q.expected_rows;
  }
  return out;
}

/// Snapshot format comparison: on-disk size and cold-start
/// time-to-first-query-result for the legacy v1 single-blob format (full
/// load) vs the v2 partition-granular store (lazy open).
struct SnapshotBench {
  uint64_t v1_bytes = 0;
  uint64_t v2_bytes = 0;
  int64_t v1_save_us = 0;
  int64_t v2_save_us = 0;
  int64_t v1_load_us = 0;         ///< full deserialize + reindex
  int64_t v2_open_us = 0;         ///< footer + statistics + entities only
  int64_t v1_first_query_us = 0;  ///< first query after the v1 load
  int64_t v2_first_query_us = 0;  ///< first query (materializes on demand)
  size_t rows_mem = 0;
  size_t rows_v1 = 0;
  size_t rows_v2 = 0;
  uint64_t v2_partitions_loaded = 0;
  uint64_t v2_partitions_total = 0;
  bool rows_match = false;            ///< first query: mem == v1 == v2
  bool all_query_rows_match = false;  ///< whole suite served from v2 store
  bool failed = false;

  int64_t v1_cold_start_us() const { return v1_load_us + v1_first_query_us; }
  int64_t v2_cold_start_us() const { return v2_open_us + v2_first_query_us; }
};

/// Provenance tracking benchmark: backward track from the simulator's
/// planted exfiltration POI, from the live database and from a lazily
/// opened v2 snapshot, with per-hop latency and partitions-materialized
/// counts. Chain recovery is a correctness gate (exit non-zero when the
/// planted chain is not recovered exactly).
struct ProvenanceTrackRun {
  int64_t track_us = 0;
  std::vector<Duration> hop_us;
  size_t nodes = 0;
  size_t edges = 0;
  int hops = 0;
  uint64_t events_inspected = 0;
  uint64_t partition_scans = 0;
  bool truncated = false;
  bool chain_recovered = false;
};

struct ProvenanceBench {
  ProvenanceTrackRun db;
  ProvenanceTrackRun snapshot;
  int64_t snapshot_open_us = 0;
  uint64_t snapshot_partitions_loaded = 0;
  uint64_t snapshot_partitions_total = 0;
  size_t chain_nodes = 0;
  bool failed = false;
};

ProvenanceTrackRun RunProvenanceTrack(AiqlEngine* engine,
                                      const EntityStore& entities,
                                      const ExfilChainTruth& truth) {
  ProvenanceTrackRun run;
  TrackRequest request;
  request.type = EntityType::kNetwork;
  request.name_like = truth.poi_like;
  request.anchor = truth.anchor;
  Result<ProvenanceResult> result = Status::Internal("not run");
  run.track_us = TimeUs([&] { result = engine->Track(request); });
  if (!result.ok()) {
    std::fprintf(stderr, "provenance track FAILED: %s\n",
                 result.status().ToString().c_str());
    return run;
  }
  run.hop_us = result->stats.hop_latency_us;
  run.nodes = result->nodes.size();
  run.edges = result->edges.size();
  run.hops = result->stats.hops;
  run.events_inspected = result->stats.events_inspected;
  run.partition_scans = result->stats.partitions_selected;
  run.truncated = result->stats.truncated;

  std::set<std::pair<EntityType, std::string>> recovered, expected(
      truth.chain.begin(), truth.chain.end());
  for (const ProvenanceNode& node : result->nodes) {
    recovered.emplace(node.type, entities.EntityName(node.type, node.id));
  }
  run.chain_recovered = recovered == expected &&
                        result->nodes.size() == truth.chain.size() &&
                        result->edges.size() == truth.chain_events &&
                        !result->stats.truncated;
  if (!run.chain_recovered) {
    std::fprintf(stderr,
                 "provenance chain NOT recovered: %zu nodes (want %zu), "
                 "%zu edges (want %zu)%s\n",
                 result->nodes.size(), truth.chain.size(),
                 result->edges.size(), truth.chain_events,
                 result->stats.truncated ? ", truncated" : "");
  }
  return run;
}

ProvenanceBench RunProvenanceBench() {
  ProvenanceBench bench;
  ExfilScenarioData data = GenerateExfilScenario(BenchScenarioOptions());
  bench.chain_nodes = data.truth.chain.size();
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "provenance ingest failed: %s\n",
                 db.status().ToString().c_str());
    bench.failed = true;
    return bench;
  }
  {
    AiqlEngine engine(&*db);
    bench.db = RunProvenanceTrack(&engine, db->entities(), data.truth);
  }

  struct TempFile {
    std::string path;
    ~TempFile() { std::remove(path.c_str()); }
  };
  TempFile snap{"/tmp/aiql_bench_provenance." +
                std::to_string(std::chrono::steady_clock::now()
                                   .time_since_epoch()
                                   .count()) +
                ".snap"};
  Status save = SaveSnapshot(*db, snap.path);
  if (!save.ok()) {
    std::fprintf(stderr, "provenance snapshot save failed: %s\n",
                 save.ToString().c_str());
    bench.failed = true;
    return bench;
  }
  Result<std::unique_ptr<SnapshotStore>> store =
      Status::Internal("not opened");
  bench.snapshot_open_us =
      TimeUs([&] { store = SnapshotStore::Open(snap.path); });
  if (!store.ok()) {
    std::fprintf(stderr, "provenance snapshot open failed: %s\n",
                 store.status().ToString().c_str());
    bench.failed = true;
    return bench;
  }
  bench.snapshot_partitions_total = (*store)->total_partitions();
  {
    AiqlEngine engine(store->get());
    bench.snapshot =
        RunProvenanceTrack(&engine, (*store)->entities(), data.truth);
  }
  bench.snapshot_partitions_loaded = (*store)->loaded_partitions();
  bench.failed = bench.failed || !bench.db.chain_recovered ||
                 !bench.snapshot.chain_recovered;
  return bench;
}

void WriteProvenanceTrackJson(FILE* out, const char* key,
                              const ProvenanceTrackRun& run) {
  std::fprintf(out,
               "    \"%s\": {\"track_us\": %lld, \"nodes\": %zu, "
               "\"edges\": %zu, \"hops\": %d, \"events_inspected\": %llu, "
               "\"partition_scans\": %llu, \"truncated\": %s, "
               "\"chain_recovered\": %s,\n      \"hop_us\": [",
               key, static_cast<long long>(run.track_us), run.nodes,
               run.edges, run.hops,
               static_cast<unsigned long long>(run.events_inspected),
               static_cast<unsigned long long>(run.partition_scans),
               run.truncated ? "true" : "false",
               run.chain_recovered ? "true" : "false");
  for (size_t i = 0; i < run.hop_us.size(); ++i) {
    std::fprintf(out, "%s%lld", i > 0 ? ", " : "",
                 static_cast<long long>(run.hop_us[i]));
  }
  std::fprintf(out, "]}");
}

void WriteProvenanceJson(FILE* out, const ProvenanceBench& bench) {
  std::fprintf(out, "  \"provenance\": {\n");
  WriteProvenanceTrackJson(out, "db", bench.db);
  std::fprintf(out, ",\n");
  WriteProvenanceTrackJson(out, "snapshot", bench.snapshot);
  std::fprintf(
      out,
      ",\n    \"snapshot_open_us\": %lld, "
      "\"snapshot_partitions_loaded\": %llu, "
      "\"snapshot_partitions_total\": %llu, \"chain_nodes\": %zu%s\n  },\n",
      static_cast<long long>(bench.snapshot_open_us),
      static_cast<unsigned long long>(bench.snapshot_partitions_loaded),
      static_cast<unsigned long long>(bench.snapshot_partitions_total),
      bench.chain_nodes, bench.failed ? ", \"failed\": true" : "");
}

// ---------------------------------------------------------------------------
// Sharded scatter/gather mode (--sharded): the fig4 suite and the
// multi-host campaign track at 1/2/4/8 agent-range shards, against the
// single-database runs. Row counts and exact campaign-chain recovery are
// correctness gates (non-zero exit on any divergence).

/// Per-shard databases routed by agent range under one ShardMap.
struct ShardedDbs {
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  ShardMap map;
};

std::unique_ptr<ShardedDbs> BuildShardedDbs(
    const std::vector<EventRecord>& records, size_t num_shards) {
  AgentId min_agent = records.front().agent_id;
  AgentId max_agent = min_agent;
  for (const EventRecord& record : records) {
    min_agent = std::min(min_agent, record.agent_id);
    max_agent = std::max(max_agent, record.agent_id);
  }
  auto ranges = EvenAgentRanges(num_shards, min_agent, max_agent);
  auto routed = RouteRecordsByAgent(ranges, records);
  if (!routed.ok()) {
    std::fprintf(stderr, "sharded routing failed: %s\n",
                 routed.status().ToString().c_str());
    return nullptr;
  }
  auto out = std::make_unique<ShardedDbs>();
  for (size_t s = 0; s < ranges.size(); ++s) {
    auto db = IngestRecords((*routed)[s], StorageOptions{});
    if (!db.ok()) {
      std::fprintf(stderr, "shard %zu ingest failed: %s\n", s,
                   db.status().ToString().c_str());
      return nullptr;
    }
    out->dbs.push_back(std::make_unique<AuditDatabase>(std::move(*db)));
    Status added = out->map.AddShard(out->dbs.back().get(), ranges[s]);
    if (!added.ok()) {
      std::fprintf(stderr, "shard %zu add failed: %s\n", s,
                   added.ToString().c_str());
      return nullptr;
    }
  }
  return out;
}

struct ShardedQueryRun {
  std::string id;
  int64_t wall_us = 0;
  size_t rows = 0;
  size_t single_rows = 0;
  bool rows_match = false;
  bool failed = false;
};

struct ShardedTrackRun {
  int64_t track_us = 0;
  size_t nodes = 0;
  size_t edges = 0;
  int hops = 0;
  bool chain_recovered = false;
};

struct ShardedSuiteRun {
  size_t num_shards = 0;
  int64_t fig4_total_us = 0;
  int row_mismatches = 0;
  std::vector<ShardedQueryRun> queries;
  ShardedTrackRun track;
};

struct ShardedBench {
  std::vector<ShardedSuiteRun> suites;
  int64_t single_fig4_total_us = 0;
  ShardedTrackRun single_track;
  bool failed = false;
};

/// Backward-tracks the planted multi-host campaign and checks the result
/// against the exact ground truth: every chain entity at its discovery
/// position, depth, and time bound; all chain events; no decoys.
ShardedTrackRun RunCampaignTrack(
    AiqlEngine* engine,
    const std::function<std::string(const ProvenanceNode&)>& name_of,
    const CampaignChainTruth& truth) {
  ShardedTrackRun run;
  TrackRequest request;
  request.type = EntityType::kNetwork;
  request.name_like = truth.poi_like;
  request.anchor = truth.anchor;
  Result<ProvenanceResult> result = Status::Internal("not run");
  run.track_us = TimeUs([&] { result = engine->Track(request); });
  if (!result.ok()) {
    std::fprintf(stderr, "campaign track FAILED: %s\n",
                 result.status().ToString().c_str());
    return run;
  }
  run.nodes = result->nodes.size();
  run.edges = result->edges.size();
  run.hops = result->stats.hops;
  run.chain_recovered = result->nodes.size() == truth.chain.size() &&
                        result->edges.size() == truth.chain_events &&
                        !result->stats.truncated;
  if (run.chain_recovered) {
    for (size_t i = 0; i < result->nodes.size(); ++i) {
      const ProvenanceNode& node = result->nodes[i];
      if (node.type != truth.chain[i].first ||
          name_of(node) != truth.chain[i].second ||
          node.depth != truth.chain_depths[i] ||
          node.bound != truth.chain_bounds[i]) {
        run.chain_recovered = false;
        break;
      }
    }
  }
  if (!run.chain_recovered) {
    std::fprintf(stderr,
                 "campaign chain NOT recovered: %zu nodes (want %zu), "
                 "%zu edges (want %zu)%s\n",
                 result->nodes.size(), truth.chain.size(),
                 result->edges.size(), truth.chain_events,
                 result->stats.truncated ? ", truncated" : "");
  }
  return run;
}

/// Runs the fig4 suite and the campaign track at each shard count; every
/// sharded row count is gated against the single-database run.
ShardedBench RunShardedBench(const std::vector<EventRecord>& demo_records,
                             const std::vector<CatalogQuery>& fig4_queries,
                             const std::map<std::string, size_t>& single_rows,
                             const std::vector<QueryRun>& single_runs,
                             const ScenarioOptions& options, int repeat) {
  ShardedBench bench;
  for (const QueryRun& run : single_runs) {
    if (run.suite == "fig4") bench.single_fig4_total_us += run.wall_us;
  }

  CampaignScenarioData campaign = GenerateCampaignScenario(options);
  {
    auto db = IngestRecords(campaign.records, StorageOptions{});
    if (!db.ok()) {
      std::fprintf(stderr, "campaign ingest failed: %s\n",
                   db.status().ToString().c_str());
      bench.failed = true;
      return bench;
    }
    AiqlEngine engine(&*db);
    const EntityStore& entities = db->entities();
    bench.single_track = RunCampaignTrack(
        &engine,
        [&](const ProvenanceNode& node) {
          return entities.EntityName(node.type, node.id);
        },
        campaign.truth);
    bench.failed = bench.failed || !bench.single_track.chain_recovered;
  }

  for (size_t num_shards : {1u, 2u, 4u, 8u}) {
    ShardedSuiteRun suite;
    suite.num_shards = num_shards;

    auto demo_shards = BuildShardedDbs(demo_records, num_shards);
    if (demo_shards == nullptr) {
      bench.failed = true;
      return bench;
    }
    AiqlEngine engine(&demo_shards->map);
    for (const CatalogQuery& query : fig4_queries) {
      ShardedQueryRun q;
      q.id = query.id;
      auto it = single_rows.find("fig4/" + query.id);
      q.single_rows = it == single_rows.end() ? 0 : it->second;
      q.wall_us = INT64_MAX;
      for (int i = 0; i < repeat; ++i) {
        size_t rows = 0;
        int64_t us = TimeUs([&] {
          auto result = engine.Execute(query.text);
          if (result.ok()) {
            rows = result->table.num_rows();
          } else {
            q.failed = true;
            std::fprintf(stderr, "  sharded(%zu) %s FAILED: %s\n", num_shards,
                         query.id.c_str(),
                         result.status().ToString().c_str());
          }
        });
        if (us < q.wall_us) {
          q.wall_us = us;
          q.rows = rows;
        }
      }
      q.rows_match = !q.failed && q.rows == q.single_rows;
      if (!q.rows_match) {
        ++suite.row_mismatches;
        std::fprintf(stderr,
                     "  sharded(%zu) %s row mismatch: got %zu want %zu\n",
                     num_shards, q.id.c_str(), q.rows, q.single_rows);
      }
      suite.fig4_total_us += q.wall_us;
      suite.queries.push_back(std::move(q));
    }

    auto campaign_shards = BuildShardedDbs(campaign.records, num_shards);
    if (campaign_shards == nullptr) {
      bench.failed = true;
      return bench;
    }
    {
      AiqlEngine track_engine(&campaign_shards->map);
      const ShardMap& map = campaign_shards->map;
      suite.track = RunCampaignTrack(
          &track_engine,
          [&](const ProvenanceNode& node) {
            return map.entities(node.shard).EntityName(node.type, node.id);
          },
          campaign.truth);
    }

    bench.failed = bench.failed || suite.row_mismatches > 0 ||
                   !suite.track.chain_recovered;
    std::fprintf(stderr,
                 "  sharded(%zu): fig4 %lld us (single %lld us), %d row "
                 "mismatches, track %lld us chain %s\n",
                 num_shards, static_cast<long long>(suite.fig4_total_us),
                 static_cast<long long>(bench.single_fig4_total_us),
                 suite.row_mismatches,
                 static_cast<long long>(suite.track.track_us),
                 suite.track.chain_recovered ? "recovered" : "NOT RECOVERED");
    bench.suites.push_back(std::move(suite));
  }
  return bench;
}

void WriteShardedJson(FILE* out, const ShardedBench& bench) {
  std::fprintf(out, "  \"sharded\": {\n");
  std::fprintf(out,
               "    \"single_db\": {\"fig4_total_us\": %lld, "
               "\"track_us\": %lld, \"track_nodes\": %zu, "
               "\"track_edges\": %zu, \"chain_recovered\": %s},\n",
               static_cast<long long>(bench.single_fig4_total_us),
               static_cast<long long>(bench.single_track.track_us),
               bench.single_track.nodes, bench.single_track.edges,
               bench.single_track.chain_recovered ? "true" : "false");
  std::fprintf(out, "    \"suites\": [\n");
  for (size_t si = 0; si < bench.suites.size(); ++si) {
    const ShardedSuiteRun& suite = bench.suites[si];
    std::fprintf(out,
                 "      {\"num_shards\": %zu, \"fig4_total_us\": %lld, "
                 "\"row_mismatches\": %d,\n",
                 suite.num_shards,
                 static_cast<long long>(suite.fig4_total_us),
                 suite.row_mismatches);
    std::fprintf(out,
                 "       \"track\": {\"track_us\": %lld, \"nodes\": %zu, "
                 "\"edges\": %zu, \"hops\": %d, \"chain_recovered\": %s},\n",
                 static_cast<long long>(suite.track.track_us),
                 suite.track.nodes, suite.track.edges, suite.track.hops,
                 suite.track.chain_recovered ? "true" : "false");
    std::fprintf(out, "       \"queries\": [\n");
    for (size_t i = 0; i < suite.queries.size(); ++i) {
      const ShardedQueryRun& q = suite.queries[i];
      std::fprintf(out,
                   "        {\"id\": \"%s\", \"wall_us\": %lld, "
                   "\"rows\": %zu, \"single_rows\": %zu, "
                   "\"rows_match\": %s%s}%s\n",
                   q.id.c_str(), static_cast<long long>(q.wall_us), q.rows,
                   q.single_rows, q.rows_match ? "true" : "false",
                   q.failed ? ", \"failed\": true" : "",
                   i + 1 < suite.queries.size() ? "," : "");
    }
    std::fprintf(out, "       ]}%s\n",
                 si + 1 < bench.suites.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"all_match\": %s\n",
               bench.failed ? "false" : "true");
  std::fprintf(out, "  },\n");
}

// ---------------------------------------------------------------------------
// Chaos mode (--chaos): the single-pattern fig4 queries at 4 shards under
// the failpoint matrix — slow-shard latency injection against a 50ms
// deadline (strict fails with kDeadlineExceeded, partial returns annotated
// survivor rows, both in <100ms wall clock), a persistently unavailable
// shard (partial drops and annotates it), persistent snapshot-read faults
// (strict surfaces kUnavailable after retries), a one-shot corrupt read
// (checksum catches it, the retry heals it), and a cleared rerun whose row
// counts must match the clean sharded baseline. Every scenario's pass flag
// gates the exit code.

struct ChaosScenarioRun {
  std::string query_id;
  std::string scenario;
  int64_t wall_us = 0;
  std::string status = "OK";  ///< final status code name
  size_t rows = 0;
  int shards_failed = 0;
  int shards_timed_out = 0;
  int shards_retried = 0;
  bool pass = false;
};

struct ChaosBench {
  std::vector<ChaosScenarioRun> runs;
  size_t queries = 0;
  bool failed = false;
};

/// Per-shard v2 snapshots of `shards`, reopened fresh so no partition is
/// pre-materialized (the snapshot-read failpoints must see real reads).
struct ChaosSnapshotShards {
  std::vector<std::string> paths;
  std::vector<std::unique_ptr<SnapshotStore>> snaps;
  ShardMap map;
  bool ok = false;

  ~ChaosSnapshotShards() {
    snaps.clear();
    for (const std::string& path : paths) std::remove(path.c_str());
  }
};

std::unique_ptr<ChaosSnapshotShards> SaveChaosSnapshots(
    const ShardedDbs& shards) {
  auto out = std::make_unique<ChaosSnapshotShards>();
  for (size_t s = 0; s < shards.dbs.size(); ++s) {
    std::string path = "/tmp/aiql_chaos_" + std::to_string(::getpid()) +
                       "_" + std::to_string(s) + ".snap";
    Status saved = SaveSnapshot(*shards.dbs[s], path);
    if (!saved.ok()) {
      std::fprintf(stderr, "chaos snapshot save failed: %s\n",
                   saved.ToString().c_str());
      return out;
    }
    out->paths.push_back(path);
  }
  out->ok = true;
  return out;
}

/// Reopens the saved snapshots into a fresh (lazily materialized) ShardMap.
bool ReopenChaosSnapshots(ChaosSnapshotShards* shards,
                          const std::vector<ShardRange>& ranges) {
  shards->snaps.clear();
  shards->map = ShardMap();
  for (size_t s = 0; s < shards->paths.size(); ++s) {
    auto store = SnapshotStore::Open(shards->paths[s]);
    if (!store.ok()) {
      std::fprintf(stderr, "chaos snapshot open failed: %s\n",
                   store.status().ToString().c_str());
      return false;
    }
    shards->snaps.push_back(std::move(*store));
    Status added = shards->map.AddShard(shards->snaps.back().get(), ranges[s]);
    if (!added.ok()) {
      std::fprintf(stderr, "chaos shard add failed: %s\n",
                   added.ToString().c_str());
      return false;
    }
  }
  return true;
}

ChaosBench RunChaosBench(const std::vector<EventRecord>& demo_records,
                         const std::vector<CatalogQuery>& fig4_queries) {
  constexpr size_t kChaosShards = 4;
  constexpr int64_t kWallBoundUs = 100000;  // acceptance: <100ms wall clock
  ChaosBench bench;
  Failpoint::ClearAll();

  auto shards = BuildShardedDbs(demo_records, kChaosShards);
  if (shards == nullptr) {
    bench.failed = true;
    return bench;
  }
  AgentId min_agent = demo_records.front().agent_id;
  AgentId max_agent = min_agent;
  for (const EventRecord& record : demo_records) {
    min_agent = std::min(min_agent, record.agent_id);
    max_agent = std::max(max_agent, record.agent_id);
  }
  auto ranges = EvenAgentRanges(kChaosShards, min_agent, max_agent);
  auto snap_shards = SaveChaosSnapshots(*shards);
  if (!snap_shards->ok) {
    bench.failed = true;
    return bench;
  }

  EngineOptions strict_options;
  strict_options.shard_retry_backoff = std::chrono::milliseconds(1);
  EngineOptions partial_options = strict_options;
  partial_options.shard_policy = ShardPolicy::kPartial;
  QueryLimits deadline_limits;
  deadline_limits.timeout = std::chrono::milliseconds(50);

  auto record = [&bench](ChaosScenarioRun run, bool pass) {
    run.pass = pass;
    if (!pass) {
      bench.failed = true;
      std::fprintf(stderr, "  chaos %s/%s FAILED (status %s, %lld us)\n",
                   run.query_id.c_str(), run.scenario.c_str(),
                   run.status.c_str(), static_cast<long long>(run.wall_us));
    }
    bench.runs.push_back(std::move(run));
  };
  auto execute = [](AiqlEngine* engine, const std::string& text,
                    QueryContext* ctx, ChaosScenarioRun* run) {
    Result<QueryResult> result = Status::Internal("not run");
    run->wall_us = TimeUs([&] { result = engine->Execute(text, ctx); });
    if (result.ok()) {
      run->rows = result->table.num_rows();
      run->shards_failed = result->degraded.shards_failed;
      run->shards_timed_out = result->degraded.shards_timed_out;
      run->shards_retried = result->degraded.shards_retried;
    } else {
      run->status = result.status().ToString();
    }
    return result;
  };

  for (const CatalogQuery& query : fig4_queries) {
    // Only single-pattern queries take the fast scatter path, where a
    // deadline-missing shard can be dropped; the gathered path aborts on
    // deadline in both policies by design.
    auto parsed = ParseAiql(query.text);
    if (!parsed.ok() || parsed->kind != QueryKind::kMultievent ||
        parsed->multievent == nullptr ||
        parsed->multievent->patterns.size() != 1) {
      continue;
    }
    ++bench.queries;

    // Clean baseline on the db-backed map.
    size_t clean_rows = 0;
    {
      AiqlEngine engine(&shards->map, strict_options);
      ChaosScenarioRun run{query.id, "clean"};
      auto result = execute(&engine, query.text, nullptr, &run);
      clean_rows = run.rows;
      record(std::move(run), result.ok());
      if (!result.ok()) continue;
    }

    // 500ms stall on the last shard vs a 50ms deadline: strict fails fast.
    Failpoint::ClearAll();
    (void)Failpoint::Configure("shard.scatter=latency(500000)@arg" +
                               std::to_string(kChaosShards - 1));
    {
      AiqlEngine engine(&shards->map, strict_options);
      QueryContext ctx(deadline_limits);
      ChaosScenarioRun run{query.id, "deadline_strict"};
      auto result = execute(&engine, query.text, &ctx, &run);
      bool pass = !result.ok() &&
                  result.status().code() == StatusCode::kDeadlineExceeded &&
                  run.wall_us < kWallBoundUs;
      record(std::move(run), pass);
    }
    // Same stall, partial policy: annotated survivor rows, still <100ms.
    Failpoint::ClearAll();
    (void)Failpoint::Configure("shard.scatter=latency(500000)@arg" +
                               std::to_string(kChaosShards - 1));
    {
      AiqlEngine engine(&shards->map, partial_options);
      QueryContext ctx(deadline_limits);
      ChaosScenarioRun run{query.id, "deadline_partial"};
      auto result = execute(&engine, query.text, &ctx, &run);
      bool pass = result.ok() && run.wall_us < kWallBoundUs &&
                  run.shards_timed_out >= 1 && run.rows <= clean_rows;
      record(std::move(run), pass);
    }

    // A persistently failing shard: partial drops and annotates it.
    Failpoint::ClearAll();
    (void)Failpoint::Configure("shard.scatter=error(IOError)@arg1");
    {
      AiqlEngine engine(&shards->map, partial_options);
      ChaosScenarioRun run{query.id, "shard_unavailable_partial"};
      auto result = execute(&engine, query.text, nullptr, &run);
      bool pass = result.ok() && run.shards_failed == 1 &&
                  run.shards_timed_out == 0 && run.rows <= clean_rows;
      record(std::move(run), pass);
    }

    // Persistent snapshot-read faults on a fresh lazily-loaded map: every
    // injected fault is retried, then surfaces as kUnavailable (strict).
    Failpoint::ClearAll();
    if (ReopenChaosSnapshots(snap_shards.get(), ranges)) {
      (void)Failpoint::Configure("snapshot.read.partition=error(IOError)");
      AiqlEngine engine(&snap_shards->map, strict_options);
      ChaosScenarioRun run{query.id, "snapshot_fault_strict"};
      auto result = execute(&engine, query.text, nullptr, &run);
      record(std::move(run),
             !result.ok() &&
                 result.status().code() == StatusCode::kUnavailable);
    }

    // One corrupt read on another fresh map: the checksum catches the
    // bit-flip and the shard retry re-reads cleanly — full result.
    Failpoint::ClearAll();
    if (ReopenChaosSnapshots(snap_shards.get(), ranges)) {
      (void)Failpoint::Configure("snapshot.read.partition=corrupt@nth1");
      AiqlEngine engine(&snap_shards->map, strict_options);
      ChaosScenarioRun run{query.id, "snapshot_corrupt_retry"};
      auto result = execute(&engine, query.text, nullptr, &run);
      record(std::move(run), result.ok() && run.rows == clean_rows);
    }

    // Cleared: the db-backed map serves the clean rows again.
    Failpoint::ClearAll();
    {
      AiqlEngine engine(&shards->map, strict_options);
      ChaosScenarioRun run{query.id, "cleared"};
      auto result = execute(&engine, query.text, nullptr, &run);
      record(std::move(run), result.ok() && run.rows == clean_rows);
    }
  }
  Failpoint::ClearAll();
  if (bench.queries == 0) {
    std::fprintf(stderr, "chaos: no single-pattern fig4 queries found\n");
    bench.failed = true;
  }
  return bench;
}

std::string JsonEscape(const std::string& s);

void WriteChaosJson(FILE* out, const ChaosBench& bench) {
  std::fprintf(out, "  \"chaos\": {\n");
  std::fprintf(out, "    \"num_shards\": 4, \"deadline_ms\": 50, "
               "\"injected_stall_ms\": 500, \"queries\": %zu,\n",
               bench.queries);
  std::fprintf(out, "    \"scenarios\": [\n");
  for (size_t i = 0; i < bench.runs.size(); ++i) {
    const ChaosScenarioRun& run = bench.runs[i];
    std::fprintf(out,
                 "      {\"query\": \"%s\", \"scenario\": \"%s\", "
                 "\"wall_us\": %lld, \"status\": \"%s\", \"rows\": %zu, "
                 "\"shards_failed\": %d, \"shards_timed_out\": %d, "
                 "\"shards_retried\": %d, \"pass\": %s}%s\n",
                 run.query_id.c_str(), run.scenario.c_str(),
                 static_cast<long long>(run.wall_us),
                 JsonEscape(run.status).c_str(), run.rows,
                 run.shards_failed, run.shards_timed_out,
                 run.shards_retried, run.pass ? "true" : "false",
                 i + 1 < bench.runs.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"all_pass\": %s\n", bench.failed ? "false" : "true");
  std::fprintf(out, "  },\n");
}

uint64_t FileSizeBytes(const std::string& path) {
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

/// Saves `db` in both formats, then measures cold start to the first result
/// of `queries[0]` and verifies every query's row count served from the v2
/// store against the in-memory runs.
SnapshotBench RunSnapshotBench(const AuditDatabase& db,
                               const std::vector<CatalogQuery>& queries,
                               const std::map<std::string, size_t>& mem_rows,
                               const std::string& suite) {
  SnapshotBench bench;
  // Process-unique paths (concurrent runners must not clobber each other),
  // removed on every exit path.
  struct TempFile {
    std::string path;
    ~TempFile() { std::remove(path.c_str()); }
  };
  const std::string unique = std::to_string(
      std::chrono::steady_clock::now().time_since_epoch().count());
  TempFile v1_file{"/tmp/aiql_bench_snapshot." + unique + ".v1.snap"};
  TempFile v2_file{"/tmp/aiql_bench_snapshot." + unique + ".v2.snap"};
  const std::string& v1_path = v1_file.path;
  const std::string& v2_path = v2_file.path;
  auto fail = [&](const char* what, const Status& status) {
    std::fprintf(stderr, "snapshot bench %s FAILED: %s\n", what,
                 status.ToString().c_str());
    bench.failed = true;
  };

  Status status;
  bench.v1_save_us = TimeUs([&] { status = SaveSnapshotV1(db, v1_path); });
  if (!status.ok()) fail("v1 save", status);
  bench.v2_save_us = TimeUs([&] { status = SaveSnapshot(db, v2_path); });
  if (!status.ok()) fail("v2 save", status);
  bench.v1_bytes = FileSizeBytes(v1_path);
  bench.v2_bytes = FileSizeBytes(v2_path);
  if (bench.failed) return bench;

  const CatalogQuery& first = queries.front();
  auto mem_it = mem_rows.find(suite + "/" + first.id);
  bench.rows_mem = mem_it == mem_rows.end() ? 0 : mem_it->second;

  // v1 cold start: the whole blob must be deserialized and re-indexed
  // before the first query can run.
  {
    Result<AuditDatabase> loaded = Status::Internal("not loaded");
    bench.v1_load_us = TimeUs([&] { loaded = LoadSnapshot(v1_path); });
    if (!loaded.ok()) {
      fail("v1 load", loaded.status());
      return bench;
    }
    AiqlEngine engine(&*loaded);
    bench.v1_first_query_us = TimeUs([&] {
      auto result = engine.Execute(first.text);
      if (result.ok()) {
        bench.rows_v1 = result->table.num_rows();
      } else {
        fail("v1 first query", result.status());
      }
    });
  }

  // v2 cold start: open reads footer + statistics + entities; the first
  // query materializes only the partitions it touches.
  {
    Result<std::unique_ptr<SnapshotStore>> store =
        Status::Internal("not opened");
    bench.v2_open_us = TimeUs([&] { store = SnapshotStore::Open(v2_path); });
    if (!store.ok()) {
      fail("v2 open", store.status());
      return bench;
    }
    bench.v2_partitions_total = (*store)->total_partitions();
    AiqlEngine engine(store->get());
    bench.v2_first_query_us = TimeUs([&] {
      auto result = engine.Execute(first.text);
      if (result.ok()) {
        bench.rows_v2 = result->table.num_rows();
      } else {
        fail("v2 first query", result.status());
      }
    });
    bench.v2_partitions_loaded = (*store)->loaded_partitions();

    // Correctness gate: the whole suite served from the store must
    // reproduce the in-memory row counts.
    bench.all_query_rows_match = true;
    for (const CatalogQuery& query : queries) {
      auto result = engine.Execute(query.text);
      auto expected = mem_rows.find(suite + "/" + query.id);
      size_t want = expected == mem_rows.end() ? 0 : expected->second;
      if (!result.ok() || result->table.num_rows() != want) {
        bench.all_query_rows_match = false;
        std::fprintf(stderr,
                     "  snapshot %s %s row mismatch: got %zu want %zu%s\n",
                     suite.c_str(), query.id.c_str(),
                     result.ok() ? result->table.num_rows() : 0, want,
                     result.ok() ? "" : " (query failed)");
      }
    }
  }
  bench.rows_match =
      bench.rows_v1 == bench.rows_mem && bench.rows_v2 == bench.rows_mem;
  return bench;
}

void WriteSnapshotJson(FILE* out, const SnapshotBench& bench) {
  double ratio = bench.v2_bytes == 0
                     ? 0
                     : static_cast<double>(bench.v1_bytes) /
                           static_cast<double>(bench.v2_bytes);
  std::fprintf(
      out,
      "  \"snapshot\": {\"v1_bytes\": %llu, \"v2_bytes\": %llu, "
      "\"v1_over_v2_size_ratio\": %.2f,\n"
      "    \"v1_save_us\": %lld, \"v2_save_us\": %lld,\n"
      "    \"v1_load_us\": %lld, \"v1_first_query_us\": %lld, "
      "\"v1_cold_start_us\": %lld,\n"
      "    \"v2_open_us\": %lld, \"v2_first_query_us\": %lld, "
      "\"v2_cold_start_us\": %lld,\n"
      "    \"v2_partitions_loaded\": %llu, \"v2_partitions_total\": %llu,\n"
      "    \"rows\": %zu, \"rows_match\": %s, "
      "\"all_query_rows_match\": %s%s},\n",
      static_cast<unsigned long long>(bench.v1_bytes),
      static_cast<unsigned long long>(bench.v2_bytes), ratio,
      static_cast<long long>(bench.v1_save_us),
      static_cast<long long>(bench.v2_save_us),
      static_cast<long long>(bench.v1_load_us),
      static_cast<long long>(bench.v1_first_query_us),
      static_cast<long long>(bench.v1_cold_start_us()),
      static_cast<long long>(bench.v2_open_us),
      static_cast<long long>(bench.v2_first_query_us),
      static_cast<long long>(bench.v2_cold_start_us()),
      static_cast<unsigned long long>(bench.v2_partitions_loaded),
      static_cast<unsigned long long>(bench.v2_partitions_total),
      bench.rows_mem, bench.rows_match ? "true" : "false",
      bench.all_query_rows_match ? "true" : "false",
      bench.failed ? ", \"failed\": true" : "");
}

/// Classifies a query from its AST: pattern count and op selectivity.
/// True when the query text carries a LIKE wildcard ('%' or unescaped '_')
/// inside a quoted string — i.e. at least one entity constraint that the
/// dictionary-id predicate path evaluates against the whole dictionary.
bool HasLikePredicate(const std::string& text) {
  bool in_quote = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') {
      in_quote = !in_quote;
      continue;
    }
    if (in_quote && c == '\\') {
      ++i;  // escaped character, never a wildcard
      continue;
    }
    if (in_quote && (c == '%' || c == '_')) return true;
  }
  return false;
}

void ClassifyQuery(const std::string& text, QueryRun* run) {
  run->like_heavy = HasLikePredicate(text);
  auto parsed = ParseAiql(text);
  if (!parsed.ok() || parsed->multievent == nullptr) return;
  const MultieventQueryAst& ast = *parsed->multievent;
  run->patterns = static_cast<int>(ast.patterns.size());
  run->op_selective = !ast.patterns.empty();
  for (const EventPatternAst& pattern : ast.patterns) {
    if (pattern.ops.size() > 2) run->op_selective = false;
  }
}

/// Best-of-N wall time for one query; stats come from the fastest run.
QueryRun RunQuery(AiqlEngine* engine, const std::string& suite,
                  const CatalogQuery& query, int repeat) {
  QueryRun run;
  run.suite = suite;
  run.id = query.id;
  run.wall_us = INT64_MAX;
  for (int i = 0; i < repeat; ++i) {
    QueryStats stats;
    size_t rows = 0;
    int64_t us = TimeUs([&] {
      auto result = engine->Execute(query.text);
      if (result.ok()) {
        rows = result->table.num_rows();
        stats = result->stats;
      } else {
        // A broken query must not masquerade as a fast successful run.
        run.failed = true;
        std::fprintf(stderr, "  %s %s FAILED: %s\n", suite.c_str(),
                     query.id.c_str(), result.status().ToString().c_str());
      }
    });
    if (us < run.wall_us) {
      run.wall_us = us;
      run.rows = rows;
      run.events_scanned = stats.events_scanned;
      run.events_matched = stats.events_matched;
      run.partitions_scanned = stats.partitions_scanned;
    }
  }
  ClassifyQuery(query.text, &run);
  return run;
}

StorageRun RunStorageBench(const std::vector<EventRecord>& records) {
  StorageRun run;
  AuditDatabase db{StorageOptions{}};
  Status seal_status;
  run.ingest_us = TimeUs([&] {
    for (const EventRecord& record : records) {
      (void)db.Append(record);
    }
    seal_status = db.Seal();
  });
  if (!seal_status.ok()) {
    std::fprintf(stderr, "storage bench seal FAILED: %s\n",
                 seal_status.ToString().c_str());
  }
  run.raw_events = db.stats().raw_events;
  run.stored_events = db.stats().total_events;
  run.partitions = db.stats().total_partitions;
  uint64_t sum = 0;
  run.scan_us = TimeUs([&] {
    db.ForEachPartition(TimeRange{INT64_MIN, INT64_MAX}, std::nullopt,
                        [&](const PartitionKey&, const EventPartition& p) {
                          for (const Event& event : p.events()) {
                            sum += event.amount;
                          }
                        });
  });
  run.scan_checksum = sum;
  return run;
}

/// Minimal extraction of (suite/id -> wall_us) pairs from a previous run's
/// JSON. Only understands the schema this binary writes.
std::map<std::string, int64_t> ParseBaseline(const std::string& path) {
  std::map<std::string, int64_t> out;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "warning: cannot open baseline '%s'\n", path.c_str());
    return out;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  auto find_string = [&](const std::string& key, size_t from,
                         std::string* value) -> size_t {
    size_t pos = text.find("\"" + key + "\":", from);
    if (pos == std::string::npos) return std::string::npos;
    size_t open = text.find('"', pos + key.size() + 3);
    if (open == std::string::npos) return std::string::npos;
    size_t close = text.find('"', open + 1);
    if (close == std::string::npos) return std::string::npos;
    *value = text.substr(open + 1, close - open - 1);
    return close;
  };

  size_t pos = text.find("\"queries\":");
  while (pos != std::string::npos) {
    std::string suite, id;
    size_t after_suite = find_string("suite", pos, &suite);
    if (after_suite == std::string::npos) break;
    size_t after_id = find_string("id", after_suite, &id);
    if (after_id == std::string::npos) break;
    size_t wall = text.find("\"wall_us\":", after_id);
    if (wall == std::string::npos) break;
    out[suite + "/" + id] = std::strtoll(text.c_str() + wall + 10, nullptr, 10);
    pos = after_id;
  }
  return out;
}

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters). Labels come from the command line, so don't trust
/// them to be JSON-clean.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double Geomean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

// ---------------------------------------------------------------------------
// Kernel mode (--kernels): scan-strategy micro-sweeps plus the fig4 suite
// with batch kernels on vs off, both over a high-rate demo config
// (10-50x the standard event count; AIQL_BENCH_KERNEL_SCALE, default 20) so
// partitions are dense enough that the columnar inner loop dominates.
// ---------------------------------------------------------------------------

struct KernelMicroRun {
  std::string name;
  int64_t wall_us = 0;    ///< best-of-repeat full-database sweep
  uint64_t rows = 0;      ///< events inspected per sweep
  uint64_t matches = 0;
};

struct KernelQueryRun {
  std::string id;
  int64_t on_us = 0;
  int64_t off_us = 0;
  size_t rows = 0;
  bool like_heavy = false;
  bool rows_match = false;
};

struct KernelBench {
  double scale = 0;
  uint64_t stored_events = 0;
  std::vector<KernelMicroRun> micro;
  std::vector<KernelQueryRun> queries;
  bool failed = false;
};

KernelBench RunKernelBench(const ScenarioOptions& base, int repeat) {
  KernelBench bench;
  bench.scale =
      std::clamp(EnvDouble("AIQL_BENCH_KERNEL_SCALE", 20), 10.0, 50.0);
  ScenarioOptions options = base;
  options.events_per_host_per_hour *= bench.scale;
  DemoScenarioData demo = GenerateDemoScenario(options);
  auto db = IngestRecords(demo.records, StorageOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "kernels: high-rate ingest failed: %s\n",
                 db.status().ToString().c_str());
    bench.failed = true;
    return bench;
  }
  bench.stored_events = db->stats().total_events;

  // Micro-sweeps: the raw ScanPartition strategies over every partition.
  auto pattern_for = [&](OpMask mask, EntityType object_type,
                         uint32_t keep_one_in) {
    CompiledPattern pattern;
    pattern.op_mask = mask;
    pattern.subject.type = EntityType::kProcess;
    pattern.object.type = object_type;
    if (keep_one_in > 0) {
      size_t universe = db->entities().NumEntities(EntityType::kProcess);
      EntitySet candidates(universe);
      for (size_t id = 0; id < universe; id += keep_one_in) {
        candidates.Add(static_cast<uint32_t>(id));
      }
      pattern.subject.candidates = std::move(candidates);
      pattern.subject.has_constraints = true;
    }
    return pattern;
  };
  auto sweep = [&](const std::string& name, const CompiledPattern& pattern,
                   bool kernels) {
    KernelMicroRun run;
    run.name = name;
    run.wall_us = INT64_MAX;
    for (int i = 0; i < repeat; ++i) {
      uint64_t inspected = 0;
      size_t matches = 0;
      int64_t us = TimeUs([&] {
        db->ForEachPartition(
            TimeRange{INT64_MIN, INT64_MAX}, std::nullopt,
            [&](const PartitionKey&, const EventPartition& partition) {
              std::vector<const Event*> out;
              inspected += ScanPartition(partition, pattern,
                                         TimeRange{INT64_MIN, INT64_MAX},
                                         nullptr, false, &out, nullptr,
                                         kernels);
              matches += out.size();
            });
      });
      if (us < run.wall_us) {
        run.wall_us = us;
        run.rows = inspected;
        run.matches = matches;
      }
    }
    bench.micro.push_back(run);
    std::fprintf(stderr, "  kernels %-28s %8lld us  rows=%llu matches=%llu\n",
                 run.name.c_str(), static_cast<long long>(run.wall_us),
                 static_cast<unsigned long long>(run.rows),
                 static_cast<unsigned long long>(run.matches));
  };
  const OpMask all_ops = static_cast<OpMask>(0x1FF);
  sweep("posting/selective_op",
        pattern_for(OpBit(OpType::kStart), EntityType::kProcess, 0), true);
  sweep("columnar_row/unselective",
        pattern_for(all_ops, EntityType::kFile, 0), false);
  sweep("columnar_batch/unselective",
        pattern_for(all_ops, EntityType::kFile, 0), true);
  sweep("columnar_row/selective",
        pattern_for(all_ops, EntityType::kFile, 16), false);
  sweep("columnar_batch/selective",
        pattern_for(all_ops, EntityType::kFile, 16), true);

  // fig4 at high rate, kernels on vs off; identical row counts gate the
  // exit code (a cheap in-process echo of the oracle's kernel axis).
  EngineOptions on_options, off_options;
  off_options.enable_batch_kernels = false;
  AiqlEngine on_engine(&*db, on_options), off_engine(&*db, off_options);
  for (const CatalogQuery& query : DemoInvestigationQueries(demo.truth)) {
    KernelQueryRun run;
    run.id = query.id;
    run.like_heavy = HasLikePredicate(query.text);
    run.on_us = INT64_MAX;
    run.off_us = INT64_MAX;
    size_t on_rows = 0, off_rows = 0;
    bool exec_failed = false;
    for (int i = 0; i < repeat; ++i) {
      int64_t us = TimeUs([&] {
        auto result = on_engine.Execute(query.text);
        if (result.ok()) {
          on_rows = result->table.num_rows();
        } else {
          exec_failed = true;
        }
      });
      run.on_us = std::min(run.on_us, us);
      us = TimeUs([&] {
        auto result = off_engine.Execute(query.text);
        if (result.ok()) {
          off_rows = result->table.num_rows();
        } else {
          exec_failed = true;
        }
      });
      run.off_us = std::min(run.off_us, us);
    }
    run.rows = on_rows;
    run.rows_match = !exec_failed && on_rows == off_rows;
    if (!run.rows_match) {
      bench.failed = true;
      std::fprintf(stderr,
                   "  kernels fig4 %s MISMATCH: on=%zu off=%zu rows\n",
                   run.id.c_str(), on_rows, off_rows);
    }
    bench.queries.push_back(run);
  }
  return bench;
}

void WriteKernelJson(FILE* out, const KernelBench& bench) {
  std::fprintf(out, "  \"kernels\": {\n");
  std::fprintf(out, "    \"scale\": %.1f, \"stored_events\": %llu,\n",
               bench.scale,
               static_cast<unsigned long long>(bench.stored_events));
  std::fprintf(out, "    \"micro\": [\n");
  for (size_t i = 0; i < bench.micro.size(); ++i) {
    const KernelMicroRun& run = bench.micro[i];
    double rows_per_us =
        static_cast<double>(run.rows) /
        static_cast<double>(std::max<int64_t>(run.wall_us, 1));
    std::fprintf(out,
                 "      {\"name\": \"%s\", \"wall_us\": %lld, "
                 "\"rows\": %llu, \"matches\": %llu, "
                 "\"rows_per_us\": %.1f}%s\n",
                 run.name.c_str(), static_cast<long long>(run.wall_us),
                 static_cast<unsigned long long>(run.rows),
                 static_cast<unsigned long long>(run.matches), rows_per_us,
                 i + 1 < bench.micro.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"fig4_highrate\": [\n");
  std::vector<double> speedups, like_speedups;
  bool all_rows_match = true;
  for (size_t i = 0; i < bench.queries.size(); ++i) {
    const KernelQueryRun& run = bench.queries[i];
    double speedup = static_cast<double>(run.off_us) /
                     static_cast<double>(std::max<int64_t>(run.on_us, 1));
    speedups.push_back(speedup);
    if (run.like_heavy) like_speedups.push_back(speedup);
    all_rows_match = all_rows_match && run.rows_match;
    std::fprintf(out,
                 "      {\"id\": \"%s\", \"kernels_on_us\": %lld, "
                 "\"kernels_off_us\": %lld, \"speedup\": %.3f, \"rows\": %zu, "
                 "\"like_heavy\": %s, \"rows_match\": %s}%s\n",
                 run.id.c_str(), static_cast<long long>(run.on_us),
                 static_cast<long long>(run.off_us), speedup, run.rows,
                 run.like_heavy ? "true" : "false",
                 run.rows_match ? "true" : "false",
                 i + 1 < bench.queries.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"geomean_on_vs_off\": %.3f, "
               "\"like_heavy_geomean_on_vs_off\": %.3f, "
               "\"all_rows_match\": %s\n",
               Geomean(speedups), Geomean(like_speedups),
               all_rows_match ? "true" : "false");
  std::fprintf(out, "  },\n");
}

void WriteStreamingJson(FILE* out, double rate,
                        const std::vector<StreamSuiteRun>& suites) {
  std::fprintf(out, "  \"streaming\": {\n");
  std::fprintf(out, "    \"rate_events_per_sec\": %.0f,\n", rate);
  std::fprintf(out, "    \"suites\": [\n");
  bool all_match = true;
  for (size_t si = 0; si < suites.size(); ++si) {
    const StreamSuiteRun& suite = suites[si];
    std::fprintf(out,
                 "      {\"suite\": \"%s\", \"records\": %llu, "
                 "\"ingest_wall_us\": %lld, \"partitions\": %llu, "
                 "\"partitions_sealed\": %llu,\n",
                 suite.suite.c_str(),
                 static_cast<unsigned long long>(suite.records),
                 static_cast<long long>(suite.ingest_wall_us),
                 static_cast<unsigned long long>(suite.partitions),
                 static_cast<unsigned long long>(suite.partitions_sealed));
    std::fprintf(out, "       \"queries\": [\n");
    for (size_t i = 0; i < suite.queries.size(); ++i) {
      const StreamQueryRun& q = suite.queries[i];
      int64_t mean = q.live_runs > 0 ? q.live_total_us / q.live_runs : 0;
      all_match = all_match && q.rows_match;
      std::fprintf(out,
                   "        {\"id\": \"%s\", \"live_runs\": %d, "
                   "\"live_mean_us\": %lld, \"live_max_us\": %lld, "
                   "\"final_wall_us\": %lld, \"rows\": %zu, "
                   "\"expected_rows\": %zu, \"rows_match\": %s%s}%s\n",
                   q.id.c_str(), q.live_runs, static_cast<long long>(mean),
                   static_cast<long long>(q.live_max_us),
                   static_cast<long long>(q.final_wall_us), q.final_rows,
                   q.expected_rows, q.rows_match ? "true" : "false",
                   q.failed ? ", \"failed\": true" : "",
                   i + 1 < suite.queries.size() ? "," : "");
    }
    std::fprintf(out, "       ]}%s\n", si + 1 < suites.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"all_rows_match\": %s\n",
               all_match ? "true" : "false");
  std::fprintf(out, "  },\n");
}

// ---------------------------------------------------------------------------
// Retention mode (--retention): the fig4 + fig5 record streams replayed into
// fully demoted TieredStores whose cold-cache budget is capped at 25% of the
// measured all-hot footprint. Exit gates: ingest throughput of at least
// AIQL_BENCH_RETENTION_MIN_RATE records/s (default 50k), canonicalized row
// identity against the all-hot engines on every query, cache charge bounded
// by budget + one oversized partition, and a flat RSS profile across the
// cold query sweeps.
// ---------------------------------------------------------------------------

uint64_t ProcStatusKb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0) {
      return std::strtoull(line.c_str() + std::strlen(key), nullptr, 10);
    }
  }
  return 0;
}

/// Order-insensitive fingerprint of a result table (rows rendered, sorted,
/// then chain-hashed). This is the row-identity contract for tiers: sealed
/// partitions sort ties unstably, so merged/cold partitions may permute
/// tied rows — identity means the same row multiset.
uint64_t RowsFingerprint(const ResultTable& table) {
  std::vector<std::string> rendered;
  rendered.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    std::string r;
    for (const auto& cell : row) {
      r += ValueToString(cell);
      r += '\x1f';
    }
    rendered.push_back(std::move(r));
  }
  std::sort(rendered.begin(), rendered.end());
  uint64_t hash = 1469598103934665603ull;
  for (const std::string& r : rendered) {
    for (char c : r) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= 0x9e3779b97f4a7c15ull;
  }
  return hash;
}

struct RetentionQueryRun {
  std::string id;
  int64_t wall_us = 0;  ///< first cold sweep (partitions re-materialize)
  size_t rows = 0;
  bool identical = false;  ///< fingerprint matches the all-hot engine
};

struct RetentionSuiteRun {
  std::string suite;
  uint64_t records = 0;
  int64_t ingest_wall_us = 0;
  double ingest_rate = 0;      ///< records/s into the tiered store
  uint64_t all_hot_bytes = 0;  ///< sealed-partition footprint, all hot
  uint64_t budget_bytes = 0;   ///< cold cache budget (25% of all-hot)
  uint64_t largest_partition_bytes = 0;
  uint64_t cold_partitions = 0;
  uint64_t demotions = 0;
  uint64_t merges = 0;
  uint64_t evictions = 0;
  uint64_t reopens = 0;
  uint64_t max_charged_bytes = 0;  ///< peak cache charge seen in sweeps
  std::vector<RetentionQueryRun> queries;
  /// Sampled after every query execution across all sweeps.
  std::vector<uint64_t> rss_series_kb;
  std::vector<uint64_t> resident_series;
  bool failed = false;
};

struct RetentionBench {
  std::vector<RetentionSuiteRun> suites;
  double min_rate = 0;
  bool rate_ok = false;
  bool rows_identical = false;
  bool budget_respected = false;
  bool rss_flat = false;
  bool failed = true;
};

RetentionSuiteRun RunRetentionSuite(const std::string& suite,
                                    const std::vector<EventRecord>& records,
                                    const std::vector<CatalogQuery>& queries,
                                    const AuditDatabase& hot_db, int sweeps) {
  RetentionSuiteRun run;
  run.suite = suite;
  run.records = records.size();

  // The all-hot footprint this store would need with no eviction; the
  // budget deliberately holds only a quarter of it.
  for (const auto& [key, partition] : hot_db.ListSealedPartitions()) {
    uint64_t bytes = partition->MemoryFootprint();
    run.all_hot_bytes += bytes;
    run.largest_partition_bytes =
        std::max(run.largest_partition_bytes, bytes);
  }
  run.budget_bytes = run.all_hot_bytes / 4;

  std::string dir = "/tmp/aiql_bench_retention_" + suite + "_" +
                    std::to_string(static_cast<unsigned long>(getpid()));
  RetentionOptions retention;
  retention.dir = dir;
  retention.hot_buckets = -1;  // demote everything: worst case for reads
  retention.memory_budget_bytes = run.budget_bytes;
  retention.compact_min_partitions = 2;
  auto store = TieredStore::Create(StorageOptions{}, retention);
  if (!store.ok()) {
    std::fprintf(stderr, "  retention %s: open failed: %s\n", suite.c_str(),
                 store.status().ToString().c_str());
    run.failed = true;
    return run;
  }

  // Timed replay in ingest-sized batches, then seal + one compaction pass
  // that demotes every partition to the retention directory.
  constexpr size_t kBatch = 8192;
  run.ingest_wall_us = TimeUs([&] {
    for (size_t i = 0; i < records.size(); i += kBatch) {
      std::vector<EventRecord> batch(
          records.begin() + i,
          records.begin() + std::min(records.size(), i + kBatch));
      if (!(*store)->AppendBatch(std::move(batch)).ok()) run.failed = true;
    }
    if (!(*store)->Seal().ok()) run.failed = true;
  });
  run.ingest_rate = run.ingest_wall_us == 0
                        ? 0.0
                        : static_cast<double>(run.records) /
                              (static_cast<double>(run.ingest_wall_us) / 1e6);
  if (!(*store)->CompactOnce().ok()) run.failed = true;
  RetentionStats after = (*store)->stats();
  if (after.hot_partitions != 0) {
    std::fprintf(stderr, "  retention %s: %llu partitions still hot\n",
                 suite.c_str(),
                 static_cast<unsigned long long>(after.hot_partitions));
    run.failed = true;
  }

  // Row-identity sweeps: every catalog query against the all-hot engine
  // once, then `sweeps` passes over the cold store under the capped budget.
  AiqlEngine hot_engine(&hot_db);
  AiqlEngine cold_engine(store->get());
  for (const CatalogQuery& query : queries) {
    RetentionQueryRun q;
    q.id = query.id;
    auto hot = hot_engine.Execute(query.text);
    if (!hot.ok()) {
      std::fprintf(stderr, "  retention %s/%s hot FAILED: %s\n",
                   suite.c_str(), query.id.c_str(),
                   hot.status().ToString().c_str());
      run.failed = true;
      run.queries.push_back(q);
      continue;
    }
    uint64_t want = RowsFingerprint(hot->table);
    q.identical = true;
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      size_t rows = 0;
      uint64_t got = 0;
      bool ok = true;
      int64_t us = TimeUs([&] {
        auto cold = cold_engine.Execute(query.text);
        if (cold.ok()) {
          rows = cold->table.num_rows();
          got = RowsFingerprint(cold->table);
        } else {
          ok = false;
          std::fprintf(stderr, "  retention %s/%s cold FAILED: %s\n",
                       suite.c_str(), query.id.c_str(),
                       cold.status().ToString().c_str());
        }
      });
      if (sweep == 0) {
        q.wall_us = us;
        q.rows = rows;
      }
      if (!ok || got != want) {
        q.identical = false;
        run.failed = true;
      }
      RetentionStats stats = (*store)->stats();
      run.max_charged_bytes =
          std::max(run.max_charged_bytes, stats.cache.charged_bytes);
      run.rss_series_kb.push_back(ProcStatusKb("VmRSS:"));
      run.resident_series.push_back(stats.cache.resident);
    }
    run.queries.push_back(std::move(q));
  }

  RetentionStats stats = (*store)->stats();
  run.cold_partitions = stats.cold_partitions;
  run.demotions = stats.demotions;
  run.merges = stats.merges;
  run.evictions = stats.cache.evictions;
  run.reopens = stats.reopens;

  store->reset();
  std::remove((dir + "/DATA").c_str());
  for (uint64_t seq = 0; seq <= 64; ++seq) {
    std::remove((dir + "/FOOTER." + std::to_string(seq)).c_str());
  }
  std::filesystem::remove(dir);
  return run;
}

void WriteRetentionJson(FILE* out, const RetentionBench& bench) {
  std::fprintf(out,
               "  \"retention\": {\"min_rate\": %.0f, \"rate_ok\": %s, "
               "\"rows_identical\": %s, \"budget_respected\": %s, "
               "\"rss_flat\": %s,\n",
               bench.min_rate, bench.rate_ok ? "true" : "false",
               bench.rows_identical ? "true" : "false",
               bench.budget_respected ? "true" : "false",
               bench.rss_flat ? "true" : "false");
  std::fprintf(out, "    \"suites\": [\n");
  for (size_t s = 0; s < bench.suites.size(); ++s) {
    const RetentionSuiteRun& suite = bench.suites[s];
    std::fprintf(
        out,
        "      {\"suite\": \"%s\", \"records\": %llu, \"ingest_us\": %lld, "
        "\"ingest_rate\": %.0f,\n"
        "       \"all_hot_bytes\": %llu, \"budget_bytes\": %llu, "
        "\"max_charged_bytes\": %llu,\n"
        "       \"cold_partitions\": %llu, \"demotions\": %llu, "
        "\"merges\": %llu, \"evictions\": %llu, \"reopens\": %llu,\n",
        suite.suite.c_str(), static_cast<unsigned long long>(suite.records),
        static_cast<long long>(suite.ingest_wall_us), suite.ingest_rate,
        static_cast<unsigned long long>(suite.all_hot_bytes),
        static_cast<unsigned long long>(suite.budget_bytes),
        static_cast<unsigned long long>(suite.max_charged_bytes),
        static_cast<unsigned long long>(suite.cold_partitions),
        static_cast<unsigned long long>(suite.demotions),
        static_cast<unsigned long long>(suite.merges),
        static_cast<unsigned long long>(suite.evictions),
        static_cast<unsigned long long>(suite.reopens));
    auto write_series = [out](const char* name,
                              const std::vector<uint64_t>& series,
                              const char* tail) {
      std::fprintf(out, "       \"%s\": [", name);
      for (size_t i = 0; i < series.size(); ++i) {
        std::fprintf(out, "%s%llu", i > 0 ? ", " : "",
                     static_cast<unsigned long long>(series[i]));
      }
      std::fprintf(out, "]%s\n", tail);
    };
    write_series("rss_series_kb", suite.rss_series_kb, ",");
    write_series("partitions_resident", suite.resident_series, ",");
    std::fprintf(out, "       \"queries\": [\n");
    for (size_t i = 0; i < suite.queries.size(); ++i) {
      const RetentionQueryRun& q = suite.queries[i];
      std::fprintf(out,
                   "         {\"id\": \"%s\", \"cold_us\": %lld, "
                   "\"rows\": %zu, \"identical\": %s}%s\n",
                   JsonEscape(q.id).c_str(),
                   static_cast<long long>(q.wall_us), q.rows,
                   q.identical ? "true" : "false",
                   i + 1 < suite.queries.size() ? "," : "");
    }
    std::fprintf(out, "       ]}%s\n",
                 s + 1 < bench.suites.size() ? "," : "");
  }
  std::fprintf(out, "    ]},\n");
}

void WriteJson(FILE* out, const std::string& label,
               const ScenarioOptions& options, int repeat,
               const std::vector<QueryRun>& runs, const StorageRun& storage,
               bool has_baseline, double stream_rate,
               const std::vector<StreamSuiteRun>* streaming,
               const SnapshotBench* snapshot,
               const ProvenanceBench* provenance, const ShardedBench* sharded,
               const ChaosBench* chaos, const KernelBench* kernels,
               const RetentionBench* retention) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"aiql_scan_path\",\n");
  std::fprintf(out, "  \"label\": \"%s\",\n", JsonEscape(label).c_str());
  std::fprintf(out,
               "  \"config\": {\"seed\": %llu, \"clients\": %d, "
               "\"rate_per_host_per_hour\": %.0f, \"hours\": %.1f, "
               "\"repeat\": %d},\n",
               static_cast<unsigned long long>(options.seed),
               options.num_clients, options.events_per_host_per_hour,
               static_cast<double>(options.duration) / kHour, repeat);
  std::fprintf(out,
               "  \"storage\": {\"ingest_us\": %lld, \"scan_us\": %lld, "
               "\"raw_events\": %llu, \"stored_events\": %llu, "
               "\"partitions\": %llu, \"scan_checksum\": %llu},\n",
               static_cast<long long>(storage.ingest_us),
               static_cast<long long>(storage.scan_us),
               static_cast<unsigned long long>(storage.raw_events),
               static_cast<unsigned long long>(storage.stored_events),
               static_cast<unsigned long long>(storage.partitions),
               static_cast<unsigned long long>(storage.scan_checksum));

  if (snapshot != nullptr) WriteSnapshotJson(out, *snapshot);
  if (provenance != nullptr) WriteProvenanceJson(out, *provenance);
  if (sharded != nullptr) WriteShardedJson(out, *sharded);
  if (chaos != nullptr) WriteChaosJson(out, *chaos);
  if (kernels != nullptr) WriteKernelJson(out, *kernels);
  if (retention != nullptr) WriteRetentionJson(out, *retention);

  std::fprintf(out, "  \"queries\": [\n");
  int64_t total_us = 0, baseline_total_us = 0;
  std::vector<double> speedups, selective_speedups, like_heavy_speedups;
  double worst_regression_pct = 0;
  std::string worst_regression_id;
  for (size_t i = 0; i < runs.size(); ++i) {
    const QueryRun& run = runs[i];
    total_us += run.wall_us;
    std::fprintf(out,
                 "    {\"suite\": \"%s\", \"id\": \"%s\", \"wall_us\": %lld, "
                 "\"rows\": %zu, \"events_scanned\": %llu, "
                 "\"events_matched\": %llu, \"partitions_scanned\": %llu, "
                 "\"patterns\": %d, \"op_selective\": %s, \"like_heavy\": %s",
                 run.suite.c_str(), run.id.c_str(),
                 static_cast<long long>(run.wall_us), run.rows,
                 static_cast<unsigned long long>(run.events_scanned),
                 static_cast<unsigned long long>(run.events_matched),
                 static_cast<unsigned long long>(run.partitions_scanned),
                 run.patterns, run.op_selective ? "true" : "false",
                 run.like_heavy ? "true" : "false");
    if (run.failed) std::fprintf(out, ", \"failed\": true");
    if (run.baseline_us.has_value()) {
      baseline_total_us += *run.baseline_us;
      double speedup = static_cast<double>(*run.baseline_us) /
                       static_cast<double>(std::max<int64_t>(run.wall_us, 1));
      speedups.push_back(speedup);
      if (run.op_selective && run.patterns >= 2) {
        selective_speedups.push_back(speedup);
      }
      if (run.like_heavy) like_heavy_speedups.push_back(speedup);
      double regression_pct = (1.0 / speedup - 1.0) * 100.0;
      if (regression_pct > worst_regression_pct) {
        worst_regression_pct = regression_pct;
        worst_regression_id = run.suite + "/" + run.id;
      }
      std::fprintf(out, ", \"baseline_wall_us\": %lld, \"speedup\": %.3f",
                   static_cast<long long>(*run.baseline_us), speedup);
    }
    std::fprintf(out, "}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  if (streaming != nullptr) WriteStreamingJson(out, stream_rate, *streaming);

  std::fprintf(out, "  \"summary\": {\"total_us\": %lld",
               static_cast<long long>(total_us));
  if (has_baseline) {
    std::fprintf(out,
                 ", \"baseline_total_us\": %lld, "
                 "\"geomean_speedup\": %.3f, "
                 "\"op_selective_multi_pattern_geomean_speedup\": %.3f, "
                 "\"like_heavy_geomean_speedup\": %.3f, "
                 "\"worst_regression_pct\": %.1f, "
                 "\"worst_regression_query\": \"%s\"",
                 static_cast<long long>(baseline_total_us), Geomean(speedups),
                 Geomean(selective_speedups), Geomean(like_heavy_speedups),
                 worst_regression_pct, worst_regression_id.c_str());
  }
  std::fprintf(out, "}\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "bench_out.json";
  std::string baseline_path;
  std::string label = "run";
  bool streaming = false;
  bool snapshot = false;
  bool provenance = false;
  bool sharded = false;
  bool chaos = false;
  bool kernels = false;
  bool retention = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      if (const char* v = next()) out_path = v;
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      if (const char* v = next()) baseline_path = v;
    } else if (std::strcmp(argv[i], "--label") == 0) {
      if (const char* v = next()) label = v;
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      snapshot = true;
    } else if (std::strcmp(argv[i], "--provenance") == 0) {
      provenance = true;
    } else if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--kernels") == 0) {
      kernels = true;
    } else if (std::strcmp(argv[i], "--retention") == 0) {
      retention = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out file.json] [--baseline file.json] "
                   "[--label name] [--streaming] [--snapshot] "
                   "[--provenance] [--sharded] [--chaos] [--kernels] "
                   "[--retention]\n",
                   argv[0]);
      return 2;
    }
  }

  ScenarioOptions options = BenchScenarioOptions();
  int repeat =
      std::max(1, static_cast<int>(EnvDouble("AIQL_BENCH_REPEAT", 3)));

  std::fprintf(stderr,
               "bench_runner: clients=%d rate=%.0f hours=%.1f seed=%llu "
               "repeat=%d\n",
               options.num_clients, options.events_per_host_per_hour,
               static_cast<double>(options.duration) / kHour,
               static_cast<unsigned long long>(options.seed), repeat);

  std::vector<QueryRun> runs;

  // fig4: the 19 demo-attack investigation queries.
  DemoScenarioData demo = GenerateDemoScenario(options);
  auto demo_db = IngestRecords(demo.records, StorageOptions{});
  if (!demo_db.ok()) {
    std::fprintf(stderr, "demo ingest failed: %s\n",
                 demo_db.status().ToString().c_str());
    return 1;
  }
  {
    AiqlEngine engine(&*demo_db);
    for (const CatalogQuery& query : DemoInvestigationQueries(demo.truth)) {
      runs.push_back(RunQuery(&engine, "fig4", query, repeat));
      std::fprintf(stderr, "  fig4 %-6s %8lld us  rows=%zu\n",
                   runs.back().id.c_str(),
                   static_cast<long long>(runs.back().wall_us),
                   runs.back().rows);
    }
  }

  // fig5: the 26 ATC case-study queries (AIQL engine only — the SQL/graph
  // baselines are cross-engine comparisons, not scan-path trajectory).
  AtcScenarioData atc = GenerateAtcScenario(options);
  auto atc_db = IngestRecords(atc.records, StorageOptions{});
  if (!atc_db.ok()) {
    std::fprintf(stderr, "atc ingest failed: %s\n",
                 atc_db.status().ToString().c_str());
    return 1;
  }
  {
    AiqlEngine engine(&*atc_db);
    for (const CatalogQuery& query : AtcInvestigationQueries(atc.truth)) {
      runs.push_back(RunQuery(&engine, "fig5", query, repeat));
      std::fprintf(stderr, "  fig5 %-6s %8lld us  rows=%zu\n",
                   runs.back().id.c_str(),
                   static_cast<long long>(runs.back().wall_us),
                   runs.back().rows);
    }
  }

  // storage micro-bench: ingest + full scan on the demo record stream.
  StorageRun storage = RunStorageBench(demo.records);

  // Snapshot mode: v1 vs v2 on-disk size and cold-start-to-first-result on
  // the demo database, plus a v2-served row-count verification of the whole
  // fig4 suite.
  SnapshotBench snapshot_bench;
  if (snapshot) {
    std::map<std::string, size_t> mem_rows;
    for (const QueryRun& run : runs) {
      mem_rows[run.suite + "/" + run.id] = run.rows;
    }
    snapshot_bench = RunSnapshotBench(
        *demo_db, DemoInvestigationQueries(demo.truth), mem_rows, "fig4");
    std::fprintf(stderr,
                 "snapshot: v1=%llu B v2=%llu B (%.2fx) cold-start "
                 "v1=%lld us v2=%lld us (loaded %llu/%llu partitions)\n",
                 static_cast<unsigned long long>(snapshot_bench.v1_bytes),
                 static_cast<unsigned long long>(snapshot_bench.v2_bytes),
                 snapshot_bench.v2_bytes == 0
                     ? 0.0
                     : static_cast<double>(snapshot_bench.v1_bytes) /
                           static_cast<double>(snapshot_bench.v2_bytes),
                 static_cast<long long>(snapshot_bench.v1_cold_start_us()),
                 static_cast<long long>(snapshot_bench.v2_cold_start_us()),
                 static_cast<unsigned long long>(
                     snapshot_bench.v2_partitions_loaded),
                 static_cast<unsigned long long>(
                     snapshot_bench.v2_partitions_total));
  }

  // Provenance mode: backward track of the planted exfiltration chain from
  // the live database and from a lazily opened v2 snapshot, with per-hop
  // latency and partitions-materialized counts. Chain recovery gates the
  // exit code.
  ProvenanceBench provenance_bench;
  if (provenance) {
    provenance_bench = RunProvenanceBench();
    int64_t db_total = 0, snap_total = 0;
    for (Duration us : provenance_bench.db.hop_us) db_total += us;
    for (Duration us : provenance_bench.snapshot.hop_us) snap_total += us;
    std::fprintf(
        stderr,
        "provenance: db %zu nodes/%zu edges in %d hops (%lld us), "
        "snapshot %lld us loading %llu/%llu partitions, chain %s\n",
        provenance_bench.db.nodes, provenance_bench.db.edges,
        provenance_bench.db.hops, static_cast<long long>(db_total),
        static_cast<long long>(snap_total),
        static_cast<unsigned long long>(
            provenance_bench.snapshot_partitions_loaded),
        static_cast<unsigned long long>(
            provenance_bench.snapshot_partitions_total),
        provenance_bench.failed ? "NOT RECOVERED" : "recovered");
  }

  // Sharded mode: the fig4 suite and the multi-host campaign track through
  // 1/2/4/8-way agent-range shard maps; row counts and exact chain recovery
  // gate the exit code against the single-database runs above.
  ShardedBench sharded_bench;
  if (sharded) {
    std::map<std::string, size_t> single_rows;
    for (const QueryRun& run : runs) {
      single_rows[run.suite + "/" + run.id] = run.rows;
    }
    std::fprintf(stderr, "sharded: scatter/gather at 1/2/4/8 shards\n");
    sharded_bench =
        RunShardedBench(demo.records, DemoInvestigationQueries(demo.truth),
                        single_rows, runs, options, repeat);
  }

  // Chaos mode: failpoint fault-injection matrix over the single-pattern
  // fig4 queries at 4 shards — deadlines vs injected stalls, strict and
  // partial degraded execution, and snapshot read-fault retry. Every
  // scenario's governance contract gates the exit code.
  ChaosBench chaos_bench;
  if (chaos) {
    std::fprintf(stderr,
                 "chaos: failpoint matrix over fig4 at 4 shards "
                 "(50ms deadline vs 500ms injected stall)\n");
    chaos_bench =
        RunChaosBench(demo.records, DemoInvestigationQueries(demo.truth));
    std::fprintf(stderr, "  chaos: %zu queries x %zu scenario runs, %s\n",
                 chaos_bench.queries,
                 chaos_bench.runs.size(),
                 chaos_bench.failed ? "FAILED" : "all pass");
  }

  // Kernel mode: scan-strategy micro-sweeps and the fig4 suite with batch
  // kernels on vs off over a high-rate demo config; identical row counts
  // between the two engine settings gate the exit code.
  KernelBench kernel_bench;
  if (kernels) {
    std::fprintf(stderr, "kernels: high-rate scan-strategy sweeps\n");
    kernel_bench = RunKernelBench(options, repeat);
  }

  // Retention mode: both suites replayed into fully demoted tiered stores
  // with the cold cache capped at 25% of the all-hot footprint. Throughput,
  // row identity, cache charge, and RSS flatness gate the exit code.
  RetentionBench retention_bench;
  if (retention) {
    retention_bench.min_rate =
        EnvDouble("AIQL_BENCH_RETENTION_MIN_RATE", 50000);
    std::fprintf(stderr,
                 "retention: tiered replay at 25%% budget, min rate %.0f "
                 "records/s\n",
                 retention_bench.min_rate);
    int sweeps = 3;
    retention_bench.suites.push_back(
        RunRetentionSuite("fig4", demo.records,
                          DemoInvestigationQueries(demo.truth), *demo_db,
                          sweeps));
    retention_bench.suites.push_back(RunRetentionSuite(
        "fig5", atc.records, AtcInvestigationQueries(atc.truth), *atc_db,
        sweeps));
    retention_bench.rate_ok = true;
    retention_bench.rows_identical = true;
    retention_bench.budget_respected = true;
    retention_bench.rss_flat = true;
    for (const RetentionSuiteRun& suite : retention_bench.suites) {
      if (suite.failed) retention_bench.rows_identical = false;
      if (suite.ingest_rate < retention_bench.min_rate) {
        retention_bench.rate_ok = false;
      }
      // The cache may overshoot by at most one oversized partition (an
      // already-materialized partition is always admitted).
      if (suite.max_charged_bytes >
          suite.budget_bytes + suite.largest_partition_bytes) {
        retention_bench.budget_respected = false;
      }
      // Flat RSS: growth across the cold sweeps stays well under the
      // all-hot footprint (plus fixed allocator slop for small runs) —
      // i.e. eviction actually bounds memory instead of re-accumulating
      // every partition.
      if (!suite.rss_series_kb.empty()) {
        uint64_t first = suite.rss_series_kb.front();
        uint64_t peak = *std::max_element(suite.rss_series_kb.begin(),
                                          suite.rss_series_kb.end());
        uint64_t growth = (peak > first ? peak - first : 0) * 1024;
        if (growth > suite.all_hot_bytes / 2 + (64ull << 20)) {
          retention_bench.rss_flat = false;
        }
      }
      std::fprintf(
          stderr,
          "  retention %s: %llu records at %.0f rec/s, all-hot %llu B, "
          "budget %llu B, peak charge %llu B, %llu cold, %llu evictions, "
          "%llu reopens\n",
          suite.suite.c_str(),
          static_cast<unsigned long long>(suite.records), suite.ingest_rate,
          static_cast<unsigned long long>(suite.all_hot_bytes),
          static_cast<unsigned long long>(suite.budget_bytes),
          static_cast<unsigned long long>(suite.max_charged_bytes),
          static_cast<unsigned long long>(suite.cold_partitions),
          static_cast<unsigned long long>(suite.evictions),
          static_cast<unsigned long long>(suite.reopens));
    }
    retention_bench.failed =
        !(retention_bench.rate_ok && retention_bench.rows_identical &&
          retention_bench.budget_respected && retention_bench.rss_flat);
  }

  // Streaming mode: re-ingest each suite's records at a pinned rate on a
  // background thread, concurrent with the suite's queries; verify the
  // post-Seal row counts against the sealed-batch runs above.
  double stream_rate = EnvDouble("AIQL_BENCH_STREAM_RATE", 25000);
  std::vector<StreamSuiteRun> stream_suites;
  if (streaming) {
    std::map<std::string, size_t> expected_rows;
    for (const QueryRun& run : runs) {
      expected_rows[run.suite + "/" + run.id] = run.rows;
    }
    std::fprintf(stderr, "streaming: rate=%.0f records/s\n", stream_rate);
    stream_suites.push_back(
        RunStreamingSuite("fig4", demo.records,
                          DemoInvestigationQueries(demo.truth), expected_rows,
                          stream_rate));
    stream_suites.push_back(
        RunStreamingSuite("fig5", atc.records,
                          AtcInvestigationQueries(atc.truth), expected_rows,
                          stream_rate));
    for (const StreamSuiteRun& suite : stream_suites) {
      int mismatches = 0;
      for (const StreamQueryRun& q : suite.queries) {
        if (!q.rows_match) ++mismatches;
      }
      std::fprintf(stderr,
                   "  stream %s: %llu records in %.2fs, %d/%zu row "
                   "mismatches\n",
                   suite.suite.c_str(),
                   static_cast<unsigned long long>(suite.records),
                   static_cast<double>(suite.ingest_wall_us) / 1e6, mismatches,
                   suite.queries.size());
    }
  }

  bool has_baseline = false;
  if (!baseline_path.empty()) {
    auto baseline = ParseBaseline(baseline_path);
    for (QueryRun& run : runs) {
      auto it = baseline.find(run.suite + "/" + run.id);
      if (it != baseline.end()) {
        run.baseline_us = it->second;
        has_baseline = true;
      }
    }
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 1;
  }
  WriteJson(out, label, options, repeat, runs, storage, has_baseline,
            stream_rate, streaming ? &stream_suites : nullptr,
            snapshot ? &snapshot_bench : nullptr,
            provenance ? &provenance_bench : nullptr,
            sharded ? &sharded_bench : nullptr,
            chaos ? &chaos_bench : nullptr,
            kernels ? &kernel_bench : nullptr,
            retention ? &retention_bench : nullptr);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (snapshot && (snapshot_bench.failed || !snapshot_bench.rows_match ||
                   !snapshot_bench.all_query_rows_match)) {
    std::fprintf(stderr, "snapshot bench verification failed\n");
    return 1;
  }
  if (provenance && provenance_bench.failed) {
    std::fprintf(stderr, "provenance bench verification failed\n");
    return 1;
  }
  if (sharded && sharded_bench.failed) {
    std::fprintf(stderr, "sharded bench verification failed\n");
    return 1;
  }
  if (chaos && chaos_bench.failed) {
    std::fprintf(stderr, "chaos bench verification failed\n");
    return 1;
  }
  if (kernels && kernel_bench.failed) {
    std::fprintf(stderr, "kernel bench verification failed\n");
    return 1;
  }
  if (retention && retention_bench.failed) {
    std::fprintf(stderr,
                 "retention bench verification failed (rate_ok=%d "
                 "rows_identical=%d budget_respected=%d rss_flat=%d)\n",
                 retention_bench.rate_ok ? 1 : 0,
                 retention_bench.rows_identical ? 1 : 0,
                 retention_bench.budget_respected ? 1 : 0,
                 retention_bench.rss_flat ? 1 : 0);
    return 1;
  }
  int failures = 0;
  for (const QueryRun& run : runs) {
    if (run.failed) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d quer%s failed to execute\n", failures,
                 failures == 1 ? "y" : "ies");
    return 1;
  }
  for (const StreamSuiteRun& suite : stream_suites) {
    if (suite.ingest_failed) {
      std::fprintf(stderr, "streaming ingest failed (%s)\n",
                   suite.suite.c_str());
      return 1;
    }
    for (const StreamQueryRun& q : suite.queries) {
      if (!q.rows_match) {
        std::fprintf(stderr,
                     "streaming row-count mismatch: %s/%s got %zu expected "
                     "%zu\n",
                     suite.suite.c_str(), q.id.c_str(), q.final_rows,
                     q.expected_rows);
        return 1;
      }
    }
  }
  return 0;
}
