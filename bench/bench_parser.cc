// Language front-end micro-benchmarks: AIQL lexing/parsing/analysis and the
// AIQL -> SQL / Cypher translators. Parsing sits on the interactive path of
// every investigation query, so it must stay in the microsecond range.
//
//   $ ./build/bench/bench_parser

#include <benchmark/benchmark.h>

#include "graph/cypher_gen.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "sql/translator.h"

using namespace aiql;

namespace {

const char* kSimpleQuery =
    "(at \"05/10/2018\") agentid = 7 "
    "proc p[\"%cmd.exe\"] read file f return distinct p, f";

const char* kComplexQuery = R"(
  (at "05/10/2018")
  agentid = 7
  proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
  proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
  proc p4["%sbblv.exe"] read file f1 as evt3
  proc p4 read || write ip i1[dstip = "66.77.88.129"] as evt4
  with evt1 before evt2, evt2 before evt3, evt3 before evt4
  return distinct p1, p2, p3, f1, p4, i1
)";

const char* kAnomalyQuery = R"(
  (at "05/10/2018") agentid = 7
  window = 1 min, step = 10 sec
  proc p write ip i[dstip = "66.77.88.129"] as evt
  return p, avg(evt.amount) as amt
  group by p
  having amt > 2 * (amt + amt[1] + amt[2]) / 3
)";

void BM_ParseSimple(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = ParseAiql(kSimpleQuery);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ParseSimple);

void BM_ParseComplex(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = ParseAiql(kComplexQuery);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ParseComplex);

void BM_ParseAnomaly(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = ParseAiql(kAnomalyQuery);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ParseAnomaly);

void BM_Analyze(benchmark::State& state) {
  auto parsed = ParseAiql(kComplexQuery);
  for (auto _ : state) {
    auto analyzed = AnalyzeMultievent(*parsed->multievent, parsed->kind);
    benchmark::DoNotOptimize(analyzed.ok());
  }
}
BENCHMARK(BM_Analyze);

void BM_TranslateSql(benchmark::State& state) {
  auto parsed = ParseAiql(kComplexQuery);
  for (auto _ : state) {
    auto sql = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
    benchmark::DoNotOptimize(sql.ok());
  }
}
BENCHMARK(BM_TranslateSql);

void BM_TranslateCypher(benchmark::State& state) {
  auto parsed = ParseAiql(kComplexQuery);
  for (auto _ : state) {
    auto cypher = TranslateToCypher(*parsed);
    benchmark::DoNotOptimize(cypher.ok());
  }
}
BENCHMARK(BM_TranslateCypher);

}  // namespace

BENCHMARK_MAIN();
