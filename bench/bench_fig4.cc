// Figure 4 reproduction: log10-transformed execution time of the 19 demo-
// attack investigation queries (a1-1 .. a5-5), AIQL vs PostgreSQL-equivalent
// SQL — both engines running on the optimized storage.
//
// Paper reference: AIQL total 3.6 min vs PostgreSQL 77 min => 21x speedup;
// the gap is widest on complex multi-pattern queries (a2-2, a5-5).
//
//   $ ./build/bench/bench_fig4
//   $ AIQL_BENCH_RATE=20000 ./build/bench/bench_fig4      # bigger corpus

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "engine/aiql_engine.h"
#include "query/parser.h"
#include "simulator/queries_a.h"
#include "sql/catalog.h"
#include "sql/sql_executor.h"
#include "sql/translator.h"

using namespace aiql;
using namespace aiql_bench;

int main() {
  ScenarioOptions options = BenchScenarioOptions();
  std::printf("== Figure 4: AIQL vs PostgreSQL (both w/ optimized storage) "
              "==\n");
  std::printf("generating scenario (clients=%d rate=%.0f/host/h "
              "hours=%.1f)...\n",
              options.num_clients, options.events_per_host_per_hour,
              static_cast<double>(options.duration) / kHour);
  DemoScenarioData data = GenerateDemoScenario(options);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("events: %llu raw -> %llu stored, %llu partitions\n\n",
              static_cast<unsigned long long>(db->stats().raw_events),
              static_cast<unsigned long long>(db->stats().total_events),
              static_cast<unsigned long long>(db->stats().total_partitions));

  AiqlEngine aiql_engine(&*db);
  OptimizedCatalog catalog(&*db);
  SqlExecutor sql_engine(&catalog);

  TablePrinter table({"query", "aiql (s)", "log10(aiql)", "postgres (s)",
                      "log10(pg)", "speedup", "rows"});
  int64_t aiql_total = 0;
  int64_t sql_total = 0;
  bool mismatch = false;

  for (const CatalogQuery& query : DemoInvestigationQueries(data.truth)) {
    size_t aiql_rows = 0;
    int64_t aiql_us = TimeUs([&] {
      auto result = aiql_engine.Execute(query.text);
      if (result.ok()) aiql_rows = result->table.num_rows();
    });

    auto parsed = ParseAiql(query.text);
    auto translated = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
    if (!translated.ok()) {
      std::fprintf(stderr, "%s: translation failed: %s\n", query.id.c_str(),
                   translated.status().ToString().c_str());
      return 1;
    }
    size_t sql_rows = 0;
    int64_t sql_us = TimeUs([&] {
      auto result = sql_engine.Execute(translated->sql);
      if (result.ok()) sql_rows = result->table.num_rows();
    });
    if (sql_rows != aiql_rows) mismatch = true;

    aiql_total += aiql_us;
    sql_total += sql_us;
    char log_aiql[16], log_sql[16], speedup[16];
    std::snprintf(log_aiql, sizeof(log_aiql), "%.2f", Log10Seconds(aiql_us));
    std::snprintf(log_sql, sizeof(log_sql), "%.2f", Log10Seconds(sql_us));
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  static_cast<double>(sql_us) /
                      static_cast<double>(aiql_us > 0 ? aiql_us : 1));
    table.AddRow({query.id, FormatSeconds(aiql_us), log_aiql,
                  FormatSeconds(sql_us), log_sql, speedup,
                  std::to_string(aiql_rows)});
  }

  std::printf("%s", table.ToString().c_str());
  std::printf("\ntotal: AIQL %.2f s, PostgreSQL-equivalent %.2f s => "
              "%.1fx speedup (paper: 3.6 min vs 77 min => 21x)\n",
              static_cast<double>(aiql_total) / 1e6,
              static_cast<double>(sql_total) / 1e6,
              static_cast<double>(sql_total) /
                  static_cast<double>(aiql_total > 0 ? aiql_total : 1));
  if (mismatch) {
    std::printf("WARNING: row-count mismatch between engines detected\n");
    return 1;
  }
  return 0;
}
