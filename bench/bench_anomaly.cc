// Anomaly engine sweep (paper §2.2.3/§2.3): sliding-window evaluation cost
// as a function of window length and step, plus history-access depth.
//
//   $ ./build/bench/bench_anomaly

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/table_printer.h"
#include "engine/aiql_engine.h"
#include "simulator/queries_a.h"

using namespace aiql;
using namespace aiql_bench;

int main() {
  ScenarioOptions scenario = BenchScenarioOptions();
  std::printf("== Anomaly query sweep (window x step x history depth) ==\n");
  DemoScenarioData data = GenerateDemoScenario(scenario);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) return 1;
  AiqlEngine engine(&*db);
  const std::string agent = std::to_string(data.truth.database_server);

  struct Config {
    const char* window;
    const char* step;
    const char* having;
  };
  const Config configs[] = {
      {"1 min", "10 sec", "amt > 2 * (amt + amt[1] + amt[2]) / 3"},
      {"1 min", "30 sec", "amt > 2 * (amt + amt[1] + amt[2]) / 3"},
      {"1 min", "1 min", "amt > 2 * (amt + amt[1] + amt[2]) / 3"},
      {"5 min", "10 sec", "amt > 2 * (amt + amt[1] + amt[2]) / 3"},
      {"5 min", "1 min", "amt > 2 * (amt + amt[1] + amt[2]) / 3"},
      {"10 min", "10 min", "amt > 2 * (amt + amt[1] + amt[2]) / 3"},
      {"1 min", "10 sec", "amt > 0"},
      {"1 min", "10 sec",
       "amt > (amt[1] + amt[2] + amt[3] + amt[4] + amt[5]) / 5"},
  };

  TablePrinter table(
      {"window", "step", "having", "time (s)", "rows", "events matched"});
  for (const Config& config : configs) {
    std::string query = "(at \"05/10/2018\")\nagentid = " + agent +
                        "\nwindow = " + config.window +
                        ", step = " + config.step +
                        "\nproc p write ip i as evt\n"
                        "return p, avg(evt.amount) as amt\ngroup by p\n"
                        "having " + config.having;
    size_t rows = 0;
    uint64_t matched = 0;
    int64_t us = TimeUs([&] {
      auto result = engine.Execute(query);
      if (result.ok()) {
        rows = result->table.num_rows();
        matched = result->stats.events_matched;
      } else {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
      }
    });
    table.AddRow({config.window, config.step, config.having,
                  FormatSeconds(us), std::to_string(rows),
                  std::to_string(matched)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
