// Shared helpers for the figure-reproduction benchmark harnesses.
//
// Scale knobs come from the environment so a single binary serves both the
// quick default run and larger sweeps:
//   AIQL_BENCH_RATE     events per host per hour   (default 2000)
//   AIQL_BENCH_CLIENTS  number of client hosts     (default 5)
//   AIQL_BENCH_HOURS    monitored duration (hours) (default 6)

#ifndef AIQL_BENCH_BENCH_COMMON_H_
#define AIQL_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "simulator/scenario.h"

namespace aiql_bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline aiql::ScenarioOptions BenchScenarioOptions() {
  aiql::ScenarioOptions options;
  options.num_clients = static_cast<int>(EnvDouble("AIQL_BENCH_CLIENTS", 5));
  options.events_per_host_per_hour = EnvDouble("AIQL_BENCH_RATE", 2000);
  options.duration = static_cast<aiql::Duration>(
      EnvDouble("AIQL_BENCH_HOURS", 6) * aiql::kHour);
  options.seed = static_cast<uint64_t>(EnvDouble("AIQL_BENCH_SEED", 42));
  return options;
}

/// Wall-clock of one call, in microseconds.
template <typename Fn>
int64_t TimeUs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

inline double Log10Seconds(int64_t micros) {
  double seconds = static_cast<double>(micros) / 1e6;
  if (seconds <= 0) seconds = 1e-6;
  return std::log10(seconds);
}

inline std::string FormatSeconds(int64_t micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", static_cast<double>(micros) / 1e6);
  return buf;
}

}  // namespace aiql_bench

#endif  // AIQL_BENCH_BENCH_COMMON_H_
