// Storage micro-benchmarks (paper §2.1 data stats / storage optimizations):
// ingest throughput with and without deduplication and partitioning, dedup
// ratio on the simulated workload, scan throughput, and the LIKE matcher
// that underlies every entity constraint.
//
//   $ ./build/bench/bench_storage

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/like_matcher.h"
#include "simulator/scenario.h"

using namespace aiql;

namespace {

const std::vector<EventRecord>& SharedRecords() {
  static const std::vector<EventRecord>* records = [] {
    ScenarioOptions options;
    options.num_clients = 4;
    options.events_per_host_per_hour = 2000;
    options.duration = 2 * kHour;
    auto* data = new DemoScenarioData(GenerateDemoScenario(options));
    return &data->records;
  }();
  return *records;
}

void BM_IngestOptimized(benchmark::State& state) {
  const auto& records = SharedRecords();
  for (auto _ : state) {
    StorageOptions options;
    options.dedup_window = state.range(0) * kSecond;
    options.enable_partitioning = state.range(1) != 0;
    AuditDatabase db(options);
    for (const EventRecord& record : records) {
      benchmark::DoNotOptimize(db.Append(record).ok());
    }
    db.Seal();
    benchmark::DoNotOptimize(db.stats().total_events);
  }
  state.SetItemsProcessed(static_cast<int64_t>(records.size()) *
                          state.iterations());
  state.SetLabel("dedup=" + std::to_string(state.range(0)) +
                 "s partitioning=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_IngestOptimized)
    ->Args({3, 1})   // full optimizations
    ->Args({0, 1})   // no dedup
    ->Args({3, 0})   // no partitioning
    ->Args({0, 0})   // neither
    ->Unit(benchmark::kMillisecond);

void BM_DedupRatio(benchmark::State& state) {
  const auto& records = SharedRecords();
  double ratio = 1;
  for (auto _ : state) {
    StorageOptions options;
    options.dedup_window = state.range(0) * kSecond;
    AuditDatabase db(options);
    for (const EventRecord& record : records) {
      (void)db.Append(record);
    }
    db.Seal();
    ratio = static_cast<double>(db.stats().raw_events) /
            static_cast<double>(db.stats().total_events);
  }
  state.counters["dedup_ratio"] = ratio;
  state.SetLabel("window=" + std::to_string(state.range(0)) + "s");
}
BENCHMARK(BM_DedupRatio)->Arg(1)->Arg(3)->Arg(10)->Arg(30)->Unit(
    benchmark::kMillisecond);

void BM_PartitionScan(benchmark::State& state) {
  static const AuditDatabase* db = [] {
    auto result = IngestRecords(SharedRecords(), StorageOptions{});
    return new AuditDatabase(std::move(result).value());
  }();
  uint64_t sum = 0;
  for (auto _ : state) {
    db->ForEachPartition(
        TimeRange{INT64_MIN, INT64_MAX}, std::nullopt,
        [&](const PartitionKey&, const EventPartition& partition) {
          for (const Event& event : partition.events()) {
            sum += event.amount;
          }
        });
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(
      static_cast<int64_t>(db->stats().total_events) * state.iterations());
}
BENCHMARK(BM_PartitionScan)->Unit(benchmark::kMillisecond);

void BM_LikeMatcher(benchmark::State& state) {
  // "C:\Windows\\%": escaped backslash, then the '%' wildcard (a bare "\%"
  // would match a literal percent sign).
  const char* patterns[] = {"%cmd.exe", "C:\\Windows\\\\%", "%info%stealer%",
                            "backup_.dmp"};
  LikeMatcher matcher(patterns[state.range(0)]);
  const std::string inputs[] = {
      "C:\\Windows\\System32\\cmd.exe",
      "/var/www/html/info_stealer.sh",
      "C:\\SQLBackup\\backup1.dmp",
      "C:\\Users\\alice\\Documents\\report.docx",
  };
  size_t hits = 0;
  for (auto _ : state) {
    for (const std::string& input : inputs) {
      hits += matcher.Matches(input) ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(4 * state.iterations());
  state.SetLabel(patterns[state.range(0)]);
}
BENCHMARK(BM_LikeMatcher)->DenseRange(0, 3);

void BM_EntityIndexLookup(benchmark::State& state) {
  static const AuditDatabase* db = [] {
    auto result = IngestRecords(SharedRecords(), StorageOptions{});
    return new AuditDatabase(std::move(result).value());
  }();
  LikeMatcher matcher("%powershell%");
  for (auto _ : state) {
    auto ids = db->entities().FindProcessesByExe(matcher);
    benchmark::DoNotOptimize(ids.size());
  }
}
BENCHMARK(BM_EntityIndexLookup);

}  // namespace

BENCHMARK_MAIN();
