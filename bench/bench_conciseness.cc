// Conciseness comparison (paper §3, post-demo evaluation): semantically
// equivalent SQL contains >= 3.0x more constraints, 3.5x more words, and
// 5.2x more characters (excluding spaces) than the AIQL originals. Cypher
// is compared for the multievent/dependency queries as well.
//
//   $ ./build/bench/bench_conciseness

#include <cstdio>

#include "bench_common.h"
#include "common/table_printer.h"
#include "graph/cypher_gen.h"
#include "query/metrics.h"
#include "query/parser.h"
#include "simulator/queries_a.h"
#include "simulator/queries_c.h"
#include "sql/translator.h"

using namespace aiql;
using namespace aiql_bench;

namespace {

struct Totals {
  size_t constraints = 0;
  size_t words = 0;
  size_t chars = 0;

  void Add(const QueryTextMetrics& metrics) {
    constraints += metrics.constraints;
    words += metrics.words;
    chars += metrics.chars;
  }
};

double Ratio(size_t numerator, size_t denominator) {
  return denominator == 0
             ? 0
             : static_cast<double>(numerator) /
                   static_cast<double>(denominator);
}

}  // namespace

int main() {
  ScenarioOptions options = BenchScenarioOptions();
  DemoScenarioData demo = GenerateDemoScenario(options);
  AtcScenarioData atc = GenerateAtcScenario(options);

  std::vector<CatalogQuery> all = DemoInvestigationQueries(demo.truth);
  for (CatalogQuery& query : AtcInvestigationQueries(atc.truth)) {
    all.push_back(std::move(query));
  }

  TablePrinter table({"query", "aiql c/w/ch", "sql c/w/ch", "cypher c/w/ch",
                      "sql words x", "sql chars x"});
  Totals aiql_totals, sql_totals, cypher_totals;
  size_t cypher_count = 0;

  for (const CatalogQuery& query : all) {
    auto parsed = ParseAiql(query.text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s failed to parse\n", query.id.c_str());
      return 1;
    }
    QueryTextMetrics aiql_metrics = ComputeAiqlMetrics(*parsed);
    auto sql = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
    if (!sql.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   sql.status().ToString().c_str());
      return 1;
    }
    aiql_totals.Add(aiql_metrics);
    sql_totals.Add(sql->metrics);

    std::string cypher_cell = "n/a";
    auto cypher = TranslateToCypher(*parsed);
    if (cypher.ok()) {
      cypher_totals.Add(cypher->metrics);
      ++cypher_count;
      cypher_cell = std::to_string(cypher->metrics.constraints) + "/" +
                    std::to_string(cypher->metrics.words) + "/" +
                    std::to_string(cypher->metrics.chars);
    }

    char words_ratio[16], chars_ratio[16];
    std::snprintf(words_ratio, sizeof(words_ratio), "%.1fx",
                  Ratio(sql->metrics.words, aiql_metrics.words));
    std::snprintf(chars_ratio, sizeof(chars_ratio), "%.1fx",
                  Ratio(sql->metrics.chars, aiql_metrics.chars));
    table.AddRow(
        {query.id,
         std::to_string(aiql_metrics.constraints) + "/" +
             std::to_string(aiql_metrics.words) + "/" +
             std::to_string(aiql_metrics.chars),
         std::to_string(sql->metrics.constraints) + "/" +
             std::to_string(sql->metrics.words) + "/" +
             std::to_string(sql->metrics.chars),
         cypher_cell, words_ratio, chars_ratio});
  }

  std::printf("== Conciseness: AIQL vs SQL vs Cypher over all %zu "
              "investigation queries ==\n", all.size());
  std::printf("%s", table.ToString().c_str());
  std::printf("\naggregate SQL/AIQL ratios: constraints %.1fx, words %.1fx, "
              "chars %.1fx\n",
              Ratio(sql_totals.constraints, aiql_totals.constraints),
              Ratio(sql_totals.words, aiql_totals.words),
              Ratio(sql_totals.chars, aiql_totals.chars));
  std::printf("paper reports: >=3.0x constraints, 3.5x words, 5.2x chars\n");
  std::printf("Cypher (over %zu translatable queries): constraints %.1fx, "
              "words %.1fx, chars %.1fx vs AIQL\n",
              cypher_count,
              Ratio(cypher_totals.constraints, aiql_totals.constraints),
              Ratio(cypher_totals.words, aiql_totals.words),
              Ratio(cypher_totals.chars, aiql_totals.chars));
  return 0;
}
