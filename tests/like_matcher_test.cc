// Unit + property tests for the SQL-LIKE matcher.
//
// The property suite cross-checks the optimized matcher against a simple
// reference recursive implementation on generated patterns and inputs.

#include "common/like_matcher.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "common/rng.h"

namespace aiql {
namespace {

TEST(LikeMatcherTest, LiteralMatchesExactCaseInsensitive) {
  LikeMatcher m("cmd.exe");
  EXPECT_TRUE(m.is_literal());
  EXPECT_TRUE(m.Matches("cmd.exe"));
  EXPECT_TRUE(m.Matches("CMD.EXE"));
  EXPECT_FALSE(m.Matches("cmd.exe2"));
  EXPECT_FALSE(m.Matches("acmd.exe"));
  EXPECT_FALSE(m.Matches(""));
}

TEST(LikeMatcherTest, SuffixPattern) {
  LikeMatcher m("%cmd.exe");
  EXPECT_FALSE(m.is_literal());
  EXPECT_TRUE(m.Matches("cmd.exe"));
  EXPECT_TRUE(m.Matches("C:\\Windows\\System32\\cmd.exe"));
  EXPECT_FALSE(m.Matches("cmd.exe.bak"));
}

TEST(LikeMatcherTest, PrefixPattern) {
  LikeMatcher m("/var/www/%");
  EXPECT_TRUE(m.Matches("/var/www/html/index.html"));
  EXPECT_TRUE(m.Matches("/var/www/"));
  EXPECT_FALSE(m.Matches("/var/log/app.log"));
}

TEST(LikeMatcherTest, SubstringPattern) {
  LikeMatcher m("%info_stealer%");
  // '_' inside a generic pattern matches any single char, so this also
  // matches "info-stealer"; both behaviours verified.
  EXPECT_TRUE(m.Matches("/var/www/uploads/info_stealer.sh"));
  EXPECT_TRUE(m.Matches("info-stealer"));
  EXPECT_FALSE(m.Matches("stealer_info"));
}

TEST(LikeMatcherTest, MatchAll) {
  LikeMatcher m("%");
  EXPECT_TRUE(m.Matches(""));
  EXPECT_TRUE(m.Matches("anything"));
}

TEST(LikeMatcherTest, UnderscoreMatchesSingleChar) {
  LikeMatcher m("a_c");
  EXPECT_TRUE(m.Matches("abc"));
  EXPECT_TRUE(m.Matches("aXc"));
  EXPECT_FALSE(m.Matches("ac"));
  EXPECT_FALSE(m.Matches("abbc"));
}

TEST(LikeMatcherTest, InteriorPercent) {
  LikeMatcher m("backup%.dmp");
  EXPECT_TRUE(m.Matches("backup1.dmp"));
  EXPECT_TRUE(m.Matches("backup.dmp"));
  EXPECT_FALSE(m.Matches("backup1.dm"));
}

TEST(LikeMatcherTest, MultiplePercents) {
  LikeMatcher m("%win%sys%");
  EXPECT_TRUE(m.Matches("C:\\Windows\\System32"));
  EXPECT_FALSE(m.Matches("system windows"));  // order matters
}

TEST(LikeMatcherTest, EmptyPattern) {
  LikeMatcher m("");
  EXPECT_TRUE(m.Matches(""));
  EXPECT_FALSE(m.Matches("x"));
}

TEST(LikeMatcherTest, DoublePercentIsMatchAll) {
  LikeMatcher m("%%");
  EXPECT_TRUE(m.Matches(""));
  EXPECT_TRUE(m.Matches("x"));
  EXPECT_TRUE(m.Matches("anything at all"));
}

TEST(LikeMatcherTest, PatternLongerThanText) {
  EXPECT_FALSE(LikeMatcher("abcdef").Matches("abc"));
  EXPECT_FALSE(LikeMatcher("abc_ef").Matches("abc"));
  EXPECT_FALSE(LikeMatcher("abc%def").Matches("abcde"));
  EXPECT_FALSE(LikeMatcher("%abcdef").Matches("def"));
  EXPECT_FALSE(LikeMatcher("abcdef%").Matches("abc"));
}

TEST(LikeMatcherTest, EscapedPercentMatchesLiteralPercent) {
  LikeMatcher m("100\\%");
  EXPECT_TRUE(m.is_literal());  // no live wildcard remains
  EXPECT_TRUE(m.Matches("100%"));
  EXPECT_FALSE(m.Matches("100"));
  EXPECT_FALSE(m.Matches("100x"));
  EXPECT_FALSE(m.Matches("100\\%"));
}

TEST(LikeMatcherTest, EscapedUnderscoreMatchesLiteralUnderscore) {
  LikeMatcher m("a\\_c");
  EXPECT_TRUE(m.is_literal());
  EXPECT_TRUE(m.Matches("a_c"));
  EXPECT_FALSE(m.Matches("abc"));
  EXPECT_FALSE(m.Matches("aXc"));
}

TEST(LikeMatcherTest, EscapedWildcardsCombineWithLiveOnes) {
  // %\%% : any prefix, a literal '%', any suffix (substring fast path).
  LikeMatcher m("%\\%%");
  EXPECT_TRUE(m.Matches("50% off"));
  EXPECT_TRUE(m.Matches("%"));
  EXPECT_FALSE(m.Matches("fifty percent"));
  // info\_% : literal underscore then a live trailing wildcard.
  LikeMatcher p("info\\_%");
  EXPECT_TRUE(p.Matches("info_stealer"));
  EXPECT_FALSE(p.Matches("info-stealer"));
}

TEST(LikeMatcherTest, EscapedBackslash) {
  // "\\\\" in C++ is two pattern characters: an escaped backslash.
  LikeMatcher m("a\\\\b");
  EXPECT_TRUE(m.Matches("a\\b"));
  EXPECT_FALSE(m.Matches("ab"));
  // "\\\\%" is a literal backslash followed by the live '%' wildcard.
  LikeMatcher p("C:\\\\%");
  EXPECT_TRUE(p.Matches("C:\\Windows"));
  EXPECT_FALSE(p.Matches("C:Windows"));
}

TEST(LikeMatcherTest, BackslashBeforeOrdinaryCharStaysLiteral) {
  // Windows paths keep their meaning: '\' escapes only '%', '_', '\'.
  LikeMatcher m("C:\\Windows\\System32\\cmd.exe");
  EXPECT_TRUE(m.is_literal());
  EXPECT_TRUE(m.Matches("C:\\Windows\\System32\\cmd.exe"));
  EXPECT_TRUE(m.Matches("c:\\windows\\system32\\CMD.EXE"));
  LikeMatcher p("%config\\SAM%");
  EXPECT_TRUE(p.Matches("C:\\Windows\\config\\SAM.bak"));
  EXPECT_FALSE(p.Matches("C:\\Windows\\config-SAM"));
}

TEST(LikeMatcherTest, TrailingLoneBackslashIsLiteral) {
  LikeMatcher m("C:\\Temp\\");
  EXPECT_TRUE(m.is_literal());
  EXPECT_TRUE(m.Matches("C:\\Temp\\"));
  EXPECT_FALSE(m.Matches("C:\\Temp"));
}

TEST(LikeMatcherTest, NonAsciiBytesPassThroughCaseFold) {
  // High-bit bytes (e.g. UTF-8 continuation bytes) must survive the
  // unsigned-char tolower round trip byte-identically.
  const std::string accented = "caf\xC3\xA9.exe";
  EXPECT_TRUE(LikeMatcher(accented).Matches(accented));
  EXPECT_TRUE(LikeMatcher("caf%").Matches(accented));
  EXPECT_TRUE(LikeMatcher("%\xC3\xA9.exe").Matches(accented));
  EXPECT_TRUE(LikeMatcher("caf_.exe").Matches("caf\xE9.exe"));  // one byte
  EXPECT_FALSE(LikeMatcher("caf_.exe").Matches(accented));      // two bytes
}

TEST(LikeMatcherTest, SpecificityRankOrdering) {
  EXPECT_LT(LikeMatcher("cmd.exe").SpecificityRank(),
            LikeMatcher("%cmd.exe").SpecificityRank());
  EXPECT_LT(LikeMatcher("%cmd.exe").SpecificityRank(),
            LikeMatcher("%cmd%").SpecificityRank());
  EXPECT_LT(LikeMatcher("%cmd%").SpecificityRank(),
            LikeMatcher("%").SpecificityRank());
}

// Reference implementation: straightforward recursion on lowered strings,
// honoring the escape rule ('\' before '%', '_' or '\' makes it literal).
bool RefMatch(const std::string& p, size_t pi, const std::string& t,
              size_t ti) {
  if (pi == p.size()) return ti == t.size();
  bool escaped = p[pi] == '\\' && pi + 1 < p.size() &&
                 (p[pi + 1] == '%' || p[pi + 1] == '_' || p[pi + 1] == '\\');
  if (escaped) {
    if (ti == t.size() || t[ti] != p[pi + 1]) return false;
    return RefMatch(p, pi + 2, t, ti + 1);
  }
  if (p[pi] == '%') {
    for (size_t skip = 0; ti + skip <= t.size(); ++skip) {
      if (RefMatch(p, pi + 1, t, ti + skip)) return true;
    }
    return false;
  }
  if (ti == t.size()) return false;
  if (p[pi] == '_' || std::tolower(static_cast<unsigned char>(p[pi])) ==
                          std::tolower(static_cast<unsigned char>(t[ti]))) {
    return RefMatch(p, pi + 1, t, ti + 1);
  }
  return false;
}

class LikePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LikePropertyTest, AgreesWithReferenceImplementation) {
  Rng rng(GetParam());
  const std::string alphabet = "abX.\\/";
  for (int iter = 0; iter < 400; ++iter) {
    // Random pattern over alphabet + wildcards, length 0..10.
    std::string pattern;
    size_t plen = rng.Uniform(11);
    for (size_t i = 0; i < plen; ++i) {
      int pick = static_cast<int>(rng.Uniform(8));
      if (pick == 0) {
        pattern += '%';
      } else if (pick == 1) {
        pattern += '_';
      } else {
        pattern += alphabet[rng.Uniform(alphabet.size())];
      }
    }
    std::string text;
    size_t tlen = rng.Uniform(13);
    for (size_t i = 0; i < tlen; ++i) {
      text += alphabet[rng.Uniform(alphabet.size())];
    }
    LikeMatcher matcher(pattern);
    bool expected = RefMatch(pattern, 0, text, 0);
    EXPECT_EQ(matcher.Matches(text), expected)
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace aiql
