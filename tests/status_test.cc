// Unit tests for Status / Result error handling.

#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace aiql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::SemanticError("x").code(), StatusCode::kSemanticError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseAssignOrReturn(int v, int* out) {
  AIQL_ASSIGN_OR_RETURN(int halved, HalveEven(v));
  AIQL_ASSIGN_OR_RETURN(int quartered, HalveEven(halved));
  *out = quartered;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesAndAssigns) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseAssignOrReturn(6, &out);  // 6/2=3 is odd -> error
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status FailFast(bool fail) {
  AIQL_RETURN_IF_ERROR(fail ? Status::IOError("disk") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailFast(false).ok());
  EXPECT_EQ(FailFast(true).code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace aiql
