// Unit tests for pruning-power estimation and pattern scheduling.

#include "engine/scheduler.h"

#include <gtest/gtest.h>

#include "query/analyzer.h"
#include "query/parser.h"
#include "storage/database.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions options;
    options.dedup_window = 0;
    db_ = std::make_unique<AuditDatabase>(options);
    // "noisy.exe" produces 500 write events; "rare.exe" produces 2.
    ProcessRef noisy{1, 10, "noisy.exe", "u"};
    ProcessRef rare{1, 11, "rare.exe", "u"};
    for (int i = 0; i < 500; ++i) {
      EventRecord record;
      record.agent_id = 1;
      record.op = OpType::kWrite;
      record.start_ts = T0() + i * kSecond;
      record.end_ts = record.start_ts + kSecond;
      record.subject = noisy;
      record.object = FileRef{1, "/bulk/file" + std::to_string(i % 40)};
      ASSERT_TRUE(db_->Append(record).ok());
    }
    for (int i = 0; i < 2; ++i) {
      EventRecord record;
      record.agent_id = 1;
      record.op = OpType::kRead;
      record.start_ts = T0() + i * kMinute;
      record.end_ts = record.start_ts + kSecond;
      record.subject = rare;
      record.object = FileRef{1, "/secret/key.pem"};
      ASSERT_TRUE(db_->Append(record).ok());
    }
    db_->Seal();
    view_ = db_->OpenReadView();
  }

  std::vector<CompiledPattern> Compile(const std::string& text,
                                       AnalyzedQuery* analyzed_out) {
    auto parsed = ParseAiql(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto analyzed = AnalyzeMultievent(*parsed->multievent, parsed->kind);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    *analyzed_out = *analyzed;
    // Keep the AST alive for the duration of the test via the static.
    parsed_storage_.push_back(std::move(parsed).value());
    analyzed_out->ast = parsed_storage_.back().multievent.get();
    auto compiled = CompilePatterns(*analyzed_out, db_->entities());
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return std::move(compiled).value();
  }

  std::unique_ptr<AuditDatabase> db_;
  ReadView view_;
  std::vector<ParsedQuery> parsed_storage_;
};

TEST_F(SchedulerTest, EstimatesReflectSelectivity) {
  AnalyzedQuery analyzed;
  auto patterns = Compile(
      "proc a[\"%noisy%\"] write file f1 as e1 "
      "proc b[\"%rare%\"] read file f2 as e2 "
      "return a, b",
      &analyzed);
  ASSERT_EQ(patterns.size(), 2u);
  double noisy_est =
      *EstimateCardinality(patterns[0], view_, analyzed.agent_filter);
  double rare_est =
      *EstimateCardinality(patterns[1], view_, analyzed.agent_filter);
  EXPECT_GT(noisy_est, rare_est);
  EXPECT_GE(noisy_est, 400);  // close to the true 500
  EXPECT_LE(rare_est, 10);    // close to the true 2
}

TEST_F(SchedulerTest, SchedulesMostSelectiveFirst) {
  AnalyzedQuery analyzed;
  auto patterns = Compile(
      "proc a[\"%noisy%\"] write file f1 as e1 "
      "proc b[\"%rare%\"] read file f2 as e2 "
      "return a, b",
      &analyzed);
  EngineOptions options;
  auto order =
      SchedulePatterns(&patterns, view_, analyzed.agent_filter, options);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  ASSERT_EQ(order->size(), 2u);
  EXPECT_EQ((*order)[0], 1u);  // the rare pattern runs first
  EXPECT_EQ((*order)[1], 0u);
}

TEST_F(SchedulerTest, ReorderingCanBeDisabled) {
  AnalyzedQuery analyzed;
  auto patterns = Compile(
      "proc a[\"%noisy%\"] write file f1 as e1 "
      "proc b[\"%rare%\"] read file f2 as e2 "
      "return a, b",
      &analyzed);
  EngineOptions options;
  options.enable_reordering = false;
  auto order =
      SchedulePatterns(&patterns, view_, analyzed.agent_filter, options);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  EXPECT_EQ((*order)[0], 0u);
  EXPECT_EQ((*order)[1], 1u);
}

TEST_F(SchedulerTest, OpMaskDrivesBaseEstimate) {
  AnalyzedQuery analyzed;
  // Unconstrained subjects: estimates come from per-op partition counts.
  auto patterns = Compile(
      "proc a write file f1 as e1 "
      "proc b read file f2 as e2 "
      "return a, b",
      &analyzed);
  double writes =
      *EstimateCardinality(patterns[0], view_, analyzed.agent_filter);
  double reads =
      *EstimateCardinality(patterns[1], view_, analyzed.agent_filter);
  EXPECT_NEAR(writes, 500, 50);
  EXPECT_NEAR(reads, 2, 1);
}

TEST_F(SchedulerTest, ObjectSelectivityScalesEstimate) {
  AnalyzedQuery analyzed;
  auto patterns = Compile(
      "proc a write file f1[\"/bulk/file1\"] as e1 "
      "proc b write file f2 as e2 "
      "return a, b",
      &analyzed);
  double constrained =
      *EstimateCardinality(patterns[0], view_, analyzed.agent_filter);
  double unconstrained =
      *EstimateCardinality(patterns[1], view_, analyzed.agent_filter);
  EXPECT_LT(constrained, unconstrained);
}

TEST_F(SchedulerTest, TimeWindowLimitsEstimate) {
  AnalyzedQuery analyzed;
  auto patterns = Compile(
      "(from \"05/11/2018\" to \"05/12/2018\") "
      "proc a write file f1 as e1 return a",
      &analyzed);
  // All data is on 05/10: nothing in range.
  EXPECT_EQ(*EstimateCardinality(patterns[0], view_, analyzed.agent_filter),
            0);
}

}  // namespace
}  // namespace aiql
