// Edge-case tests for the mini-SQL engine: NULL semantics, COALESCE,
// arithmetic typing, IN lists, DISTINCT/LIMIT, windows() validation, and
// error reporting.

#include <gtest/gtest.h>

#include "sql/catalog.h"
#include "sql/sql_executor.h"
#include "storage/database.h"

namespace aiql {
namespace {

class SqlEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions options;
    options.dedup_window = 0;
    db_ = std::make_unique<AuditDatabase>(options);
    Timestamp t = *MakeTimestamp(2018, 5, 10);
    for (int i = 0; i < 10; ++i) {
      EventRecord record;
      record.agent_id = 1 + (i % 2);
      record.op = i % 3 == 0 ? OpType::kRead : OpType::kWrite;
      record.start_ts = t + i * kMinute;
      record.end_ts = record.start_ts + kSecond;
      record.amount = 100 * (i + 1);
      record.subject = ProcessRef{record.agent_id, 10u + (i % 3),
                                  "proc" + std::to_string(i % 3), "u"};
      record.object = FileRef{record.agent_id, "/f" + std::to_string(i % 4)};
      ASSERT_TRUE(db_->Append(record).ok());
    }
    db_->Seal();
    catalog_ = std::make_unique<OptimizedCatalog>(db_.get());
    executor_ = std::make_unique<SqlExecutor>(catalog_.get());
  }

  ResultTable Run(const std::string& sql) {
    auto result = executor_->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
    return result.ok() ? std::move(result)->table : ResultTable{};
  }

  std::unique_ptr<AuditDatabase> db_;
  std::unique_ptr<OptimizedCatalog> catalog_;
  std::unique_ptr<SqlExecutor> executor_;
};

TEST_F(SqlEdgeTest, ArithmeticKeepsIntegerTypeExceptDivision) {
  ResultTable t = Run("SELECT e.amount + 1, e.amount / 3 FROM events e "
                      "WHERE e.amount = 100");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(ValueToString(t.rows[0][0]), "101");
  // Division always produces a double.
  EXPECT_EQ(ValueToString(t.rows[0][1]), "33.33");
}

TEST_F(SqlEdgeTest, InListAndBetweenStyleRanges) {
  ResultTable t = Run(
      "SELECT p.pid FROM process p WHERE p.pid IN (10, 12) "
      "AND p.pid >= 10 AND p.pid <= 12");
  // pids are 10,11,12 across agents; IN keeps 10 and 12 (per agent).
  for (const auto& row : t.rows) {
    EXPECT_NE(ValueToString(row[0]), "11");
  }
  EXPECT_GE(t.num_rows(), 2u);
}

TEST_F(SqlEdgeTest, NullComparisonsAreFalse) {
  // COALESCE(NULL-producing column) — b.pid is null for unmatched rows.
  ResultTable t = Run(
      "SELECT a.pid, COALESCE(b.pid, 0) FROM "
      "(SELECT p.pid AS pid FROM process p) a "
      "LEFT JOIN (SELECT p.pid AS pid FROM process p WHERE p.pid > 999) b "
      "ON b.pid = a.pid WHERE COALESCE(b.pid, 0) = 0");
  // No process has pid > 999, so every row is null-extended and kept.
  EXPECT_GT(t.num_rows(), 0u);
  for (const auto& row : t.rows) {
    EXPECT_EQ(ValueToString(row[1]), "0");
  }
}

TEST_F(SqlEdgeTest, DistinctAndLimitCompose) {
  ResultTable all = Run("SELECT DISTINCT s.exe_name FROM events e, process s "
                        "WHERE s.id = e.subject_id");
  EXPECT_LE(all.num_rows(), 6u);  // 3 names x up to 2 agents
  ResultTable limited = Run(
      "SELECT DISTINCT s.exe_name FROM events e, process s "
      "WHERE s.id = e.subject_id LIMIT 2");
  EXPECT_EQ(limited.num_rows(), 2u);
}

TEST_F(SqlEdgeTest, CountDistinguishesStarAndColumn) {
  ResultTable t = Run(
      "SELECT COUNT(*) AS all_rows, SUM(e.amount) AS total FROM events e");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(ValueToString(t.rows[0][0]), "10");
  EXPECT_EQ(ValueToString(t.rows[0][1]), "5500");
}

TEST_F(SqlEdgeTest, AggregatesOfEmptyInputAreNullCountZero) {
  ResultTable t = Run(
      "SELECT COUNT(*) AS n, MAX(e.amount) AS biggest FROM events e "
      "WHERE e.amount > 99999");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(ValueToString(t.rows[0][0]), "0");
  EXPECT_EQ(ValueToString(t.rows[0][1]), "NULL");
}

TEST_F(SqlEdgeTest, OrAndNotPrecedence) {
  ResultTable t = Run(
      "SELECT e.amount FROM events e "
      "WHERE NOT e.op = 'read' AND (e.amount = 200 OR e.amount = 300)");
  // amount 200 (i=1, write) and 300 (i=2, write); i=3 is read.
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(SqlEdgeTest, WindowsFunctionValidation) {
  auto bad = executor_->Execute(
      "SELECT w.idx FROM windows(0, 100, 0, 10) w");
  EXPECT_FALSE(bad.ok());
  auto missing_alias = executor_->Execute(
      "SELECT idx FROM windows(0, 100, 10, 10)");
  EXPECT_FALSE(missing_alias.ok());
}

TEST_F(SqlEdgeTest, UnknownTableAndEmptyFromAreErrors) {
  EXPECT_FALSE(executor_->Execute("SELECT x FROM nonexistent t").ok());
  EXPECT_FALSE(executor_->Execute("SELECT 1").ok());  // no FROM clause
}

TEST_F(SqlEdgeTest, UnknownColumnYieldsNullNotCrash) {
  ResultTable t = Run("SELECT e.bogus_column FROM events e LIMIT 1");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(ValueToString(t.rows[0][0]), "NULL");
}

TEST_F(SqlEdgeTest, LikeIsCaseInsensitive) {
  // Documented divergence from stock PostgreSQL: LIKE behaves like ILIKE to
  // match AIQL semantics.
  ResultTable t = Run(
      "SELECT DISTINCT p.exe_name FROM process p "
      "WHERE p.exe_name LIKE 'PROC0'");
  EXPECT_GE(t.num_rows(), 1u);
}

TEST_F(SqlEdgeTest, GroupByMultipleKeys) {
  ResultTable t = Run(
      "SELECT e.agentid, e.op, COUNT(*) AS n FROM events e "
      "GROUP BY e.agentid, e.op");
  // agents {1,2} x ops {read,write} = up to 4 groups.
  EXPECT_GE(t.num_rows(), 3u);
  EXPECT_LE(t.num_rows(), 4u);
}

TEST_F(SqlEdgeTest, SubqueryColumnsAddressableByAlias) {
  ResultTable t = Run(
      "SELECT sub.n FROM "
      "(SELECT e.agentid AS a, COUNT(*) AS n FROM events e "
      " GROUP BY e.agentid) sub "
      "WHERE sub.a = 1");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(ValueToString(t.rows[0][0]), "5");
}

}  // namespace
}  // namespace aiql
