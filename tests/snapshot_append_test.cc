// SnapshotAppender unit tests: append + commit + read-back round trip,
// recovery from the newest valid footer, crash injection at the
// demotion-write and footer-commit failpoints (no partition loss, clean
// fallback to the previous commit), torn-footer fallback, and footer
// pruning.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/time_utils.h"
#include "storage/database.h"
#include "storage/snapshot_append.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, Timestamp start, const std::string& exe,
                const std::string& path) {
  EventRecord record;
  record.agent_id = agent;
  record.op = OpType::kWrite;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = 7;
  record.subject =
      ProcessRef{agent, static_cast<uint32_t>(100 + agent), exe, "root"};
  record.object = FileRef{agent, path};
  return record;
}

/// Sealed database with several (bucket, agent) partitions to demote.
AuditDatabase BuildSealedDb(int events_per_bucket = 25) {
  StorageOptions options;
  options.partition_duration = kHour;
  AuditDatabase db(options);
  for (AgentId agent = 1; agent <= 2; ++agent) {
    for (int hour = 0; hour < 3; ++hour) {
      for (int i = 0; i < events_per_bucket; ++i) {
        EXPECT_TRUE(db.Append(Rec(agent, T0() + hour * kHour + i * kMinute,
                                  "p" + std::to_string(agent),
                                  "/f" + std::to_string(i)))
                        .ok());
      }
    }
  }
  EXPECT_TRUE(db.Seal().ok());
  return db;
}

bool EventsEqual(const Event& a, const Event& b) {
  return a.start_ts == b.start_ts && a.end_ts == b.end_ts &&
         a.amount == b.amount && a.subject == b.subject &&
         a.object == b.object && a.agent_id == b.agent_id &&
         a.merge_count == b.merge_count && a.op == b.op &&
         a.object_type == b.object_type;
}

class SnapshotAppendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoint::ClearAll();
    dir_ = std::string("/tmp/aiql_snapshot_append_test_") +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    RemoveDir();
  }
  void TearDown() override {
    Failpoint::ClearAll();
    RemoveDir();
  }

  void RemoveDir() {
    std::remove((dir_ + "/DATA").c_str());
    for (uint64_t seq = 0; seq <= 64; ++seq) {
      std::remove(FooterPath(seq).c_str());
    }
    std::remove((dir_ + "/FOOTER.tmp").c_str());
    rmdir(dir_.c_str());
  }

  std::string FooterPath(uint64_t seq) const {
    return dir_ + "/FOOTER." + std::to_string(seq);
  }

  bool FooterExists(uint64_t seq) const {
    struct stat st;
    return stat(FooterPath(seq).c_str(), &st) == 0;
  }

  /// Appends every sealed partition of `db` and returns the dir entries.
  std::vector<snapfmt::PartitionDirEntry> AppendAll(
      SnapshotAppender* appender, const AuditDatabase& db) {
    std::vector<snapfmt::PartitionDirEntry> entries;
    for (const auto& [key, partition] : db.ListSealedPartitions()) {
      auto entry = appender->AppendPartition(
          std::get<0>(key), std::get<1>(key), std::get<2>(key), *partition);
      EXPECT_TRUE(entry.ok()) << entry.status().ToString();
      if (entry.ok()) entries.push_back(*entry);
    }
    return entries;
  }

  std::string dir_;
};

TEST_F(SnapshotAppendTest, AppendCommitReadBackRoundTrip) {
  AuditDatabase db = BuildSealedDb();
  auto sealed = db.ListSealedPartitions();
  ASSERT_FALSE(sealed.empty());

  auto appender = SnapshotAppender::Open(dir_);
  ASSERT_TRUE(appender.ok()) << appender.status().ToString();
  EXPECT_FALSE((*appender)->recovered().has_value());
  EXPECT_EQ((*appender)->footer_seq(), 0u);

  std::vector<snapfmt::PartitionDirEntry> entries =
      AppendAll(appender->get(), db);
  ASSERT_EQ(entries.size(), sealed.size());
  ASSERT_TRUE((*appender)
                  ->Commit(db.options(), db.stats(), db.entities(), entries)
                  .ok());
  EXPECT_EQ((*appender)->footer_seq(), 1u);

  // Read back every partition through the appender and compare rows.
  for (size_t i = 0; i < entries.size(); ++i) {
    auto loaded = (*appender)->ReadPartition(entries[i], db.entities());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const std::vector<Event>& got = (*loaded)->events();
    const std::vector<Event>& want = sealed[i].second->events();
    ASSERT_EQ(got.size(), want.size());
    for (size_t e = 0; e < want.size(); ++e) {
      EXPECT_TRUE(EventsEqual(got[e], want[e])) << "partition " << i
                                                << " event " << e;
    }
    EXPECT_EQ(entries[i].events, want.size());
  }
}

TEST_F(SnapshotAppendTest, ReopenRecoversNewestCommit) {
  AuditDatabase db = BuildSealedDb();
  uint64_t expected_footer = 0;
  {
    auto appender = SnapshotAppender::Open(dir_);
    ASSERT_TRUE(appender.ok());
    auto entries = AppendAll(appender->get(), db);
    ASSERT_TRUE((*appender)
                    ->Commit(db.options(), db.stats(), db.entities(), entries)
                    .ok());
    // Second commit with the same directory: recovery must pick this one.
    ASSERT_TRUE((*appender)
                    ->Commit(db.options(), db.stats(), db.entities(), entries)
                    .ok());
    expected_footer = (*appender)->footer_seq();
  }

  auto reopened = SnapshotAppender::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->recovered().has_value());
  const SnapshotAppender::RecoveredState& state = *(*reopened)->recovered();
  EXPECT_EQ(state.footer_seq, expected_footer);
  EXPECT_EQ(state.partitions.size(), db.ListSealedPartitions().size());
  EXPECT_EQ(state.stats.total_events, db.stats().total_events);
  EXPECT_EQ(state.options.partition_duration,
            db.options().partition_duration);
  EXPECT_EQ(state.entities.processes(), db.entities().processes());

  // Every recovered partition reads back through the reopened appender.
  for (const snapfmt::PartitionDirEntry& entry : state.partitions) {
    auto loaded = (*reopened)->ReadPartition(entry, state.entities);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ((*loaded)->size(), entry.events);
  }
}

TEST_F(SnapshotAppendTest, UncommittedAppendsInvisibleAfterReopen) {
  AuditDatabase db = BuildSealedDb();
  auto sealed = db.ListSealedPartitions();
  {
    auto appender = SnapshotAppender::Open(dir_);
    ASSERT_TRUE(appender.ok());
    // Commit only the first partition; append (but never commit) the rest.
    auto first = (*appender)->AppendPartition(
        std::get<0>(sealed[0].first), std::get<1>(sealed[0].first),
        std::get<2>(sealed[0].first), *sealed[0].second);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE((*appender)
                    ->Commit(db.options(), db.stats(), db.entities(), {*first})
                    .ok());
    for (size_t i = 1; i < sealed.size(); ++i) {
      ASSERT_TRUE((*appender)
                      ->AppendPartition(std::get<0>(sealed[i].first),
                                        std::get<1>(sealed[i].first),
                                        std::get<2>(sealed[i].first),
                                        *sealed[i].second)
                      .ok());
    }
  }
  auto reopened = SnapshotAppender::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->recovered().has_value());
  EXPECT_EQ((*reopened)->recovered()->partitions.size(), 1u);
}

TEST_F(SnapshotAppendTest, CommitFailpointFallsBackToPreviousFooter) {
  AuditDatabase db = BuildSealedDb();
  auto sealed = db.ListSealedPartitions();
  ASSERT_GE(sealed.size(), 2u);
  {
    auto appender = SnapshotAppender::Open(dir_);
    ASSERT_TRUE(appender.ok());
    auto entries = AppendAll(appender->get(), db);
    std::vector<snapfmt::PartitionDirEntry> first(entries.begin(),
                                                  entries.begin() + 1);
    ASSERT_TRUE((*appender)
                    ->Commit(db.options(), db.stats(), db.entities(), first)
                    .ok());

    // The injected crash point sits after the DATA fsync, before the new
    // footer becomes visible — the worst moment for a real crash.
    ASSERT_TRUE(
        Failpoint::Configure("retention.commit=error(IOError)").ok());
    Status failed =
        (*appender)->Commit(db.options(), db.stats(), db.entities(), entries);
    EXPECT_EQ(failed.code(), StatusCode::kIOError);
    Failpoint::ClearAll();
  }

  auto reopened = SnapshotAppender::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->recovered().has_value());
  const SnapshotAppender::RecoveredState& state = *(*reopened)->recovered();
  EXPECT_EQ(state.partitions.size(), 1u);
  // The committed partition survived intact — no partition loss.
  auto loaded = (*reopened)->ReadPartition(state.partitions[0],
                                           state.entities);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), sealed[0].second->size());

  // The directory stays writable: the next commit from the reopened
  // appender publishes everything.
  AuditDatabase db2 = BuildSealedDb();
  auto entries = AppendAll(reopened->get(), db2);
  ASSERT_TRUE((*reopened)
                  ->Commit(db2.options(), db2.stats(), db2.entities(), entries)
                  .ok());
}

TEST_F(SnapshotAppendTest, CorruptedDemotionWriteDetectedOnRead) {
  AuditDatabase db = BuildSealedDb();
  auto sealed = db.ListSealedPartitions();
  auto appender = SnapshotAppender::Open(dir_);
  ASSERT_TRUE(appender.ok());

  // The corrupt action flips one bit AFTER the checksum was computed, so
  // the segment lands on disk broken but carries a "clean" checksum ref.
  ASSERT_TRUE(
      Failpoint::Configure("retention.demote.write=corrupt@once").ok());
  auto entry = (*appender)->AppendPartition(
      std::get<0>(sealed[0].first), std::get<1>(sealed[0].first),
      std::get<2>(sealed[0].first), *sealed[0].second);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  auto loaded = (*appender)->ReadPartition(*entry, db.entities());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);

  // An injected write error aborts the append outright.
  ASSERT_TRUE(
      Failpoint::Configure("retention.demote.write=error(IOError)").ok());
  auto failed = (*appender)->AppendPartition(
      std::get<0>(sealed[1].first), std::get<1>(sealed[1].first),
      std::get<2>(sealed[1].first), *sealed[1].second);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
}

TEST_F(SnapshotAppendTest, TornLatestFooterFallsBackToPrevious) {
  AuditDatabase db = BuildSealedDb();
  uint64_t last = 0;
  {
    auto appender = SnapshotAppender::Open(dir_);
    ASSERT_TRUE(appender.ok());
    auto entries = AppendAll(appender->get(), db);
    std::vector<snapfmt::PartitionDirEntry> first(entries.begin(),
                                                  entries.begin() + 1);
    ASSERT_TRUE((*appender)
                    ->Commit(db.options(), db.stats(), db.entities(), first)
                    .ok());
    ASSERT_TRUE((*appender)
                    ->Commit(db.options(), db.stats(), db.entities(), entries)
                    .ok());
    last = (*appender)->footer_seq();
  }
  // Tear the newest footer mid-file (a crashed rename/write).
  {
    FILE* f = fopen(FooterPath(last).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    ASSERT_GT(size, 8);
    ASSERT_EQ(ftruncate(fileno(f), size / 2), 0);
    fclose(f);
  }
  auto reopened = SnapshotAppender::Open(dir_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->recovered().has_value());
  EXPECT_EQ((*reopened)->recovered()->footer_seq, last - 1);
  EXPECT_EQ((*reopened)->recovered()->partitions.size(), 1u);
}

TEST_F(SnapshotAppendTest, CommitPrunesOldFootersKeepingSafetyMargin) {
  AuditDatabase db = BuildSealedDb(5);
  auto appender = SnapshotAppender::Open(dir_);
  ASSERT_TRUE(appender.ok());
  auto entries = AppendAll(appender->get(), db);
  const uint64_t commits = SnapshotAppender::kKeepFooters + 4;
  for (uint64_t i = 0; i < commits; ++i) {
    ASSERT_TRUE((*appender)
                    ->Commit(db.options(), db.stats(), db.entities(), entries)
                    .ok());
  }
  EXPECT_EQ((*appender)->footer_seq(), commits);
  size_t present = 0;
  for (uint64_t seq = 1; seq <= commits; ++seq) {
    if (FooterExists(seq)) {
      ++present;
      EXPECT_GT(seq + SnapshotAppender::kKeepFooters, commits)
          << "footer " << seq << " should have been pruned";
    }
  }
  EXPECT_EQ(present, SnapshotAppender::kKeepFooters);
  EXPECT_TRUE(FooterExists(commits));
}

}  // namespace
}  // namespace aiql
