// Corruption-injection tests for the v2 snapshot format: every truncation
// point and every single-bit flip must surface as a clean Status — never a
// crash, never silently wrong data. Sections are targeted individually
// (magic, version, META segment, partition segments, footer, trailer), and
// a golden v1 fixture pins the backward-compat load path.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "engine/aiql_engine.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, OpType op, Timestamp start, uint64_t amount,
                std::string exe, ObjectRef object) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = amount;
  record.subject = ProcessRef{agent, 7, std::move(exe), "root"};
  record.object = std::move(object);
  return record;
}

AuditDatabase BuildDatabase() {
  StorageOptions options;
  options.partition_duration = kHour;
  options.dedup_window = 2 * kSecond;
  AuditDatabase db(options);
  for (AgentId agent = 1; agent <= 2; ++agent) {
    for (int i = 0; i < 60; ++i) {
      OpType op = i % 2 == 0 ? OpType::kRead : OpType::kWrite;
      EXPECT_TRUE(db.Append(Rec(agent, op, T0() + i * 2 * kMinute, 10 + i,
                                "proc" + std::to_string(i % 3),
                                FileRef{agent,
                                        "/tmp/f" + std::to_string(i % 7)}))
                      .ok());
    }
  }
  EXPECT_TRUE(db.Seal().ok());
  return db;
}

std::string ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out(static_cast<size_t>(size), '\0');
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

uint64_t ReadLittleEndian64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string("/tmp/aiql_snapshot_corruption_test.snap");
    AuditDatabase db = BuildDatabase();
    ASSERT_TRUE(SaveSnapshot(db, *path_).ok());
    golden_ = new std::string(ReadFile(*path_));
    ASSERT_GT(golden_->size(), 100u);
  }

  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete golden_;
    path_ = nullptr;
    golden_ = nullptr;
  }

  /// Full load of the current file contents; must never crash.
  static Status TryLoad() { return LoadSnapshot(*path_).status(); }

  static std::string* path_;
  static std::string* golden_;
};

std::string* SnapshotCorruptionTest::path_ = nullptr;
std::string* SnapshotCorruptionTest::golden_ = nullptr;

TEST_F(SnapshotCorruptionTest, EveryTruncationFailsCleanly) {
  const std::string& golden = *golden_;
  for (size_t len = 0; len < golden.size(); ++len) {
    WriteFile(*path_, golden.substr(0, len));
    Status status = TryLoad();
    ASSERT_FALSE(status.ok()) << "truncation at " << len << " bytes loaded";
    ASSERT_TRUE(status.code() == StatusCode::kCorruption ||
                status.code() == StatusCode::kIOError)
        << "truncation at " << len << ": " << status.ToString();
  }
}

TEST_F(SnapshotCorruptionTest, EverySingleBitFlipIsDetected) {
  const std::string& golden = *golden_;
  // Every byte of the file is covered by the magic/version checks or by a
  // section checksum, so any single-bit flip must fail the full load.
  for (size_t pos = 0; pos < golden.size(); ++pos) {
    std::string corrupt = golden;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << (pos % 8)));
    WriteFile(*path_, corrupt);
    Status status = TryLoad();
    ASSERT_FALSE(status.ok())
        << "bit flip at byte " << pos << " loaded successfully";
  }
}

TEST_F(SnapshotCorruptionTest, HeaderMagicAndVersionAreChecked) {
  std::string corrupt = *golden_;
  corrupt[0] = 'X';
  WriteFile(*path_, corrupt);
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);
  EXPECT_EQ(SnapshotStore::Open(*path_).status().code(),
            StatusCode::kCorruption);

  corrupt = *golden_;
  corrupt[8] = 99;  // format version
  WriteFile(*path_, corrupt);
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotCorruptionTest, TrailerDamageIsDetected) {
  // Tail magic destroyed (classic torn-write signature).
  std::string corrupt = *golden_;
  for (size_t i = corrupt.size() - 8; i < corrupt.size(); ++i) {
    corrupt[i] = 0;
  }
  WriteFile(*path_, corrupt);
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);

  // Footer offset pointing outside the file.
  corrupt = *golden_;
  size_t offset_pos = corrupt.size() - 24;
  for (size_t i = 0; i < 8; ++i) {
    corrupt[offset_pos + i] = static_cast<char>(0xFF);
  }
  WriteFile(*path_, corrupt);
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);

  // Footer checksum flipped.
  corrupt = *golden_;
  corrupt[corrupt.size() - 16] =
      static_cast<char>(corrupt[corrupt.size() - 16] ^ 0xFF);
  WriteFile(*path_, corrupt);
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotCorruptionTest, MetaSegmentCorruptionFailsAtOpen) {
  // The META segment starts right after the 12-byte header and is read
  // eagerly, so Open itself must fail.
  std::string corrupt = *golden_;
  corrupt[12] = static_cast<char>(corrupt[12] ^ 0x40);
  WriteFile(*path_, corrupt);
  EXPECT_EQ(SnapshotStore::Open(*path_).status().code(),
            StatusCode::kCorruption);
}

TEST_F(SnapshotCorruptionTest, LazyPartitionCorruptionFailsAtQueryTime) {
  // A flip inside a partition segment is only discovered when that segment
  // is materialized: Open succeeds (footer + META intact), and the query
  // that touches the partition returns a clean Corruption error.
  std::string corrupt = *golden_;
  uint64_t footer_offset = ReadLittleEndian64(corrupt, corrupt.size() - 24);
  ASSERT_GT(footer_offset, 20u);
  size_t target = static_cast<size_t>(footer_offset) - 10;  // last segment
  corrupt[target] = static_cast<char>(corrupt[target] ^ 0x10);
  WriteFile(*path_, corrupt);

  auto store = SnapshotStore::Open(*path_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->loaded_partitions(), 0u);

  AiqlEngine engine(store->get());
  auto result = engine.Execute("proc p read || write file f return p, f");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);

  // The full-load compat path reports the same corruption.
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotCorruptionTest, ForeignAndEmptyFilesAreRejected) {
  WriteFile(*path_, "this is not a snapshot at all, not even close");
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);
  EXPECT_EQ(SnapshotStore::Open(*path_).status().code(),
            StatusCode::kCorruption);

  WriteFile(*path_, "");
  EXPECT_EQ(TryLoad().code(), StatusCode::kCorruption);

  EXPECT_EQ(LoadSnapshot("/tmp/aiql_no_such_snapshot.snap").status().code(),
            StatusCode::kIOError);
}

// --- v1 backward compatibility ----------------------------------------------

class SnapshotV1CompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("/tmp/aiql_snapshot_v1_compat_") +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".snap";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotV1CompatTest, GoldenV1FixtureStillLoads) {
  AuditDatabase db = BuildDatabase();
  ASSERT_TRUE(SaveSnapshotV1(db, path_).ok());

  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->sealed());
  EXPECT_EQ(loaded->stats().total_events, db.stats().total_events);
  EXPECT_EQ(loaded->stats().total_partitions, db.stats().total_partitions);
  EXPECT_EQ(loaded->entities().processes().size(),
            db.entities().processes().size());

  // Query equivalence across the compat load.
  AiqlEngine original(&db);
  AiqlEngine reloaded(&*loaded);
  const std::string query =
      "agentid = 1 proc p[\"%proc1%\"] write file f return distinct p, f";
  auto expected = original.Execute(query);
  auto actual = reloaded.Execute(query);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  expected->table.SortRows();
  actual->table.SortRows();
  EXPECT_EQ(actual->table, expected->table);
  EXPECT_GT(actual->table.num_rows(), 0u);
}

TEST_F(SnapshotV1CompatTest, V1CorruptionStillDetected) {
  AuditDatabase db = BuildDatabase();
  ASSERT_TRUE(SaveSnapshotV1(db, path_).ok());
  std::string bytes = ReadFile(path_);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  WriteFile(path_, bytes);
  EXPECT_EQ(LoadSnapshot(path_).status().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotV1CompatTest, LazyStoreRefusesV1WithClearMessage) {
  AuditDatabase db = BuildDatabase();
  ASSERT_TRUE(SaveSnapshotV1(db, path_).ok());
  auto store = SnapshotStore::Open(path_);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(store.status().message().find("v1"), std::string::npos);
}

}  // namespace
}  // namespace aiql
