// Query governance tests: QueryContext unit semantics (sticky first
// violation, budget latching, deadline lift) plus engine-level cancellation
// under concurrent streaming ingest — cancel mid-scatter, deadline expiry
// mid-provenance-hop, and budget exhaustion mid-merge all surface the right
// status code with no hangs. Runs under TSAN in CI's tsan job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "common/time_utils.h"
#include "engine/aiql_engine.h"
#include "engine/shard_merge.h"
#include "storage/database.h"
#include "storage/shard_map.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, Timestamp start, const std::string& exe,
                const std::string& path) {
  EventRecord record;
  record.agent_id = agent;
  record.op = OpType::kWrite;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = 1;
  record.subject =
      ProcessRef{agent, static_cast<uint32_t>(100 + agent), exe, "root"};
  record.object = FileRef{agent, path};
  return record;
}

/// A 4-shard world (one agent per shard) with `events_per_shard` write
/// events each: "p<agent>.exe" writes "/data/a<agent>_<i>".
struct GovWorld {
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  std::vector<ShardRange> ranges;
  ShardMap map;
};

std::unique_ptr<GovWorld> BuildGovWorld(int events_per_shard, bool seal) {
  StorageOptions storage;
  storage.partition_duration = kMinute;  // rotation seals as ingest advances
  storage.dedup_window = 0;
  storage.batch_commit_size = 1;
  auto world = std::make_unique<GovWorld>();
  world->ranges = EvenAgentRanges(4, 1, 4);
  for (size_t s = 0; s < 4; ++s) {
    AgentId agent = static_cast<AgentId>(s + 1);
    auto db = std::make_unique<AuditDatabase>(storage);
    std::string exe = "p" + std::to_string(agent) + ".exe";
    for (int i = 0; i < events_per_shard; ++i) {
      std::string path = "/data/a" + std::to_string(agent) + "_" +
                         std::to_string(i);
      // Spread events over minutes so bucket rotation seals as we go.
      Timestamp ts = T0() + (i / 100) * kMinute + (i % 100) * 100 * kMillisecond;
      if (!db->Append(Rec(agent, ts, exe, path)).ok()) return nullptr;
    }
    if (seal && !db->Seal().ok()) return nullptr;
    world->dbs.push_back(std::move(db));
    if (!world->map.AddShard(world->dbs.back().get(), world->ranges[s]).ok()) {
      return nullptr;
    }
  }
  return world;
}

constexpr const char* kScanQuery = "proc p1 write file f1 as e1 return p1, f1";

// --- QueryContext unit semantics ---------------------------------------------

TEST(QueryContextTest, RowBudgetLatchesResourceExhausted) {
  QueryLimits limits;
  limits.max_rows = 100;
  QueryContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeRows(100).ok());  // exactly at budget: fine
  Status breach = ctx.ChargeRows(1);
  EXPECT_EQ(breach.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(breach.message().find("row budget of 100"), std::string::npos);
  // Sticky: every later check reports the same violation.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.rows_charged(), 101u);
}

TEST(QueryContextTest, NodeAndMemoryBudgetsLatch) {
  QueryLimits limits;
  limits.max_nodes = 10;
  limits.max_bytes = 1000;
  QueryContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeNodes(10).ok());
  EXPECT_EQ(ctx.ChargeNodes(1).code(), StatusCode::kResourceExhausted);

  QueryContext mem_ctx(limits);
  EXPECT_EQ(mem_ctx.ChargeMemory(4096).code(),
            StatusCode::kResourceExhausted);
  EXPECT_NE(mem_ctx.Check().message().find("memory budget"),
            std::string::npos);
}

TEST(QueryContextTest, FirstViolationWins) {
  QueryLimits limits;
  limits.max_rows = 1;
  QueryContext ctx(limits);
  ctx.Cancel();
  // The later budget breach cannot overwrite the cancel latch.
  EXPECT_EQ(ctx.ChargeRows(100).code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, DeadlineLatchesAndLiftRestores) {
  QueryLimits limits;
  limits.timeout = std::chrono::milliseconds(5);
  QueryContext ctx(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ctx.remaining().count(), 0);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  // Lifting the deadline un-latches it (degraded merge of survivors)...
  ctx.LiftDeadline();
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_GT(ctx.remaining().count(), 0);
  // ...but a cancel latch survives a lift.
  ctx.Cancel();
  ctx.LiftDeadline();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, CancelVisibleAcrossThreads) {
  QueryContext ctx;
  std::atomic<int> stopped_workers{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&ctx, &stopped_workers] {
      while (ctx.ChargeRows(1).ok()) {
      }
      stopped_workers.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ctx.Cancel();
  for (auto& w : workers) w.join();
  EXPECT_EQ(stopped_workers.load(), 4);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  EXPECT_GT(ctx.rows_charged(), 0u);
}

// --- Engine-level governance under concurrent streaming ingest ---------------

/// Starts one writer per shard that keeps appending minute-rotating events
/// (partitions seal as buckets rotate, so queries see a moving frontier).
class IngestWriters {
 public:
  explicit IngestWriters(GovWorld* world) {
    for (size_t s = 0; s < world->dbs.size(); ++s) {
      threads_.emplace_back([this, db = world->dbs[s].get(),
                             agent = static_cast<AgentId>(s + 1)] {
        std::string exe = "w" + std::to_string(agent) + ".exe";
        // Start well past the seeded data so buckets keep rotating.
        Timestamp ts = T0() + kHour;
        int i = 0;
        while (!stop_.load(std::memory_order_relaxed)) {
          std::string path = "/ingest/a" + std::to_string(agent) + "_" +
                             std::to_string(i++);
          Status appended = db->Append(Rec(agent, ts, exe, path));
          if (!appended.ok()) {
            ADD_FAILURE() << "ingest append failed: " << appended.ToString();
            return;
          }
          ts += 10 * kSecond;
        }
      });
    }
  }
  ~IngestWriters() {
    stop_.store(true, std::memory_order_relaxed);
    for (auto& t : threads_) t.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

TEST(GovernanceTest, CancelMidScatterUnderConcurrentIngest) {
  Failpoint::ClearAll();
  auto world = BuildGovWorld(/*events_per_shard=*/300, /*seal=*/false);
  ASSERT_NE(world, nullptr);
  IngestWriters writers(world.get());
  AiqlEngine engine(&world->map);

  // Every shard's scatter stalls 300ms (interruptibly); the cancel arrives
  // at ~20ms and must unwind the whole scatter with kCancelled well before
  // the injected stall would have finished.
  ASSERT_TRUE(Failpoint::Configure("shard.scatter=latency(300000)").ok());
  QueryContext ctx;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ctx.Cancel();
  });
  auto start = std::chrono::steady_clock::now();
  auto result = engine.Execute(kScanQuery, &ctx);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  canceller.join();
  Failpoint::ClearAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(elapsed.count(), 250)
      << "cancel did not interrupt the injected scatter stall";
}

TEST(GovernanceTest, DeadlineExpiryMidProvenanceHopUnderConcurrentIngest) {
  Failpoint::ClearAll();
  auto world = BuildGovWorld(/*events_per_shard=*/300, /*seal=*/false);
  ASSERT_NE(world, nullptr);
  IngestWriters writers(world.get());
  AiqlEngine engine(&world->map);

  // The per-hop shard selection stalls 500ms; a 50ms deadline must cut the
  // stall short and surface kDeadlineExceeded from inside the hop.
  ASSERT_TRUE(Failpoint::Configure("shard.track=latency(500000)").ok());
  QueryLimits limits;
  limits.timeout = std::chrono::milliseconds(50);
  QueryContext ctx(limits);
  TrackRequest request;
  request.type = EntityType::kFile;
  request.name_like = "/data/a1\\_0";
  auto start = std::chrono::steady_clock::now();
  auto result = engine.Track(request, &ctx);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  Failpoint::ClearAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed.count(), 250)
      << "deadline did not interrupt the injected hop stall";
}

TEST(GovernanceTest, BudgetExhaustionMidMerge) {
  // Direct merge-layer check: per-shard tables are fine, but emitting the
  // merged rows crosses the row budget mid-merge.
  std::vector<Result<QueryResult>> shard_results;
  for (int s = 0; s < 3; ++s) {
    QueryResult r;
    r.table.columns = {"v"};
    for (int64_t i = 0; i < 1500; ++i) r.table.rows.push_back({Value(i)});
    shard_results.push_back(std::move(r));
  }
  QueryLimits limits;
  limits.max_rows = 100;
  QueryContext ctx(limits);
  auto merged = MergeShardResults(std::move(shard_results), ShardMergeSpec{},
                                  &ctx);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(merged.status().message().find("row budget"), std::string::npos);
}

TEST(GovernanceTest, DefaultLimitsGovernShardedQueries) {
  Failpoint::ClearAll();
  auto world = BuildGovWorld(/*events_per_shard=*/600, /*seal=*/true);
  ASSERT_NE(world, nullptr);
  EngineOptions options;
  options.default_limits.max_rows = 500;
  AiqlEngine engine(&world->map, options);
  auto result = engine.Execute(kScanQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  // Same engine without limits: the full result comes back.
  AiqlEngine free_engine(&world->map);
  auto full = free_engine.Execute(kScanQuery);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->table.num_rows(), 4u * 600u);
}

TEST(GovernanceTest, GovernedQueriesRaceCleanlyWithIngest) {
  Failpoint::ClearAll();
  auto world = BuildGovWorld(/*events_per_shard=*/1200, /*seal=*/false);
  ASSERT_NE(world, nullptr);
  IngestWriters writers(world.get());
  AiqlEngine engine(&world->map);

  // Mixed governance pressure while every shard keeps ingesting: each
  // outcome must be OK or a clean governance code — never a hang, crash,
  // or foreign error.
  for (int i = 0; i < 12; ++i) {
    QueryLimits limits;
    if (i % 3 == 0) limits.timeout = std::chrono::milliseconds(2);
    if (i % 3 == 1) limits.max_rows = 700;
    QueryContext ctx(limits);
    std::thread canceller;
    if (i % 3 == 2) {
      canceller = std::thread([&ctx] {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        ctx.Cancel();
      });
    }
    auto result = engine.Execute(kScanQuery, &ctx);
    if (canceller.joinable()) canceller.join();
    if (!result.ok()) {
      StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kCancelled ||
                  code == StatusCode::kDeadlineExceeded ||
                  code == StatusCode::kResourceExhausted)
          << result.status().ToString();
    }
  }
}

}  // namespace
}  // namespace aiql
