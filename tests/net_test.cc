// Tests for the TCP framing layer (common/net.h): round-trips, the
// explicit failure taxonomy (clean close vs truncated prefix vs truncated
// payload vs oversized declaration), and the checked numeric parsers the
// wire/shell/failpoint surfaces share.

#include "common/net.h"

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/string_utils.h"
#include "gtest/gtest.h"

namespace aiql {
namespace {

/// One listener + one connected client pair on an ephemeral loopback port.
struct Loopback {
  Listener listener;
  Connection server;
  Connection client;

  static Loopback Make() {
    Loopback pair;
    auto bound = Listener::Bind("127.0.0.1", 0);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    pair.listener = std::move(*bound);
    auto connected = ConnectTo("127.0.0.1", pair.listener.port());
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    pair.client = std::move(*connected);
    auto accepted = pair.listener.Accept();
    EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
    pair.server = std::move(*accepted);
    return pair;
  }
};

TEST(NetTest, FramesRoundTripBothDirections) {
  Loopback pair = Loopback::Make();
  const std::string payloads[] = {
      "", "x", std::string("binary\0data\xff", 12), std::string(100000, 'q')};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(pair.client.WriteFrame(payload).ok());
    auto got = pair.server.ReadFrame();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, payload);
    // And the reverse direction over the same stream.
    ASSERT_TRUE(pair.server.WriteFrame(payload).ok());
    auto back = pair.client.ReadFrame();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, payload);
  }
}

TEST(NetTest, SequentialFramesKeepBoundaries) {
  Loopback pair = Loopback::Make();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        pair.client.WriteFrame("frame-" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 50; ++i) {
    auto got = pair.server.ReadFrame();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "frame-" + std::to_string(i));
  }
}

TEST(NetTest, CleanCloseAtFrameBoundaryIsConnectionClosed) {
  Loopback pair = Loopback::Make();
  pair.client.Close();
  auto got = pair.server.ReadFrame();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(IsConnectionClosed(got.status()));
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(NetTest, TruncatedLengthPrefixIsShortRead) {
  Loopback pair = Loopback::Make();
  // Two of the four prefix bytes, then disconnect.
  ASSERT_TRUE(pair.client.WriteBytes("\x08\x00", 2).ok());
  pair.client.Close();
  auto got = pair.server.ReadFrame();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(IsConnectionClosed(got.status()));
  EXPECT_NE(got.status().message().find("2 of 4"), std::string::npos)
      << got.status().ToString();
}

TEST(NetTest, MidFrameDisconnectIsShortRead) {
  Loopback pair = Loopback::Make();
  // Declares 100 payload bytes, delivers 10, disconnects.
  ASSERT_TRUE(pair.client.WriteBytes("\x64\x00\x00\x00", 4).ok());
  ASSERT_TRUE(pair.client.WriteBytes("0123456789", 10).ok());
  pair.client.Close();
  auto got = pair.server.ReadFrame();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  EXPECT_NE(got.status().message().find("10 of 100"), std::string::npos)
      << got.status().ToString();
}

TEST(NetTest, OversizedDeclarationRejectedBeforeAllocation) {
  Loopback pair = Loopback::Make();
  pair.server.set_max_frame_bytes(1024);
  // A 4 GiB-ish declaration: must fail by inspection of the prefix alone.
  ASSERT_TRUE(pair.client.WriteBytes("\xff\xff\xff\xff", 4).ok());
  auto got = pair.server.ReadFrame();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().message().find("oversized frame"),
            std::string::npos);
}

TEST(NetTest, WriteFrameEnforcesTheSameCap) {
  Loopback pair = Loopback::Make();
  pair.client.set_max_frame_bytes(16);
  Status refused = pair.client.WriteFrame(std::string(17, 'x'));
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  // The cap applies to the payload, not payload + prefix.
  EXPECT_TRUE(pair.client.WriteFrame(std::string(16, 'x')).ok());
}

TEST(NetTest, ListenerShutdownUnblocksAccept) {
  auto bound = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok());
  Listener listener = std::move(*bound);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.Shutdown();
  });
  auto accepted = listener.Accept();  // blocks until Shutdown
  closer.join();
  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), StatusCode::kCancelled);
}

TEST(NetTest, ShutdownUnblocksPeerRead) {
  Loopback pair = Loopback::Make();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.client.Shutdown();
  });
  auto got = pair.server.ReadFrame();  // blocked until the peer half-closes
  closer.join();
  EXPECT_FALSE(got.ok());
}

TEST(NetTest, ConnectToUnboundPortFails) {
  // Bind-then-close to find a port that is (very likely) not listening.
  auto bound = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok());
  uint16_t port = bound->port();
  *bound = Listener();
  auto connected = ConnectTo("127.0.0.1", port);
  EXPECT_FALSE(connected.ok());
}

// --- Checked numeric parsers (common/string_utils.h) ---

TEST(CheckedParseTest, ParseInt64AcceptsExactIntegers) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("+7"), 7);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(*ParseInt64("-9223372036854775808"), INT64_MIN);
}

TEST(CheckedParseTest, ParseInt64RejectsGarbageAndRange) {
  for (const char* bad : {"", "abc", "12x", "x12", " 12", "12 ", "1.5",
                          "--3", "+-3", "+", "-",
                          "9223372036854775808",    // INT64_MAX + 1
                          "-9223372036854775809"}) {
    auto parsed = ParseInt64(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: '" << bad << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CheckedParseTest, ParseUint64RejectsSignsEntirely) {
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
  // strtoull would silently accept and negate "-1"; the checked parser
  // refuses any sign so "latency(-5)" is a configuration error.
  for (const char* bad :
       {"-1", "+1", "-0", "18446744073709551616", "0x10", ""}) {
    EXPECT_FALSE(ParseUint64(bad).ok()) << "accepted: '" << bad << "'";
  }
}

TEST(CheckedParseTest, ParseDoubleFullConsumption) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2.25"), -2.25);
  for (const char* bad : {"", "0.5x", "1e", ".", "nanx", " 0.5"}) {
    EXPECT_FALSE(ParseDouble(bad).ok()) << "accepted: '" << bad << "'";
  }
}

}  // namespace
}  // namespace aiql
