// Unit tests for AIQL semantic analysis.

#include "query/analyzer.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace aiql {
namespace {

Result<AnalyzedQuery> Analyze(const ParsedQuery& parsed) {
  return AnalyzeMultievent(*parsed.multievent, parsed.kind);
}

TEST(AnalyzerTest, SharedEntityVariablesDetected) {
  auto parsed = ParseAiql(
      "proc p3 write file f1[\"%backup1.dmp\"] as e1 "
      "proc p4 read file f1 as e2 "
      "return p3, p4");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto analyzed = Analyze(*parsed);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // f1 occurs as object of both patterns: an implicit join.
  const auto& occ = analyzed->entity_occurrences.at("f1");
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_EQ(occ[0].pattern, 0);
  EXPECT_FALSE(occ[0].is_subject);
  EXPECT_EQ(occ[1].pattern, 1);
  EXPECT_EQ(analyzed->entity_types.at("f1"), EntityType::kFile);
}

TEST(AnalyzerTest, AutoNamesUnnamedEvents) {
  auto parsed = ParseAiql(
      "proc p read file f proc p write ip i return p");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto analyzed = Analyze(*parsed);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_EQ(analyzed->event_vars.size(), 2u);
  EXPECT_NE(analyzed->event_vars[0], analyzed->event_vars[1]);
  EXPECT_EQ(analyzed->event_index.size(), 2u);
}

TEST(AnalyzerTest, GlobalAgentFilterResolved) {
  auto parsed = ParseAiql("agentid = 7 proc p read file f return p");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_TRUE(analyzed.ok());
  ASSERT_TRUE(analyzed->agent_filter.has_value());
  EXPECT_EQ(*analyzed->agent_filter, std::vector<AgentId>{7});
}

TEST(AnalyzerTest, ContradictoryAgentFiltersIntersectToEmpty) {
  auto parsed =
      ParseAiql("agentid = 1 agentid = 2 proc p read file f return p");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_TRUE(analyzed.ok());
  ASSERT_TRUE(analyzed->agent_filter.has_value());
  EXPECT_TRUE(analyzed->agent_filter->empty());
}

TEST(AnalyzerTest, RejectsVariableTypeConflicts) {
  auto parsed = ParseAiql(
      "proc x read file f as e1 proc p write file x as e2 return p");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_EQ(analyzed.status().code(), StatusCode::kSemanticError);
  EXPECT_NE(analyzed.status().message().find("redeclared"),
            std::string::npos);
}

TEST(AnalyzerTest, RejectsDuplicateEventNames) {
  auto parsed = ParseAiql(
      "proc p read file f as e1 proc p write file f as e1 return p");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Analyze(*parsed).ok());
}

TEST(AnalyzerTest, RejectsUnknownEventInTemporalRelation) {
  auto parsed = ParseAiql(
      "proc p read file f as e1 with e1 before ghost return p");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("ghost"), std::string::npos);
}

TEST(AnalyzerTest, RejectsSelfTemporalRelation) {
  auto parsed = ParseAiql(
      "proc p read file f as e1 with e1 before e1 return p");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Analyze(*parsed).ok());
}

TEST(AnalyzerTest, RejectsInvalidOpForObjectType) {
  // 'start' against a file object is meaningless.
  auto parsed = ParseAiql("proc p start file f return p");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("not valid"), std::string::npos);
}

TEST(AnalyzerTest, RejectsUnknownAttribute) {
  auto parsed = ParseAiql("proc p[color = \"red\"] read file f return p");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("color"), std::string::npos);
}

TEST(AnalyzerTest, RejectsTypeMismatchedConstraintValues) {
  auto parsed = ParseAiql("proc p[pid = \"abc\"] read file f return p");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Analyze(*parsed).ok());

  auto parsed2 = ParseAiql("proc p[exe_name = 42] read file f return p");
  ASSERT_TRUE(parsed2.ok());
  EXPECT_FALSE(Analyze(*parsed2).ok());
}

TEST(AnalyzerTest, RejectsAggregateWithoutWindow) {
  auto parsed = ParseAiql(
      "proc p write ip i as evt return p, avg(evt.amount) as amt");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("window"), std::string::npos);
}

TEST(AnalyzerTest, RejectsAnomalyWithMultiplePatterns) {
  auto parsed = ParseAiql(
      "window = 1 min, step = 10 sec "
      "proc p write ip i as e1 proc p read file f as e2 "
      "return p, sum(e1.amount) as s");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("single event pattern"),
            std::string::npos);
}

TEST(AnalyzerTest, RejectsHavingOnUnknownAlias) {
  auto parsed = ParseAiql(
      "window = 1 min, step = 10 sec "
      "proc p write ip i as evt "
      "return p, avg(evt.amount) as amt "
      "group by p having bogus > 1");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("bogus"), std::string::npos);
}

TEST(AnalyzerTest, AcceptsValidAnomalyQuery) {
  auto parsed = ParseAiql(
      "window = 1 min, step = 10 sec "
      "proc p write ip i as evt "
      "return p, avg(evt.amount) as amt, count(*) as n "
      "group by p having amt > 2 * (amt + amt[1] + amt[2]) / 3 and n > 0");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto analyzed = Analyze(*parsed);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ(analyzed->kind, QueryKind::kAnomaly);
}

TEST(AnalyzerTest, RejectsEntityEventNameCollision) {
  auto parsed = ParseAiql(
      "proc x read file f as x return f");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("both"), std::string::npos);
}

TEST(AnalyzerTest, ValidatesDependencyDeclarations) {
  auto parsed = ParseAiql(
      "forward: proc p1 ->[write] file f1 <-[read] proc p2 ->[connect] "
      "proc p3 return p1, p3");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateDependency(*parsed->dependency).ok());
}

TEST(AnalyzerTest, RejectsDependencyWithFileSubject) {
  // f1 ->[read] p2 puts a file on the subject side.
  auto parsed = ParseAiql(
      "forward: proc p1 ->[write] file f1 ->[read] proc p2 return p1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto status = ValidateDependency(*parsed->dependency);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("process"), std::string::npos);
}

TEST(AnalyzerTest, ReturnShortcutsResolveAgainstDefaults) {
  auto parsed = ParseAiql(
      "proc p read file f as e return p, f, p.pid, e.amount");
  ASSERT_TRUE(parsed.ok());
  auto analyzed = Analyze(*parsed);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
}

TEST(AnalyzerTest, RejectsUnknownReturnVariable) {
  auto parsed = ParseAiql("proc p read file f return ghost");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Analyze(*parsed).ok());
}

}  // namespace
}  // namespace aiql
