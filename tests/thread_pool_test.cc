// Unit tests for the thread pool, centered on the ParallelFor deadlock fix:
// calling ParallelFor from inside a pool worker must complete even when no
// other worker can pick up the iterations (e.g. pool size 1, or the pool
// shared with background partition sealing).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace aiql {
namespace {

using namespace std::chrono_literals;

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto future = pool.Submit([&] { value.store(42); });
  future.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "no iteration expected"; });
  std::atomic<int> ran{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

// Regression: the old implementation submitted every iteration as a pool
// task and blocked on future.get(). From inside the single worker of a
// 1-thread pool those tasks could never be picked up — deadlock. The
// caller-participates design runs them inline.
TEST(ThreadPoolTest, ParallelForFromWorkerOnSingleThreadPool) {
  ThreadPool pool(1);
  constexpr size_t kN = 16;
  std::vector<std::atomic<int>> counts(kN);
  auto future = pool.Submit([&] {
    pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  });
  ASSERT_EQ(future.wait_for(30s), std::future_status::ready)
      << "ParallelFor deadlocked when called from a pool worker";
  future.get();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

// Nested ParallelFor: the outer iterations run on workers, each of which
// issues another ParallelFor on the same (small) pool.
TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  constexpr size_t kOuter = 6;
  constexpr size_t kInner = 9;
  std::atomic<int> total{0};
  pool.ParallelFor(kOuter, [&](size_t) {
    pool.ParallelFor(kInner, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

// ParallelFor must make progress while every worker is pinned by unrelated
// long-running tasks (the streaming case: workers busy sealing partitions).
TEST(ThreadPoolTest, ParallelForProgressesWhileWorkersAreBusy) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::vector<std::future<void>> blockers;
  for (int i = 0; i < 2; ++i) {
    blockers.push_back(pool.Submit([&] {
      while (!release.load()) std::this_thread::yield();
    }));
  }
  std::atomic<int> ran{0};
  pool.ParallelFor(8, [&](size_t) { ran.fetch_add(1); });  // caller drains
  EXPECT_EQ(ran.load(), 8);
  release.store(true);
  for (auto& blocker : blockers) blocker.get();
}

// Provenance frontier expansion issues ParallelFor(#selected partitions),
// which is routinely 0 (nothing overlaps the hop's range) or 1. Those edges
// and a throwing iteration must neither hang nor poison the pool.

TEST(ThreadPoolTest, ParallelForSingleIterationExceptionPropagates) {
  ThreadPool pool(2);
  // n == 1 runs inline on the caller; the exception must surface the same
  // way it does for the multi-iteration path.
  EXPECT_THROW(
      pool.ParallelFor(1, [](size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForEveryIterationThrowing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(16,
                                [&](size_t) {
                                  ran.fetch_add(1);
                                  throw std::runtime_error("all fail");
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // no iteration is skipped or double-run
}

TEST(ThreadPoolTest, PoolStaysUsableAfterIterationException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4, [](size_t) { throw std::runtime_error("first"); }),
      std::runtime_error);
  // Subsequent ParallelFor and Submit calls on the same pool must work.
  std::atomic<int> ran{0};
  pool.ParallelFor(8, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
  auto future = pool.Submit([&] { ran.fetch_add(1); });
  future.get();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolTest, ZeroAndOneFromInsideWorker) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  auto future = pool.Submit([&] {
    pool.ParallelFor(0, [](size_t) { FAIL() << "no iteration expected"; });
    pool.ParallelFor(1, [&](size_t) { ran.fetch_add(1); });
  });
  ASSERT_EQ(future.wait_for(30s), std::future_status::ready)
      << "zero/one-item ParallelFor hung inside a worker";
  future.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ExceptionFromWorkerIterationReachesCaller) {
  // Force helpers to run iterations: the caller is blocked in a slow first
  // iteration while a worker hits the throwing one.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t i) {
                                  if (i == 0) {
                                    std::this_thread::sleep_for(50ms);
                                  }
                                  ran.fetch_add(1);
                                  if (i == 5) {
                                    throw std::runtime_error("worker-side");
                                  }
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 8);
}

// An iteration that throws must neither hang the caller nor lose the
// error: the first exception rethrows on the calling thread once every
// iteration has finished.
TEST(ThreadPoolTest, ParallelForRethrowsIterationExceptionToCaller) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(8,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 3) throw std::runtime_error("iteration 3");
                       }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // remaining iterations still completed
}

}  // namespace
}  // namespace aiql
