// Unit tests for result tables, value rendering, and query text metrics.

#include <gtest/gtest.h>

#include "engine/result.h"
#include "query/metrics.h"
#include "query/parser.h"

namespace aiql {
namespace {

TEST(ValueTest, Rendering) {
  EXPECT_EQ(ValueToString(Value(std::string("cmd.exe"))), "cmd.exe");
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(3.5)), "3.5");
}

TEST(ResultTableTest, SortRowsIsCanonical) {
  ResultTable table;
  table.columns = {"a", "b"};
  table.rows.push_back({Value(std::string("z")), Value(int64_t{1})});
  table.rows.push_back({Value(std::string("a")), Value(int64_t{2})});
  table.rows.push_back({Value(std::string("m")), Value(int64_t{3})});
  table.SortRows();
  EXPECT_EQ(ValueToString(table.rows[0][0]), "a");
  EXPECT_EQ(ValueToString(table.rows[1][0]), "m");
  EXPECT_EQ(ValueToString(table.rows[2][0]), "z");
}

TEST(ResultTableTest, EqualityComparesRenderedCells) {
  ResultTable a, b;
  a.columns = b.columns = {"x"};
  a.rows.push_back({Value(int64_t{5})});
  b.rows.push_back({Value(int64_t{5})});
  EXPECT_TRUE(a == b);
  b.rows[0][0] = Value(int64_t{6});
  EXPECT_FALSE(a == b);
  b.rows[0][0] = Value(int64_t{5});
  b.columns = {"y"};
  EXPECT_FALSE(a == b);
}

TEST(ResultTableTest, ToStringTruncates) {
  ResultTable table;
  table.columns = {"n"};
  for (int i = 0; i < 100; ++i) {
    table.rows.push_back({Value(int64_t{i})});
  }
  std::string out = table.ToString(10);
  EXPECT_NE(out.find("90 more rows"), std::string::npos);
}

TEST(QueryStatsTest, TotalSumsPhases) {
  QueryStats stats;
  stats.parse_time = 10;
  stats.plan_time = 20;
  stats.exec_time = 30;
  EXPECT_EQ(stats.total_time(), 60);
}

TEST(MetricsTest, CountsMultieventConstraints) {
  auto parsed = ParseAiql(R"(
    (at "05/10/2018")
    agentid = 7
    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
    proc p3["%sqlservr%"] write file f1["%backup%"] as e2
    with e1 before e2, p1.pid != p3.pid
    return distinct p1, p2
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  QueryTextMetrics metrics = ComputeAiqlMetrics(*parsed);
  // time window + agentid + 4 entity constraints + 1 temporal + 1 attr rel.
  EXPECT_EQ(metrics.constraints, 8u);
  EXPECT_GT(metrics.words, 20u);
  EXPECT_GT(metrics.chars, 100u);
}

TEST(MetricsTest, CountsAnomalyExtensions) {
  auto parsed = ParseAiql(R"(
    agentid = 7
    window = 1 min, step = 10 sec
    proc p write ip i[dstip = "1.2.3.4"] as evt
    return p, avg(evt.amount) as amt
    group by p
    having amt > 1 and amt > amt[1]
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  QueryTextMetrics metrics = ComputeAiqlMetrics(*parsed);
  // agentid + window spec + 1 entity constraint + 2 having comparisons.
  EXPECT_EQ(metrics.constraints, 5u);
}

TEST(MetricsTest, CountsDependencyEdges) {
  auto parsed = ParseAiql(
      "(at \"05/10/2018\") "
      "forward: proc p1[\"%cp%\", agentid = 1] ->[write] file f1[\"%x%\"] "
      "<-[read] proc p2 return p1, p2");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  QueryTextMetrics metrics = ComputeAiqlMetrics(*parsed);
  // time window + 3 entity constraints (incl. agentid) + 2 edges.
  EXPECT_EQ(metrics.constraints, 6u);
}

TEST(MetricsTest, WordsAndCharsMatchManualCount) {
  auto parsed = ParseAiql("proc p read file f return p");
  ASSERT_TRUE(parsed.ok());
  QueryTextMetrics metrics = ComputeAiqlMetrics(*parsed);
  EXPECT_EQ(metrics.words, 7u);
  // "proc"(4) "p"(1) "read"(4) "file"(4) "f"(1) "return"(6) "p"(1) = 21.
  EXPECT_EQ(metrics.chars, 21u);
}

}  // namespace
}  // namespace aiql
