// Integration tests: the simulated enterprise scenarios, attack injection,
// and the full investigation query catalogs (every query must parse,
// analyze, execute, and find its attack traces in the noise).

#include <gtest/gtest.h>

#include <unordered_set>

#include "engine/aiql_engine.h"
#include "query/parser.h"
#include "simulator/queries_a.h"
#include "simulator/queries_c.h"
#include "simulator/scenario.h"

namespace aiql {
namespace {

ScenarioOptions SmallScenario() {
  ScenarioOptions options;
  options.num_clients = 3;
  options.duration = 4 * kHour;
  options.events_per_host_per_hour = 400;
  options.seed = 7;
  return options;
}

TEST(ScenarioTest, DeterministicUnderSeed) {
  DemoScenarioData a = GenerateDemoScenario(SmallScenario());
  DemoScenarioData b = GenerateDemoScenario(SmallScenario());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); i += 97) {
    EXPECT_EQ(a.records[i].start_ts, b.records[i].start_ts);
    EXPECT_EQ(a.records[i].agent_id, b.records[i].agent_id);
    EXPECT_EQ(a.records[i].subject.exe_name, b.records[i].subject.exe_name);
  }
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  ScenarioOptions options = SmallScenario();
  DemoScenarioData a = GenerateDemoScenario(options);
  options.seed = 8;
  DemoScenarioData b = GenerateDemoScenario(options);
  bool any_difference = a.records.size() != b.records.size();
  for (size_t i = 0; !any_difference && i < a.records.size(); ++i) {
    any_difference = a.records[i].start_ts != b.records[i].start_ts;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioTest, RecordsAreTimeOrderedAndInWindow) {
  DemoScenarioData data = GenerateDemoScenario(SmallScenario());
  ASSERT_GT(data.records.size(), 1000u);
  for (size_t i = 1; i < data.records.size(); ++i) {
    EXPECT_LE(data.records[i - 1].start_ts, data.records[i].start_ts);
  }
  // The attack is inside the monitoring window.
  EXPECT_TRUE(data.window.Contains(data.truth.start));
  EXPECT_TRUE(data.window.Contains(data.truth.exfil_start));
}

TEST(ScenarioTest, IngestAndStats) {
  DemoScenarioData data = GenerateDemoScenario(SmallScenario());
  auto db = IngestRecords(data.records, StorageOptions{});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(db->sealed());
  EXPECT_EQ(db->stats().raw_events, data.records.size());
  EXPECT_LE(db->stats().total_events, db->stats().raw_events);
  EXPECT_GT(db->stats().total_partitions, 4u);  // time x agent spread
}

class CatalogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options = SmallScenario();
    demo_ = new DemoScenarioData(GenerateDemoScenario(options));
    atc_ = new AtcScenarioData(GenerateAtcScenario(options));
    StorageOptions storage;
    auto demo_db = IngestRecords(demo_->records, storage);
    auto atc_db = IngestRecords(atc_->records, storage);
    ASSERT_TRUE(demo_db.ok()) << demo_db.status().ToString();
    ASSERT_TRUE(atc_db.ok()) << atc_db.status().ToString();
    demo_db_ = new AuditDatabase(std::move(demo_db).value());
    atc_db_ = new AuditDatabase(std::move(atc_db).value());
  }
  static void TearDownTestSuite() {
    delete demo_;
    delete atc_;
    delete demo_db_;
    delete atc_db_;
    demo_ = nullptr;
    atc_ = nullptr;
    demo_db_ = nullptr;
    atc_db_ = nullptr;
  }

  static DemoScenarioData* demo_;
  static AtcScenarioData* atc_;
  static AuditDatabase* demo_db_;
  static AuditDatabase* atc_db_;
};

DemoScenarioData* CatalogTest::demo_ = nullptr;
AtcScenarioData* CatalogTest::atc_ = nullptr;
AuditDatabase* CatalogTest::demo_db_ = nullptr;
AuditDatabase* CatalogTest::atc_db_ = nullptr;

TEST_F(CatalogTest, DemoCatalogHasNineteenUniqueIds) {
  auto queries = DemoInvestigationQueries(demo_->truth);
  EXPECT_EQ(queries.size(), 19u);
  std::unordered_set<std::string> ids;
  for (const CatalogQuery& query : queries) {
    EXPECT_TRUE(ids.insert(query.id).second) << "duplicate " << query.id;
    EXPECT_FALSE(query.description.empty());
  }
}

TEST_F(CatalogTest, AtcCatalogHasTwentySixUniqueIds) {
  auto queries = AtcInvestigationQueries(atc_->truth);
  EXPECT_EQ(queries.size(), 26u);
  std::unordered_set<std::string> ids;
  for (const CatalogQuery& query : queries) {
    EXPECT_TRUE(ids.insert(query.id).second) << "duplicate " << query.id;
  }
}

TEST_F(CatalogTest, EveryDemoQueryParsesAndFindsTheAttack) {
  AiqlEngine engine(demo_db_);
  for (const CatalogQuery& query : DemoInvestigationQueries(demo_->truth)) {
    auto result = engine.Execute(query.text);
    ASSERT_TRUE(result.ok())
        << query.id << ": " << result.status().ToString() << "\n"
        << query.text;
    EXPECT_GE(result->table.num_rows(), query.min_expected_rows)
        << query.id << " found nothing:\n"
        << query.text;
  }
}

TEST_F(CatalogTest, EveryAtcQueryParsesAndFindsTheAttack) {
  AiqlEngine engine(atc_db_);
  for (const CatalogQuery& query : AtcInvestigationQueries(atc_->truth)) {
    auto result = engine.Execute(query.text);
    ASSERT_TRUE(result.ok())
        << query.id << ": " << result.status().ToString() << "\n"
        << query.text;
    EXPECT_GE(result->table.num_rows(), query.min_expected_rows)
        << query.id << " found nothing:\n"
        << query.text;
  }
}

TEST_F(CatalogTest, AnomalyQueryFlagsOnlyPowershell) {
  AiqlEngine engine(demo_db_);
  auto queries = DemoInvestigationQueries(demo_->truth);
  const CatalogQuery* anomaly = nullptr;
  for (const CatalogQuery& query : queries) {
    if (query.id == "a5-1") anomaly = &query;
  }
  ASSERT_NE(anomaly, nullptr);
  auto result = engine.Execute(anomaly->text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->table.num_rows(), 0u);
  for (const auto& row : result->table.rows) {
    EXPECT_NE(ValueToString(row[1]).find("powershell"), std::string::npos);
  }
}

TEST_F(CatalogTest, QueriesAreSelective) {
  // Investigation queries must pinpoint the attack, not dump the database:
  // every demo query returns far fewer rows than the event count.
  AiqlEngine engine(demo_db_);
  for (const CatalogQuery& query : DemoInvestigationQueries(demo_->truth)) {
    auto result = engine.Execute(query.text);
    ASSERT_TRUE(result.ok()) << query.id;
    EXPECT_LT(result->table.num_rows(), 100u) << query.id;
  }
}

}  // namespace
}  // namespace aiql
