// Degraded sharded execution under injected faults: strict vs partial
// shard policy, bounded retry of transient storage faults, per-shard
// degradation annotations, the 50ms-deadline-vs-500ms-slow-shard
// acceptance scenario, snapshot-read fault handling (error and corrupt
// actions), and degraded sharded provenance tracking.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "common/time_utils.h"
#include "engine/aiql_engine.h"
#include "engine/result.h"
#include "storage/database.h"
#include "storage/shard_map.h"
#include "storage/snapshot.h"
#include "storage/tiered.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, Timestamp start, const std::string& exe,
                const std::string& path) {
  EventRecord record;
  record.agent_id = agent;
  record.op = OpType::kWrite;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = 1;
  record.subject =
      ProcessRef{agent, static_cast<uint32_t>(100 + agent), exe, "root"};
  record.object = FileRef{agent, path};
  return record;
}

/// 4 shards, one agent each; agent a writes files "/data/a<a>_<i>" from
/// process "p<a>.exe", so every result row names the shard it came from.
struct FaultWorld {
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  std::vector<std::unique_ptr<SnapshotStore>> snaps;
  std::vector<std::string> snap_paths;
  ShardMap map;

  ~FaultWorld() {
    snaps.clear();
    for (const std::string& path : snap_paths) std::remove(path.c_str());
  }
};

std::unique_ptr<FaultWorld> BuildFaultWorld(int events_per_shard,
                                            bool snapshot_backed) {
  auto world = std::make_unique<FaultWorld>();
  auto ranges = EvenAgentRanges(4, 1, 4);
  for (size_t s = 0; s < 4; ++s) {
    AgentId agent = static_cast<AgentId>(s + 1);
    auto db = std::make_unique<AuditDatabase>(StorageOptions{});
    std::string exe = "p" + std::to_string(agent) + ".exe";
    for (int i = 0; i < events_per_shard; ++i) {
      std::string path =
          "/data/a" + std::to_string(agent) + "_" + std::to_string(i);
      EXPECT_TRUE(
          db->Append(Rec(agent, T0() + i * kSecond, exe, path)).ok());
    }
    EXPECT_TRUE(db->Seal().ok());
    world->dbs.push_back(std::move(db));
    Status added;
    if (snapshot_backed) {
      std::string path = "/tmp/aiql_degraded_exec_" + std::to_string(s) +
                         ".snap";
      Status saved = SaveSnapshot(*world->dbs.back(), path);
      if (!saved.ok()) {
        ADD_FAILURE() << saved.ToString();
        return nullptr;
      }
      world->snap_paths.push_back(path);
      auto store = SnapshotStore::Open(path);
      if (!store.ok()) {
        ADD_FAILURE() << store.status().ToString();
        return nullptr;
      }
      world->snaps.push_back(std::move(*store));
      added = world->map.AddShard(world->snaps.back().get(), ranges[s]);
    } else {
      added = world->map.AddShard(world->dbs.back().get(), ranges[s]);
    }
    if (!added.ok()) {
      ADD_FAILURE() << added.ToString();
      return nullptr;
    }
  }
  return world;
}

constexpr const char* kScanQuery = "proc p1 write file f1 as e1 return p1, f1";

EngineOptions FastRetryOptions(ShardPolicy policy) {
  EngineOptions options;
  options.shard_policy = policy;
  options.shard_retry_backoff = std::chrono::milliseconds(1);
  return options;
}

/// Multiset of rendered rows, for subset / equality comparisons.
std::multiset<std::string> RowSet(const ResultTable& table) {
  std::multiset<std::string> out;
  for (const auto& row : table.rows) {
    std::string rendered;
    for (const auto& cell : row) rendered += ValueToString(cell) + "|";
    out.insert(rendered);
  }
  return out;
}

bool IsSubset(const std::multiset<std::string>& sub,
              const std::multiset<std::string>& super) {
  auto pool = super;
  for (const auto& row : sub) {
    auto it = pool.find(row);
    if (it == pool.end()) return false;
    pool.erase(it);
  }
  return true;
}

class DegradedExecTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoint::ClearAll(); }
  void TearDown() override { Failpoint::ClearAll(); }
};

TEST_F(DegradedExecTest, StrictPolicyAggregatesPersistentShardFault) {
  auto world = BuildFaultWorld(50, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  ASSERT_TRUE(Failpoint::Configure("shard.scatter=error(IOError)@arg2").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_FALSE(result.ok());
  // Every attempt failed, so the transient fault maps to kUnavailable and
  // the aggregate names the shard and the injected cause.
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("shard 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("3 attempt(s)"),
            std::string::npos);
  EXPECT_NE(result.status().message().find(
                "injected by failpoint 'shard.scatter'"),
            std::string::npos);
}

TEST_F(DegradedExecTest, RetryRecoversFromTransientFault) {
  auto world = BuildFaultWorld(50, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  auto clean = engine.Execute(kScanQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Only shard 1's FIRST scatter attempt fails; the retry succeeds, so even
  // strict mode returns the full result, annotated with the retry.
  ASSERT_TRUE(
      Failpoint::Configure("shard.scatter=error(IOError)@nth1@arg1").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RowSet(result->table), RowSet(clean->table));
  EXPECT_FALSE(result->degraded.partial);
  EXPECT_EQ(result->degraded.shards_retried, 1);
  ASSERT_EQ(result->degraded.shard_status.size(), 4u);
  EXPECT_EQ(result->degraded.shard_status[1].attempts, 2);
  EXPECT_FALSE(result->degraded.shard_status[1].dropped);
}

TEST_F(DegradedExecTest, PartialPolicyDropsFailedShardAndAnnotates) {
  auto world = BuildFaultWorld(50, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  AiqlEngine strict_engine(&world->map,
                           FastRetryOptions(ShardPolicy::kStrict));
  auto clean = strict_engine.Execute(kScanQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kPartial));
  ASSERT_TRUE(Failpoint::Configure("shard.scatter=error(IOError)@arg2").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Shard 2 (agent 3) is gone; the survivors' rows are intact.
  EXPECT_EQ(result->table.num_rows(), 3u * 50u);
  EXPECT_TRUE(IsSubset(RowSet(result->table), RowSet(clean->table)));
  for (const auto& row : result->table.rows) {
    EXPECT_NE(ValueToString(row[0]), "p3.exe");
  }
  EXPECT_TRUE(result->degraded.partial);
  EXPECT_EQ(result->degraded.shards_failed, 1);
  EXPECT_EQ(result->degraded.shards_timed_out, 0);
  ASSERT_EQ(result->degraded.shard_status.size(), 4u);
  EXPECT_TRUE(result->degraded.shard_status[2].dropped);
  EXPECT_EQ(result->degraded.shard_status[2].status.code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(result->degraded.ToString().empty());
}

TEST_F(DegradedExecTest, AllShardsFailedIsAFailureEvenInPartialMode) {
  auto world = BuildFaultWorld(20, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kPartial));
  ASSERT_TRUE(Failpoint::Configure("shard.scatter=error(IOError)").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("4 of 4 shard(s) failed"),
            std::string::npos);
}

TEST_F(DegradedExecTest, DeadlineVsSlowShardStrictAndPartial) {
  // The acceptance scenario: a 50ms deadline against a shard with an
  // injected 500ms stall. Strict fails with kDeadlineExceeded; partial
  // drops the slow shard and returns the survivors' rows — both well under
  // 100ms wall clock because the injected stall is interruptible.
  auto world = BuildFaultWorld(50, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  QueryLimits limits;
  limits.timeout = std::chrono::milliseconds(50);

  ASSERT_TRUE(
      Failpoint::Configure("shard.scatter=latency(500000)@arg3").ok());
  {
    AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
    QueryContext ctx(limits);
    auto start = std::chrono::steady_clock::now();
    auto result = engine.Execute(kScanQuery, &ctx);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_LT(elapsed.count(), 100);
  }
  {
    AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kPartial));
    QueryContext ctx(limits);
    auto start = std::chrono::steady_clock::now();
    auto result = engine.Execute(kScanQuery, &ctx);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LT(elapsed.count(), 100);
    EXPECT_EQ(result->table.num_rows(), 3u * 50u);
    EXPECT_TRUE(result->degraded.partial);
    EXPECT_EQ(result->degraded.shards_timed_out, 1);
    EXPECT_EQ(result->degraded.shards_failed, 0);
    ASSERT_EQ(result->degraded.shard_status.size(), 4u);
    EXPECT_TRUE(result->degraded.shard_status[3].dropped);
    EXPECT_EQ(result->degraded.shard_status[3].status.code(),
              StatusCode::kDeadlineExceeded);
  }
}

TEST_F(DegradedExecTest, SnapshotReadFaultRetriedThenUnavailable) {
  auto world = BuildFaultWorld(50, /*snapshot_backed=*/true);
  ASSERT_NE(world, nullptr);
  // Persistent read fault on every partition materialization: strict mode
  // surfaces kUnavailable after retries; partial mode returns survivors.
  // @arg filtering is not available here (the site's arg is not a shard
  // index), so the fault hits every shard and partial mode degenerates to
  // the all-failed error.
  ASSERT_TRUE(
      Failpoint::Configure("snapshot.read.partition=error(IOError)").ok());
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  auto result = engine.Execute(kScanQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find(
                "injected by failpoint 'snapshot.read.partition'"),
            std::string::npos);

  // Cleared: the same engine serves the full result again.
  Failpoint::ClearAll();
  auto healed = engine.Execute(kScanQuery);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->table.num_rows(), 4u * 50u);
}

TEST_F(DegradedExecTest, CorruptSnapshotReadIsCaughtAndRetried) {
  auto world = BuildFaultWorld(50, /*snapshot_backed=*/true);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  // One bit-flip on the first partition read: the checksum must catch it
  // and the shard retry must re-read cleanly — full result, no error.
  ASSERT_TRUE(
      Failpoint::Configure("snapshot.read.partition=corrupt@nth1").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows(), 4u * 50u);
  EXPECT_GE(result->degraded.shards_retried, 1);
}

TEST_F(DegradedExecTest, TrackDegradesPerShardPolicy) {
  auto world = BuildFaultWorld(30, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  TrackRequest request;
  request.type = EntityType::kFile;
  request.name_like = "/data/a%";  // roots on every shard

  // Clean reference: every shard contributes its writer process.
  {
    AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
    auto clean = engine.Track(request);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_EQ(clean->stats.shards_dropped, 0);
  }

  ASSERT_TRUE(Failpoint::Configure("shard.track=error(IOError)@arg1").ok());
  {
    AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
    auto result = engine.Track(request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(result.status().message().find("shard 1"), std::string::npos);
  }
  {
    AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kPartial));
    auto result = engine.Track(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->stats.truncated);
    EXPECT_EQ(result->stats.shards_dropped, 1);
    bool annotated = false;
    for (const ShardTrackStatus& s : result->stats.shard_status) {
      if (s.shard == 1 && s.dropped) annotated = true;
    }
    EXPECT_TRUE(annotated) << "dropped shard not annotated in stats";
    // Root selection precedes the failing hop, so shard 1's root files may
    // appear — but nothing can have been EXPANDED on the dropped shard.
    for (const ProvenanceNode& node : result->nodes) {
      if (node.depth > 0) {
        EXPECT_NE(node.shard, 1u);
      }
    }
  }
}

TEST_F(DegradedExecTest, TrackRetryRecordsAttempts) {
  auto world = BuildFaultWorld(30, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  TrackRequest request;
  request.type = EntityType::kFile;
  request.name_like = "/data/a%";
  ASSERT_TRUE(
      Failpoint::Configure("shard.track=error(IOError)@nth1@arg2").ok());
  auto result = engine.Track(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.shards_dropped, 0);
  bool recorded = false;
  for (const ShardTrackStatus& s : result->stats.shard_status) {
    if (s.shard == 2 && s.attempts > 1 && !s.dropped) recorded = true;
  }
  EXPECT_TRUE(recorded) << "recovered retry not annotated in stats";
}

// ---------------------------------------------------------------------------
// Tiered shards: one shard's partitions all live cold in a retention
// directory, so the `retention.reopen` failpoint makes that shard's lazy
// materialization fail — the degraded machinery must treat it exactly like
// any other storage fault.
// ---------------------------------------------------------------------------

/// Like FaultWorld, but shard 2 (agent 3) is a fully demoted TieredStore.
struct TieredFaultWorld {
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  std::unique_ptr<TieredStore> tiered;
  std::string dir;
  ShardMap map;

  ~TieredFaultWorld() {
    tiered.reset();
    std::remove((dir + "/DATA").c_str());
    for (uint64_t seq = 0; seq <= 64; ++seq) {
      std::remove((dir + "/FOOTER." + std::to_string(seq)).c_str());
    }
    std::remove((dir + "/FOOTER.tmp").c_str());
    rmdir(dir.c_str());
  }
};

std::unique_ptr<TieredFaultWorld> BuildTieredFaultWorld(int events_per_shard) {
  auto world = std::make_unique<TieredFaultWorld>();
  world->dir = "/tmp/aiql_degraded_tiered_" +
               std::to_string(reinterpret_cast<uintptr_t>(world.get()));
  auto ranges = EvenAgentRanges(4, 1, 4);
  for (size_t s = 0; s < 4; ++s) {
    AgentId agent = static_cast<AgentId>(s + 1);
    std::string exe = "p" + std::to_string(agent) + ".exe";
    std::vector<EventRecord> records;
    for (int i = 0; i < events_per_shard; ++i) {
      records.push_back(Rec(agent, T0() + i * kSecond, exe,
                            "/data/a" + std::to_string(agent) + "_" +
                                std::to_string(i)));
    }
    Status added;
    if (s == 2) {
      RetentionOptions retention;
      retention.dir = world->dir;
      retention.hot_buckets = -1;  // demote every sealed partition
      retention.compact_min_partitions = 0;
      // Nothing stays resident between queries, so every execution takes
      // the lazy-reopen path where `retention.reopen` is injected.
      retention.memory_budget_bytes = 1;
      auto store = TieredStore::Create(StorageOptions{}, retention);
      if (!store.ok()) {
        ADD_FAILURE() << store.status().ToString();
        return nullptr;
      }
      world->tiered = std::move(*store);
      EXPECT_TRUE(world->tiered->AppendBatch(std::move(records)).ok());
      EXPECT_TRUE(world->tiered->Seal().ok());
      EXPECT_TRUE(world->tiered->CompactOnce().ok());
      EXPECT_EQ(world->tiered->stats().hot_partitions, 0u);
      added = world->map.AddShard(world->tiered.get(), ranges[s]);
    } else {
      auto db = std::make_unique<AuditDatabase>(StorageOptions{});
      EXPECT_TRUE(db->AppendBatch(std::move(records)).ok());
      EXPECT_TRUE(db->Seal().ok());
      world->dbs.push_back(std::move(db));
      added = world->map.AddShard(world->dbs.back().get(), ranges[s]);
    }
    if (!added.ok()) {
      ADD_FAILURE() << added.ToString();
      return nullptr;
    }
  }
  return world;
}

TEST_F(DegradedExecTest, TieredShardReopenFaultDroppedUnderPartialPolicy) {
  auto world = BuildTieredFaultWorld(40);
  ASSERT_NE(world, nullptr);
  EXPECT_TRUE(world->map.shard_is_tiered(2));
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kPartial));
  auto clean = engine.Execute(kScanQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  // Drop the partition the clean query left resident, so the next query
  // must take the disk-reopen path where the fault is injected.
  world->tiered->cache()->EraseOwner(world->tiered.get());

  ASSERT_TRUE(
      Failpoint::Configure("retention.reopen=error(IOError)").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded.partial);
  ASSERT_EQ(result->degraded.shard_status.size(), 4u);
  EXPECT_TRUE(result->degraded.shard_status[2].dropped);
  EXPECT_TRUE(IsSubset(RowSet(result->table), RowSet(clean->table)));
  EXPECT_LT(result->table.rows.size(), clean->table.rows.size());
  // No row from the dropped shard's agent leaked through.
  for (const auto& row : result->table.rows) {
    for (const auto& cell : row) {
      EXPECT_EQ(ValueToString(cell).find("p3.exe"), std::string::npos);
    }
  }
}

TEST_F(DegradedExecTest, TieredShardReopenFaultFailsStrictPolicy) {
  auto world = BuildTieredFaultWorld(40);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  ASSERT_TRUE(
      Failpoint::Configure("retention.reopen=error(IOError)").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("shard 2"), std::string::npos);
}

TEST_F(DegradedExecTest, TieredShardReopenTransientRetryRecovers) {
  auto world = BuildTieredFaultWorld(40);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  auto clean = engine.Execute(kScanQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  world->tiered->cache()->EraseOwner(world->tiered.get());

  // Only the first materialization attempt fails; the shard-level retry
  // re-runs the scan and finds the fault gone.
  ASSERT_TRUE(
      Failpoint::Configure("retention.reopen=error(IOError)@nth1").ok());
  auto result = engine.Execute(kScanQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RowSet(result->table), RowSet(clean->table));
  EXPECT_FALSE(result->degraded.partial);
  ASSERT_EQ(result->degraded.shard_status.size(), 4u);
  EXPECT_EQ(result->degraded.shard_status[2].attempts, 2);
  EXPECT_FALSE(result->degraded.shard_status[2].dropped);
}

TEST_F(DegradedExecTest, TieredShardMemoryBudgetSplit) {
  auto world = BuildTieredFaultWorld(40);
  ASSERT_NE(world, nullptr);
  // One tiered shard in the map: it receives the whole budget.
  EXPECT_EQ(world->map.SetMemoryBudget(8192), 1u);
  EXPECT_EQ(world->tiered->cache()->stats().budget_bytes, 8192u);

  AiqlEngine engine(&world->map, FastRetryOptions(ShardPolicy::kStrict));
  auto result = engine.Execute(kScanQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Lifting the budget (0) keeps queries working too.
  EXPECT_EQ(world->map.SetMemoryBudget(0), 1u);
  EXPECT_EQ(world->tiered->cache()->stats().budget_bytes, 0u);
}

}  // namespace
}  // namespace aiql
