// Tests for string utilities, interner, RNG, thread pool, and table printer.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/interner.h"
#include "common/rng.h"
#include "common/string_utils.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace aiql {
namespace {

TEST(StringUtilsTest, Split) {
  auto parts = SplitString("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(TrimString("  x  "), "x");
  EXPECT_EQ(TrimString("\t\n"), "");
  EXPECT_EQ(TrimString("abc"), "abc");
}

TEST(StringUtilsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("CmD.ExE"), "cmd.exe");
  EXPECT_TRUE(EqualsIgnoreCase("ABC", "abc"));
  EXPECT_FALSE(EqualsIgnoreCase("ab", "abc"));
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
}

TEST(StringUtilsTest, CountWordsAndChars) {
  EXPECT_EQ(CountWords("proc p1 start proc p2"), 5u);
  EXPECT_EQ(CountWords("  leading and  trailing  "), 3u);
  EXPECT_EQ(CountWords(""), 0u);
  EXPECT_EQ(CountNonSpaceChars("a b\tc\n"), 3u);
}

TEST(StringUtilsTest, SqlQuote) {
  EXPECT_EQ(SqlQuote("abc"), "'abc'");
  EXPECT_EQ(SqlQuote("o'neil"), "'o''neil'");
}

TEST(InternerTest, DedupAndLookup) {
  StringInterner interner;
  StringId a = interner.Intern("cmd.exe");
  StringId b = interner.Intern("powershell.exe");
  StringId a2 = interner.Intern("cmd.exe");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Get(a), "cmd.exe");
  EXPECT_EQ(interner.Lookup("cmd.exe"), a);
  EXPECT_EQ(interner.Lookup("missing"), kInvalidStringId);
}

TEST(InternerTest, StableAcrossGrowth) {
  StringInterner interner;
  std::vector<StringId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(interner.Intern("str" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(interner.Get(ids[i]), "str" + std::to_string(i));
    EXPECT_EQ(interner.Intern("str" + std::to_string(i)), ids[i]);
  }
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent(99);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(1);
  EXPECT_EQ(c1.Next(), c2.Next());
  Rng c3 = parent.Fork(2);
  EXPECT_NE(c1.Next(), c3.Next());
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 5);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"proc", "bytes"});
  table.AddRow({"cmd.exe", "42"});
  table.AddRow({"x", "123456"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| proc    | bytes  |"), std::string::npos);
  EXPECT_NE(out.find("| cmd.exe | 42     |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, PadsMissingCellsAndDropsExtra) {
  TablePrinter table({"a", "b"});
  table.AddRow({"only"});
  table.AddRow({"x", "y", "ignored"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
  EXPECT_EQ(out.find("ignored"), std::string::npos);
}

}  // namespace
}  // namespace aiql
