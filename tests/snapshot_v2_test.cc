// Snapshot v2 unit tests: full round trip (events, statistics, indexes,
// options), lazy partition materialization through SnapshotStore, write-path
// error handling (short writes, failed sync/close), and format dispatch.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "engine/aiql_engine.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, OpType op, Timestamp start, uint64_t amount,
                std::string exe, ObjectRef object) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = amount;
  record.subject = ProcessRef{agent, 100 + agent, std::move(exe), "root"};
  record.object = std::move(object);
  return record;
}

/// 3 agents x 4 hour buckets with dedup-merged runs, several ops and all
/// three object types — enough structure to exercise every column encoder.
AuditDatabase BuildDatabase() {
  StorageOptions options;
  options.partition_duration = kHour;
  options.dedup_window = 3 * kSecond;
  AuditDatabase db(options);
  for (AgentId agent = 1; agent <= 3; ++agent) {
    for (int hour = 0; hour < 4; ++hour) {
      Timestamp base = T0() + hour * kHour;
      for (int i = 0; i < 20; ++i) {
        OpType op = i % 3 == 0   ? OpType::kRead
                    : i % 3 == 1 ? OpType::kWrite
                                 : OpType::kExecute;
        EXPECT_TRUE(db.Append(Rec(agent, op, base + i * kMinute, 10 + i,
                                  "proc" + std::to_string(i % 4),
                                  FileRef{agent,
                                          "/data/f" + std::to_string(i % 5)}))
                        .ok());
      }
      // Back-to-back writes that merge (merge_count > 1, raw > stored).
      for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(db.Append(Rec(agent, OpType::kWrite,
                                  base + 30 * kMinute + i * kSecond, 100,
                                  "merger", FileRef{agent, "/merged"}))
                        .ok());
      }
      EXPECT_TRUE(
          db.Append(Rec(agent, OpType::kConnect, base + 40 * kMinute, 0,
                        "net", NetworkRef{agent, "10.0.0." +
                                          std::to_string(agent),
                                          "172.16.0.9", 49152, 443, "tcp"}))
              .ok());
      EXPECT_TRUE(db.Append(Rec(agent, OpType::kStart, base + 45 * kMinute, 0,
                                "parent",
                                ProcessRef{agent, 900 + agent, "child",
                                           "svc"}))
                      .ok());
    }
  }
  EXPECT_TRUE(db.Seal().ok());
  return db;
}

class SnapshotV2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("/tmp/aiql_snapshot_v2_test_") +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".snap";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotV2Test, FullRoundTripPreservesEverything) {
  AuditDatabase db = BuildDatabase();
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());

  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->sealed());

  // Options (including the field v1 never persisted).
  EXPECT_EQ(loaded->options().partition_duration,
            db.options().partition_duration);
  EXPECT_EQ(loaded->options().dedup_window, db.options().dedup_window);
  EXPECT_EQ(loaded->options().max_partition_events,
            db.options().max_partition_events);

  // Database statistics.
  EXPECT_EQ(loaded->stats().total_events, db.stats().total_events);
  EXPECT_EQ(loaded->stats().raw_events, db.stats().raw_events);
  EXPECT_GT(loaded->stats().raw_events, loaded->stats().total_events);
  EXPECT_EQ(loaded->stats().total_partitions, db.stats().total_partitions);
  EXPECT_EQ(loaded->stats().min_ts, db.stats().min_ts);
  EXPECT_EQ(loaded->stats().max_ts, db.stats().max_ts);
  for (int op = 0; op < kNumOpTypes; ++op) {
    EXPECT_EQ(loaded->stats().op_counts[op], db.stats().op_counts[op]);
  }

  // Entities and interned strings.
  EXPECT_EQ(loaded->entities().processes(), db.entities().processes());
  EXPECT_EQ(loaded->entities().files(), db.entities().files());
  EXPECT_EQ(loaded->entities().networks(), db.entities().networks());
  EXPECT_EQ(loaded->entities().exe_names().size(),
            db.entities().exe_names().size());
  for (StringId id = 0; id < db.entities().exe_names().size(); ++id) {
    EXPECT_EQ(loaded->entities().exe_names().Get(id),
              db.entities().exe_names().Get(id));
  }

  // Per-partition events and seal artifacts (no rebuild at load).
  ASSERT_EQ(loaded->partitions().size(), db.partitions().size());
  auto orig_it = db.partitions().begin();
  StringId merger = db.entities().exe_names().Lookup("merger");
  ASSERT_NE(merger, kInvalidStringId);
  for (auto load_it = loaded->partitions().begin();
       load_it != loaded->partitions().end(); ++load_it, ++orig_it) {
    ASSERT_EQ(load_it->first, orig_it->first);
    const EventPartition& a = *orig_it->second;
    const EventPartition& b = *load_it->second;
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.raw_event_count(), b.raw_event_count());
    EXPECT_EQ(a.min_ts(), b.min_ts());
    EXPECT_EQ(a.max_ts(), b.max_ts());
    EXPECT_EQ(a.SubjectExeCount(merger), b.SubjectExeCount(merger));
    for (size_t i = 0; i < a.size(); ++i) {
      const Event& x = a.events()[i];
      const Event& y = b.events()[i];
      EXPECT_EQ(x.start_ts, y.start_ts);
      EXPECT_EQ(x.end_ts, y.end_ts);
      EXPECT_EQ(x.amount, y.amount);
      EXPECT_EQ(x.subject, y.subject);
      EXPECT_EQ(x.object, y.object);
      EXPECT_EQ(x.agent_id, y.agent_id);
      EXPECT_EQ(x.merge_count, y.merge_count);
      EXPECT_EQ(x.op, y.op);
      EXPECT_EQ(x.object_type, y.object_type);
    }
    for (int op = 0; op < kNumOpTypes; ++op) {
      EXPECT_EQ(a.posting(static_cast<OpType>(op)).indexes,
                b.posting(static_cast<OpType>(op)).indexes);
    }
    EXPECT_EQ(b.OpCountInRange(0x1FF, TimeRange{INT64_MIN, INT64_MAX}),
              b.size());
  }
}

TEST_F(SnapshotV2Test, V2IsSubstantiallySmallerThanV1) {
  AuditDatabase db = BuildDatabase();
  std::string v1_path = path_ + ".v1";
  ASSERT_TRUE(SaveSnapshotV1(db, v1_path).ok());
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());
  auto file_size = [](const std::string& p) -> long {
    FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    return size;
  };
  long v1 = file_size(v1_path);
  long v2 = file_size(path_);
  std::remove(v1_path.c_str());
  EXPECT_GE(v1, v2 * 2) << "v1=" << v1 << " v2=" << v2;
}

TEST_F(SnapshotV2Test, OpenIsLazyAndQueriesMaterializeOnlyTouchedPartitions) {
  AuditDatabase db = BuildDatabase();
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());

  auto store = SnapshotStore::Open(path_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->loaded_partitions(), 0u);
  EXPECT_EQ((*store)->total_partitions(), 12u);  // 3 agents x 4 buckets
  EXPECT_EQ((*store)->stats().total_events, db.stats().total_events);

  AiqlEngine db_engine(&db);
  AiqlEngine snap_engine(store->get());

  // One agent, one hour: only that partition is materialized.
  const std::string narrow =
      "(from \"00:00:00 05/10/2018\" to \"00:59:59 05/10/2018\") "
      "agentid = 2 proc p read || write file f return p, f";
  auto expected = db_engine.Execute(narrow);
  auto actual = snap_engine.Execute(narrow);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ((*store)->loaded_partitions(), 1u);
  expected->table.SortRows();
  actual->table.SortRows();
  EXPECT_EQ(actual->table, expected->table);

  // Re-running the same query hits the cache — no further loads.
  ASSERT_TRUE(snap_engine.Execute(narrow).ok());
  EXPECT_EQ((*store)->loaded_partitions(), 1u);

  // An unfiltered query touches everything and still matches the database.
  const std::string broad = "proc p write file f return distinct p, f";
  auto expected_all = db_engine.Execute(broad);
  auto actual_all = snap_engine.Execute(broad);
  ASSERT_TRUE(expected_all.ok());
  ASSERT_TRUE(actual_all.ok());
  EXPECT_EQ((*store)->loaded_partitions(), (*store)->total_partitions());
  expected_all->table.SortRows();
  actual_all->table.SortRows();
  EXPECT_EQ(actual_all->table, expected_all->table);
}

TEST_F(SnapshotV2Test, EmptyDatabaseRoundTrips) {
  AuditDatabase db;
  ASSERT_TRUE(db.Seal().ok());
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());
  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->stats().total_events, 0u);
  EXPECT_EQ(loaded->partitions().size(), 0u);

  auto store = SnapshotStore::Open(path_);
  ASSERT_TRUE(store.ok());
  AiqlEngine engine(store->get());
  auto result = engine.Execute("proc p read file f return p");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows(), 0u);
}

TEST_F(SnapshotV2Test, RefusesUnsealedDatabase) {
  AuditDatabase db;
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0(), 1, "a", FileRef{1, "/f"})).ok());
  EXPECT_EQ(SaveSnapshot(db, path_).code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotV2Test, FailedSaveLeavesNoFileBehind) {
  AuditDatabase db = BuildDatabase();
  std::string bad_path = "/nonexistent_aiql_dir/db.snap";
  EXPECT_EQ(SaveSnapshot(db, bad_path).code(), StatusCode::kIOError);
  // Neither the target nor the temporary may exist after a failed save.
  EXPECT_EQ(std::fopen(bad_path.c_str(), "rb"), nullptr);
  EXPECT_EQ(std::fopen((bad_path + ".tmp").c_str(), "rb"), nullptr);
}

// --- write-path error injection ---------------------------------------------

/// Sink that fails a chosen operation; Append simulates a short write once
/// `fail_after` bytes have been accepted.
class FailingSink : public SnapshotSink {
 public:
  enum class Mode { kShortWrite, kFailSync, kFailClose, kNone };

  explicit FailingSink(Mode mode, size_t fail_after = 0)
      : mode_(mode), fail_after_(fail_after) {}

  Status Append(const void* /*data*/, size_t n) override {
    if (mode_ == Mode::kShortWrite && written_ + n > fail_after_) {
      return Status::IOError("injected short write after " +
                             std::to_string(written_) + " bytes");
    }
    written_ += n;
    return Status::OK();
  }
  Status Sync() override {
    if (mode_ == Mode::kFailSync) {
      return Status::IOError("injected sync failure");
    }
    synced_ = true;
    return Status::OK();
  }
  Status Close() override {
    if (mode_ == Mode::kFailClose) {
      return Status::IOError("injected close failure");
    }
    closed_ = true;
    return Status::OK();
  }

  size_t written() const { return written_; }
  bool synced() const { return synced_; }
  bool closed() const { return closed_; }

 private:
  Mode mode_;
  size_t fail_after_;
  size_t written_ = 0;
  bool synced_ = false;
  bool closed_ = false;
};

TEST(SnapshotSinkTest, ShortWritesAreNeverReportedAsSuccess) {
  AuditDatabase db = BuildDatabase();
  // Probe cut-offs across the whole file: header, segments, footer, trailer.
  FailingSink probe(FailingSink::Mode::kNone);
  ASSERT_TRUE(SaveSnapshotToSink(db, &probe).ok());
  size_t total = probe.written();
  ASSERT_GT(total, 100u);
  for (size_t cut : {size_t{0}, size_t{5}, size_t{11}, size_t{100},
                     total / 3, total / 2, total - 25, total - 1}) {
    FailingSink sink(FailingSink::Mode::kShortWrite, cut);
    Status status = SaveSnapshotToSink(db, &sink);
    EXPECT_FALSE(status.ok()) << "cut at " << cut << " bytes";
    EXPECT_EQ(status.code(), StatusCode::kIOError);
  }
}

TEST(SnapshotSinkTest, SyncAndCloseFailuresPropagate) {
  AuditDatabase db = BuildDatabase();
  FailingSink sync_fail(FailingSink::Mode::kFailSync);
  EXPECT_EQ(SaveSnapshotToSink(db, &sync_fail).code(), StatusCode::kIOError);

  FailingSink close_fail(FailingSink::Mode::kFailClose);
  Status status = SaveSnapshotToSink(db, &close_fail);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_TRUE(close_fail.synced());  // failure came from close, after sync

  FailingSink ok_sink(FailingSink::Mode::kNone);
  EXPECT_TRUE(SaveSnapshotToSink(db, &ok_sink).ok());
  EXPECT_TRUE(ok_sink.synced());
  EXPECT_TRUE(ok_sink.closed());
}

}  // namespace
}  // namespace aiql
