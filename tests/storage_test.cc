// Unit tests for the storage engine: entity dedup, event merge-dedup,
// partitioning, statistics, scan selection, and snapshot persistence.

#include <gtest/gtest.h>

#include <cstdio>

#include "storage/database.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, OpType op, Timestamp start, uint64_t amount,
                std::string exe, ObjectRef object) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = amount;
  record.subject = ProcessRef{agent, 100, std::move(exe), "root"};
  record.object = std::move(object);
  return record;
}

TEST(EntityStoreTest, DeduplicatesEntities) {
  EntityStore store;
  ProcessRef p1{1, 100, "cmd.exe", "root"};
  EXPECT_EQ(store.InternProcess(p1), store.InternProcess(p1));
  EXPECT_EQ(store.processes().size(), 1u);
  // Different pid -> different entity.
  ProcessRef p2{1, 101, "cmd.exe", "root"};
  EXPECT_NE(store.InternProcess(p1), store.InternProcess(p2));
  // Same path on another agent -> different file entity.
  EXPECT_NE(store.InternFile(FileRef{1, "/etc/passwd"}),
            store.InternFile(FileRef{2, "/etc/passwd"}));
  EXPECT_EQ(store.paths().size(), 1u);  // but the string is interned once
}

TEST(EntityStoreTest, AttributeIndexLookups) {
  EntityStore store;
  store.InternProcess(ProcessRef{1, 1, "C:\\Windows\\cmd.exe", "root"});
  store.InternProcess(ProcessRef{1, 2, "C:\\Windows\\powershell.exe", "x"});
  store.InternProcess(ProcessRef{2, 3, "C:\\Windows\\cmd.exe", "y"});
  auto matches = store.FindProcessesByExe(LikeMatcher("%cmd.exe"));
  EXPECT_EQ(matches.size(), 2u);
  auto none = store.FindProcessesByExe(LikeMatcher("%bash%"));
  EXPECT_TRUE(none.empty());
}

TEST(DedupTest, MergesRepeatedEventsWithinWindow) {
  StorageOptions options;
  options.dedup_window = 3 * kSecond;
  AuditDatabase db(options);
  FileRef file{1, "/var/log/app.log"};
  // Ten 1-second writes back-to-back: merge into one event.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db.Append(Rec(1, OpType::kWrite, T0() + i * kSecond, 100, "a", file))
            .ok());
  }
  db.Seal();
  EXPECT_EQ(db.stats().raw_events, 10u);
  EXPECT_EQ(db.stats().total_events, 1u);
  const auto& partition = *db.partitions().begin()->second;
  ASSERT_EQ(partition.size(), 1u);
  EXPECT_EQ(partition.events()[0].amount, 1000u);  // amounts accumulate
  EXPECT_EQ(partition.events()[0].merge_count, 10u);
  EXPECT_EQ(partition.events()[0].end_ts, T0() + 9 * kSecond + kSecond);
}

TEST(DedupTest, GapBeyondWindowSplitsEvents) {
  StorageOptions options;
  options.dedup_window = 2 * kSecond;
  AuditDatabase db(options);
  FileRef file{1, "/tmp/x"};
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0(), 10, "a", file)).ok());
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0() + 10 * kSecond, 10, "a", file))
          .ok());
  db.Seal();
  EXPECT_EQ(db.stats().total_events, 2u);
}

TEST(DedupTest, DifferentKeysNeverMerge) {
  StorageOptions options;
  options.dedup_window = 10 * kSecond;
  AuditDatabase db(options);
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0(), 1, "a", FileRef{1, "/f1"}))
          .ok());
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0() + kSecond, 1, "a",
                    FileRef{1, "/f2"}))
          .ok());
  ASSERT_TRUE(db.Append(Rec(1, OpType::kRead, T0() + 2 * kSecond, 1, "a",
                            FileRef{1, "/f1"}))
                  .ok());
  db.Seal();
  EXPECT_EQ(db.stats().total_events, 3u);
}

TEST(PartitionTest, TimeAndAgentPartitioning) {
  StorageOptions options;
  options.partition_duration = kHour;
  options.dedup_window = 0;
  AuditDatabase db(options);
  // Two agents x three hours.
  for (AgentId agent : {1u, 2u}) {
    for (int hour = 0; hour < 3; ++hour) {
      ASSERT_TRUE(db.Append(Rec(agent, OpType::kWrite, T0() + hour * kHour,
                                1, "a", FileRef{agent, "/f"}))
                      .ok());
    }
  }
  db.Seal();
  EXPECT_EQ(db.stats().total_partitions, 6u);

  // Agent pruning.
  auto only_agent1 =
      db.SelectPartitions(TimeRange{INT64_MIN, INT64_MAX},
                          std::vector<AgentId>{1});
  EXPECT_EQ(only_agent1.size(), 3u);
  // Time pruning.
  auto first_hour = db.SelectPartitions(
      TimeRange{T0(), T0() + kHour}, std::nullopt);
  EXPECT_EQ(first_hour.size(), 2u);
}

TEST(PartitionTest, DisabledPartitioningUsesOneBucket) {
  StorageOptions options;
  options.enable_partitioning = false;
  AuditDatabase db(options);
  for (AgentId agent : {1u, 2u, 3u}) {
    ASSERT_TRUE(db.Append(Rec(agent, OpType::kWrite,
                              T0() + agent * 2 * kHour, 1, "a",
                              FileRef{agent, "/f"}))
                    .ok());
  }
  db.Seal();
  EXPECT_EQ(db.stats().total_partitions, 1u);
}

TEST(PartitionTest, SealedPartitionIsSortedAndSearchable) {
  StorageOptions options;
  options.dedup_window = 0;
  AuditDatabase db(options);
  // Out-of-order arrival within one partition.
  for (int i : {5, 1, 3, 2, 4}) {
    ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0() + i * kMinute, 1, "a",
                              FileRef{1, "/f"}))
                    .ok());
  }
  db.Seal();
  const auto& partition = *db.partitions().begin()->second;
  for (size_t i = 1; i < partition.size(); ++i) {
    EXPECT_LE(partition.events()[i - 1].start_ts,
              partition.events()[i].start_ts);
  }
  EXPECT_EQ(partition.LowerBound(T0() + 3 * kMinute), 2u);
  EXPECT_EQ(partition.LowerBound(T0() + 10 * kMinute), 5u);
}

TEST(StorageTest, RejectsMalformedRecords) {
  AuditDatabase db;
  EventRecord bad = Rec(1, OpType::kWrite, T0(), 1, "a", FileRef{1, "/f"});
  bad.end_ts = bad.start_ts - 1;
  EXPECT_FALSE(db.Append(bad).ok());

  EventRecord no_exe = Rec(1, OpType::kWrite, T0(), 1, "", FileRef{1, "/f"});
  EXPECT_FALSE(db.Append(no_exe).ok());

  db.Seal();
  EXPECT_FALSE(
      db.Append(Rec(1, OpType::kWrite, T0(), 1, "a", FileRef{1, "/f"})).ok());
}

TEST(StorageTest, OpStatisticsTracked) {
  StorageOptions options;
  options.dedup_window = 0;
  AuditDatabase db(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Append(Rec(1, OpType::kRead, T0() + i * kMinute, 1,
                              "reader", FileRef{1, "/f"}))
                    .ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0() + i * kMinute, 1,
                              "writer", FileRef{1, "/f"}))
                    .ok());
  }
  db.Seal();
  EXPECT_EQ(db.stats().op_counts[static_cast<int>(OpType::kRead)], 5u);
  EXPECT_EQ(db.stats().op_counts[static_cast<int>(OpType::kWrite)], 3u);
  const auto& partition = *db.partitions().begin()->second;
  StringId reader = db.entities().exe_names().Lookup("reader");
  ASSERT_NE(reader, kInvalidStringId);
  EXPECT_EQ(partition.SubjectExeCount(reader), 5u);
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("/tmp/aiql_snapshot_test_") +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".snap";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  StorageOptions options;
  options.partition_duration = 30 * kMinute;
  AuditDatabase db(options);
  for (int i = 0; i < 200; ++i) {
    AgentId agent = 1 + (i % 3);
    ASSERT_TRUE(db.Append(Rec(agent, i % 2 == 0 ? OpType::kRead
                                                : OpType::kWrite,
                              T0() + i * kMinute, 10 + i,
                              "proc" + std::to_string(i % 7),
                              FileRef{agent, "/data/f" +
                                                 std::to_string(i % 11)}))
                    .ok());
  }
  db.Seal();
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());

  auto loaded = LoadSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->stats().total_events, db.stats().total_events);
  EXPECT_EQ(loaded->stats().total_partitions, db.stats().total_partitions);
  EXPECT_EQ(loaded->entities().processes().size(),
            db.entities().processes().size());
  EXPECT_EQ(loaded->entities().files().size(), db.entities().files().size());
  EXPECT_TRUE(loaded->sealed());

  // Spot-check event equality partition by partition.
  auto orig_it = db.partitions().begin();
  auto load_it = loaded->partitions().begin();
  for (; orig_it != db.partitions().end(); ++orig_it, ++load_it) {
    ASSERT_EQ(orig_it->first, load_it->first);
    ASSERT_EQ(orig_it->second->size(), load_it->second->size());
    for (size_t i = 0; i < orig_it->second->size(); ++i) {
      const Event& a = orig_it->second->events()[i];
      const Event& b = load_it->second->events()[i];
      EXPECT_EQ(a.start_ts, b.start_ts);
      EXPECT_EQ(a.subject, b.subject);
      EXPECT_EQ(a.object, b.object);
      EXPECT_EQ(a.amount, b.amount);
    }
  }
}

TEST_F(SnapshotTest, RefusesUnsealedDatabase) {
  AuditDatabase db;
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0(), 1, "a", FileRef{1, "/f"})).ok());
  EXPECT_FALSE(SaveSnapshot(db, path_).ok());
}

TEST_F(SnapshotTest, DetectsCorruption) {
  AuditDatabase db;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0() + i * kMinute, 1, "a",
                              FileRef{1, "/f"}))
                    .ok());
  }
  db.Seal();
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());

  // Flip one byte in the middle.
  FILE* file = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 100, SEEK_SET);
  int c = std::fgetc(file);
  std::fseek(file, 100, SEEK_SET);
  std::fputc(c ^ 0xFF, file);
  std::fclose(file);

  auto loaded = LoadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotTest, RejectsMissingAndForeignFiles) {
  EXPECT_EQ(LoadSnapshot("/tmp/does_not_exist.snap").status().code(),
            StatusCode::kIOError);
  FILE* file = std::fopen(path_.c_str(), "wb");
  std::fputs("this is not a snapshot", file);
  std::fclose(file);
  EXPECT_EQ(LoadSnapshot(path_).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace aiql
