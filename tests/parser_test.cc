// Unit tests for the AIQL parser, including the three example queries from
// the paper (§2.2.1-2.2.3) with concrete dates.

#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/analyzer.h"

namespace aiql {
namespace {

// Query 1 (paper §2.2.1): data exfiltration from database server.
constexpr const char* kQuery1 = R"(
  (at "05/10/2018") // time window
  agentid = 7 // SQL database server
  proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
  proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
  proc p4["%sbblv.exe"] read file f1 as evt3
  proc p4 read || write ip i1[dstip = "172.16.0.129"] as evt4
  with evt1 before evt2, evt2 before evt3, evt3 before evt4
  return distinct p1, p2, p3, f1, p4, i1
)";

// Query 2 (paper §2.2.2): forward tracking for malware ramification.
constexpr const char* kQuery2 = R"(
  (at "05/10/2018")
  forward: proc p1["%/bin/cp%", agentid = 1] ->[write] file
      f1["/var/www/%info_stealer%"]
  <-[read] proc p2["%apache%"]
  ->[connect] proc p3[agentid = 2] // tracking across hosts
  ->[write] file f2["%info_stealer%"]
  return f1, p1, p2, p3, f2
)";

// Query 3 (paper §2.2.3): large data transfer from database server.
constexpr const char* kQuery3 = R"(
  (at "05/10/2018")
  agentid = 7
  window = 1 min, step = 10 sec
  proc p write ip i[dstip = "172.16.0.129"] as evt
  return p, avg(evt.amount) as amt
  group by p
  having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
)";

TEST(ParserTest, Query1MultieventStructure) {
  auto parsed = ParseAiql(kQuery1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, QueryKind::kMultievent);
  ASSERT_NE(parsed->multievent, nullptr);
  const MultieventQueryAst& ast = *parsed->multievent;

  ASSERT_TRUE(ast.globals.time_window.has_value());
  ASSERT_EQ(ast.globals.attrs.size(), 1u);
  EXPECT_EQ(ast.globals.attrs[0].attr, "agentid");
  EXPECT_EQ(ast.globals.attrs[0].values[0].i, 7);

  ASSERT_EQ(ast.patterns.size(), 4u);
  EXPECT_EQ(ast.patterns[0].subject.var, "p1");
  EXPECT_EQ(ast.patterns[0].subject.constraints[0].values[0].str,
            "%cmd.exe");
  EXPECT_EQ(ast.patterns[0].ops, std::vector<OpType>{OpType::kStart});
  EXPECT_EQ(ast.patterns[0].object.var, "p2");
  EXPECT_EQ(ast.patterns[0].event_var, "evt1");

  // Pattern 4: read || write on a network object with a named attribute.
  const EventPatternAst& p4 = ast.patterns[3];
  EXPECT_EQ(p4.ops, (std::vector<OpType>{OpType::kRead, OpType::kWrite}));
  EXPECT_EQ(p4.object.type, EntityType::kNetwork);
  ASSERT_EQ(p4.object.constraints.size(), 1u);
  EXPECT_EQ(p4.object.constraints[0].attr, "dstip");

  ASSERT_EQ(ast.temporal_rels.size(), 3u);
  EXPECT_EQ(ast.temporal_rels[0].left, "evt1");
  EXPECT_EQ(ast.temporal_rels[0].right, "evt2");
  EXPECT_TRUE(ast.temporal_rels[0].before);

  EXPECT_TRUE(ast.distinct);
  EXPECT_EQ(ast.return_items.size(), 6u);
  EXPECT_FALSE(ast.is_anomaly());
}

TEST(ParserTest, Query2DependencyStructure) {
  auto parsed = ParseAiql(kQuery2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, QueryKind::kDependency);
  ASSERT_NE(parsed->dependency, nullptr);
  const DependencyQueryAst& dep = *parsed->dependency;

  EXPECT_TRUE(dep.forward);
  EXPECT_EQ(dep.start.var, "p1");
  ASSERT_EQ(dep.start.constraints.size(), 2u);
  EXPECT_EQ(dep.start.constraints[1].attr, "agentid");

  ASSERT_EQ(dep.edges.size(), 4u);
  EXPECT_TRUE(dep.edges[0].arrow_forward);
  EXPECT_EQ(dep.edges[0].ops, std::vector<OpType>{OpType::kWrite});
  EXPECT_EQ(dep.edges[0].target.var, "f1");
  EXPECT_FALSE(dep.edges[1].arrow_forward);  // <-[read]
  EXPECT_EQ(dep.edges[1].target.var, "p2");
  EXPECT_EQ(dep.edges[2].ops, std::vector<OpType>{OpType::kConnect});
  EXPECT_EQ(dep.edges[3].target.var, "f2");

  EXPECT_EQ(dep.return_items.size(), 5u);
}

TEST(ParserTest, Query3AnomalyStructure) {
  auto parsed = ParseAiql(kQuery3);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, QueryKind::kAnomaly);
  const MultieventQueryAst& ast = *parsed->multievent;

  ASSERT_TRUE(ast.window.has_value());
  EXPECT_EQ(ast.window->length, kMinute);
  EXPECT_EQ(ast.window->step, 10 * kSecond);

  ASSERT_EQ(ast.patterns.size(), 1u);
  EXPECT_EQ(ast.patterns[0].event_var, "evt");

  ASSERT_EQ(ast.return_items.size(), 2u);
  EXPECT_TRUE(ast.return_items[1].is_aggregate());
  EXPECT_EQ(ast.return_items[1].alias, "amt");
  const auto& agg = std::get<AggCallAst>(ast.return_items[1].expr);
  EXPECT_EQ(agg.func, AggFunc::kAvg);
  EXPECT_EQ(agg.arg.var, "evt");
  EXPECT_EQ(agg.arg.attr, "amount");

  ASSERT_EQ(ast.group_by.size(), 1u);
  EXPECT_EQ(ast.group_by[0].var, "p");
  ASSERT_NE(ast.having, nullptr);
  EXPECT_EQ(ast.having->kind, HavingExpr::Kind::kCompare);
}

TEST(ParserTest, AnonymousEntitiesAndEvents) {
  // Fully anonymous subject/object and unnamed event parse fine; the
  // analyzer later rejects the dangling `evt1` reference.
  auto parsed = ParseAiql("proc[\"%cmd%\"] read file return evt1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto analyzed = AnalyzeMultievent(*parsed->multievent, parsed->kind);
  EXPECT_FALSE(analyzed.ok());

  auto parsed2 = ParseAiql("proc p[\"%cmd%\"] read file f return p, f");
  ASSERT_TRUE(parsed2.ok()) << parsed2.status().ToString();
  EXPECT_EQ(parsed2->multievent->patterns[0].event_var, "");
}

TEST(ParserTest, FromToTimeWindow) {
  auto parsed = ParseAiql(
      "(from \"05/10/2018\" to \"05/11/2018\") proc p read file f "
      "return p");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& window = parsed->multievent->globals.time_window;
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->end - window->start, 2 * kDay);  // both days inclusive
}

TEST(ParserTest, TemporalRelationWithBound) {
  auto parsed = ParseAiql(
      "proc p read file f as e1 proc p write ip i as e2 "
      "with e1 before[2 min] e2 return p");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->multievent->temporal_rels.size(), 1u);
  EXPECT_EQ(parsed->multievent->temporal_rels[0].within, 2 * kMinute);
}

TEST(ParserTest, AttributeRelationInWith) {
  auto parsed = ParseAiql(
      "proc p1 read file f1 as e1 proc p2 write file f2 as e2 "
      "with p1.pid = p2.pid return p1, p2");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->multievent->attr_rels.size(), 1u);
  EXPECT_EQ(parsed->multievent->attr_rels[0].left.var, "p1");
  EXPECT_EQ(parsed->multievent->attr_rels[0].right.attr, "pid");
}

TEST(ParserTest, InConstraint) {
  auto parsed = ParseAiql(
      "proc p[pid in (1, 2, 3)] read file f return p");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& c = parsed->multievent->patterns[0].subject.constraints[0];
  EXPECT_EQ(c.op, CmpOp::kIn);
  EXPECT_EQ(c.values.size(), 3u);
}

TEST(ParserTest, LimitClause) {
  auto parsed = ParseAiql("proc p read file f return p limit 10");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->multievent->limit, 10);
}

TEST(ParserTest, ErrorsCarryLineAndColumn) {
  auto parsed = ParseAiql("proc p1[\"%cmd%\"] frobnicate proc p2 return p1");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("frobnicate"), std::string::npos);
}

TEST(ParserTest, MissingReturnIsAnError) {
  auto parsed = ParseAiql("proc p read file f");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, EmptyQueryIsAnError) {
  EXPECT_FALSE(ParseAiql("").ok());
  EXPECT_FALSE(ParseAiql("// just a comment").ok());
}

TEST(ParserTest, TrailingGarbageIsAnError) {
  auto parsed = ParseAiql("proc p read file f return p extra tokens");
  ASSERT_FALSE(parsed.ok());
}

TEST(ParserTest, DependencyNeedsEdges) {
  auto parsed = ParseAiql("forward: proc p1 return p1");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("edge"), std::string::npos);
}

TEST(ParserTest, WindowInDependencyRejected) {
  auto parsed = ParseAiql(
      "window = 1 min, step = 10 sec forward: proc p ->[write] file f "
      "return p");
  ASSERT_FALSE(parsed.ok());
}

TEST(ParserTest, BackwardDependency) {
  auto parsed = ParseAiql(
      "backward: file f[\"%passwd%\"] <-[write] proc p1 return p1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->dependency->forward);
  EXPECT_FALSE(parsed->dependency->edges[0].arrow_forward);
}

TEST(ParserTest, GlobalAgentInList) {
  auto parsed = ParseAiql(
      "agentid in (1, 2) proc p read file f return p");
  // Global constraints use IDENT '=' only; 'in' global goes through the
  // constraint path? It should fail to parse as a global and then fail as a
  // pattern -> error either way is acceptable; assert it does not crash.
  (void)parsed;
  SUCCEED();
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto parsed = ParseAiql(
      "PROC p READ file f AS e1 WITH e1 BEFORE e1x RETURN DISTINCT p");
  // e1x unknown — parser accepts, analyzer rejects; parse itself must work.
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->multievent->distinct);
}

}  // namespace
}  // namespace aiql
