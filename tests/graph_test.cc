// Tests for the graph (Neo4j stand-in) baseline: store construction, the
// Cypher generator, and differential equivalence with the AIQL engine.

#include <gtest/gtest.h>

#include "engine/aiql_engine.h"
#include "graph/cypher_gen.h"
#include "graph/graph_executor.h"
#include "graph/graph_store.h"
#include "query/parser.h"
#include "simulator/scenario.h"

namespace aiql {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.num_clients = 2;
    options.duration = 3 * kHour;
    options.events_per_host_per_hour = 300;
    options.seed = 11;
    data_ = new DemoScenarioData(GenerateDemoScenario(options));
    auto db = IngestRecords(data_->records, StorageOptions{});
    ASSERT_TRUE(db.ok());
    db_ = new AuditDatabase(std::move(db).value());
    graph_ = new GraphStore(db_);
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete db_;
    delete data_;
    graph_ = nullptr;
    db_ = nullptr;
    data_ = nullptr;
  }

  static DemoScenarioData* data_;
  static AuditDatabase* db_;
  static GraphStore* graph_;
};

DemoScenarioData* GraphTest::data_ = nullptr;
AuditDatabase* GraphTest::db_ = nullptr;
GraphStore* GraphTest::graph_ = nullptr;

TEST_F(GraphTest, StoreMirrorsDatabase) {
  const EntityStore& es = db_->entities();
  EXPECT_EQ(graph_->num_nodes(), es.processes().size() + es.files().size() +
                                     es.networks().size());
  EXPECT_EQ(graph_->num_edges(), db_->stats().total_events);

  // Node id mapping round-trips.
  NodeId file_node = graph_->NodeOf(EntityType::kFile, 3);
  EXPECT_EQ(graph_->NodeType(file_node), EntityType::kFile);
  EXPECT_EQ(graph_->NodeEntity(file_node), 3u);
}

TEST_F(GraphTest, AdjacencyIsConsistent) {
  size_t out_total = 0, in_total = 0;
  for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
    out_total += graph_->OutEdges(n).size();
    in_total += graph_->InEdges(n).size();
  }
  EXPECT_EQ(out_total, graph_->num_edges());
  EXPECT_EQ(in_total, graph_->num_edges());
}

TEST_F(GraphTest, DifferentialAgainstAiqlEngine) {
  const std::string queries[] = {
      "(at \"05/10/2018\") agentid = 1 "
      "proc p[\"%telnetd%\"] write file f return distinct p, f",
      "(at \"05/10/2018\") agentid = 1 "
      "proc p1[\"%unrealircd%\"] start proc p2 as e1 "
      "proc p2 start proc p3 as e2 with e1 before e2 "
      "return distinct p1, p2, p3",
      "(at \"05/10/2018\") "
      "proc p1[\"%malnet%\", agentid = 1] connect proc p3[agentid = 5] as e "
      "return distinct p1, p3",
      "(at \"05/10/2018\") agentid = 4 "
      "proc p[\"%powershell%\"] read file f as e1 "
      "proc p write ip i as e2 with e1 before e2 "
      "return distinct p, f, i",
  };
  AiqlEngine engine(db_);
  GraphExecutor graph_executor(graph_);
  for (const std::string& query : queries) {
    auto expected = engine.Execute(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto actual = graph_executor.ExecuteAiql(query);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    expected->table.SortRows();
    actual->table.SortRows();
    EXPECT_EQ(actual->table, expected->table) << query;
  }
}

TEST_F(GraphTest, DependencyQueriesWork) {
  GraphExecutor executor(graph_);
  auto result = executor.ExecuteAiql(
      "(at \"05/10/2018\") "
      "forward: proc p1[\"%telnetd%\", agentid = 1] ->[write] file "
      "f1[\"%malnet%\"] <-[execute] proc p2[\"%/bin/sh%\"] "
      "return p1, f1, p2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->table.num_rows(), 1u);
}

TEST_F(GraphTest, AnomalyQueriesUnsupported) {
  GraphExecutor executor(graph_);
  auto result = executor.ExecuteAiql(
      "window = 1 min, step = 10 sec proc p write ip i as e "
      "return p, avg(e.amount) as amt group by p");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(GraphTest, CypherGenerationShape) {
  auto parsed = ParseAiql(
      "(at \"05/10/2018\") agentid = 4 "
      "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e1 "
      "proc p3[\"%sqlservr%\"] write file f1[\"%db.bak%\"] as e2 "
      "with e1 before e2 return distinct p1, p2, p3, f1");
  ASSERT_TRUE(parsed.ok());
  auto cypher = TranslateToCypher(*parsed);
  ASSERT_TRUE(cypher.ok()) << cypher.status().ToString();
  EXPECT_NE(cypher->cypher.find("MATCH (p1:Process)-[e1:EVENT]->"),
            std::string::npos);
  // The regex dot-escape is itself backslash-escaped inside the Cypher
  // string literal: '(?i).*cmd\\.exe'.
  EXPECT_NE(cypher->cypher.find("(?i).*cmd\\\\.exe"), std::string::npos);
  EXPECT_NE(cypher->cypher.find("e1.end_ts <= e2.start_ts"),
            std::string::npos);
  EXPECT_NE(cypher->cypher.find("RETURN DISTINCT"), std::string::npos);
  EXPECT_GT(cypher->metrics.constraints, 10u);
}

TEST_F(GraphTest, CypherLessConciseThanAiql) {
  auto parsed = ParseAiql(
      "(at \"05/10/2018\") agentid = 4 "
      "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e1 "
      "proc p3[\"%sqlservr%\"] write file f1[\"%db.bak%\"] as e2 "
      "with e1 before e2 return distinct p1, p2, p3, f1");
  ASSERT_TRUE(parsed.ok());
  QueryTextMetrics aiql_metrics = ComputeAiqlMetrics(*parsed);
  auto cypher = TranslateToCypher(*parsed);
  ASSERT_TRUE(cypher.ok());
  EXPECT_GT(cypher->metrics.words, aiql_metrics.words);
  EXPECT_GT(cypher->metrics.chars, aiql_metrics.chars);
}

}  // namespace
}  // namespace aiql
