// Tests for the sealed-partition read-path artifacts: the columnar view,
// per-operation posting lists with zone maps, time-clipped op counts,
// LowerBound edge cases, and the zero-copy pattern scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "engine/scan.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, OpType op, Timestamp start, uint64_t amount,
                std::string exe, ObjectRef object) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = amount;
  record.subject = ProcessRef{agent, 100, std::move(exe), "root"};
  record.object = std::move(object);
  return record;
}

/// A deterministic mixed-op database: several agents, several ops, several
/// hours, no dedup so row counts are predictable.
AuditDatabase MixedDatabase() {
  StorageOptions options;
  options.dedup_window = 0;
  AuditDatabase db(options);
  const OpType ops[] = {OpType::kRead, OpType::kWrite, OpType::kExecute,
                        OpType::kConnect};
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    AgentId agent = 1 + (i % 3);
    OpType op = ops[rng.Uniform(4)];
    Timestamp start = T0() + static_cast<Duration>(rng.Uniform(5 * kHour));
    EXPECT_TRUE(db.Append(Rec(agent, op, start, 1 + i,
                              "exe" + std::to_string(i % 4),
                              FileRef{agent, "/f" + std::to_string(i % 9)}))
                    .ok());
  }
  db.Seal();
  return db;
}

TEST(ColumnarSealTest, ColumnsMirrorRowsAfterSeal) {
  AuditDatabase db = MixedDatabase();
  for (const auto& [key, partition] : db.partitions()) {
    ASSERT_TRUE(partition->sealed());
    const EventColumns& cols = partition->columns();
    ASSERT_EQ(cols.size(), partition->size());
    for (size_t i = 0; i < partition->size(); ++i) {
      const Event& row = partition->events()[i];
      EXPECT_EQ(cols.start_ts[i], row.start_ts);
      EXPECT_EQ(cols.end_ts[i], row.end_ts);
      EXPECT_EQ(cols.subject[i], row.subject);
      EXPECT_EQ(cols.object[i], row.object);
      EXPECT_EQ(cols.agent_id[i], row.agent_id);
      EXPECT_EQ(cols.amount[i], row.amount);
      EXPECT_EQ(cols.op[i], row.op);
      EXPECT_EQ(cols.object_type[i], row.object_type);
    }
  }
}

TEST(ColumnarSealTest, PostingListsMatchBruteForceScan) {
  AuditDatabase db = MixedDatabase();
  for (const auto& [key, partition] : db.partitions()) {
    for (int op = 0; op < kNumOpTypes; ++op) {
      const OpPostingList& list = partition->posting(static_cast<OpType>(op));
      // Brute force: indexes of every event with this op, ascending.
      std::vector<uint32_t> expected;
      Timestamp min_start = INT64_MAX, max_start = INT64_MIN;
      for (size_t i = 0; i < partition->size(); ++i) {
        const Event& event = partition->events()[i];
        if (event.op != static_cast<OpType>(op)) continue;
        expected.push_back(static_cast<uint32_t>(i));
        min_start = std::min(min_start, event.start_ts);
        max_start = std::max(max_start, event.start_ts);
      }
      EXPECT_EQ(list.indexes, expected);
      EXPECT_EQ(list.size(), partition->OpCount(static_cast<OpType>(op)));
      if (!expected.empty()) {
        EXPECT_EQ(list.min_start_ts, min_start);
        EXPECT_EQ(list.max_start_ts, max_start);
      }
    }
  }
}

TEST(ColumnarSealTest, OpCountInRangeMatchesBruteForce) {
  AuditDatabase db = MixedDatabase();
  const TimeRange ranges[] = {
      {INT64_MIN, INT64_MAX},
      {T0() + kHour, T0() + 2 * kHour},
      {T0() - kDay, T0()},            // entirely before the data
      {T0() + 10 * kHour, INT64_MAX}  // entirely after the data
  };
  const OpMask masks[] = {OpBit(OpType::kRead),
                          OpBit(OpType::kRead) | OpBit(OpType::kWrite),
                          OpBit(OpType::kConnect) | OpBit(OpType::kAccept),
                          static_cast<OpMask>(0x1FF)};
  for (const auto& [key, partition] : db.partitions()) {
    for (const TimeRange& range : ranges) {
      for (OpMask mask : masks) {
        uint64_t expected = 0;
        for (const Event& event : partition->events()) {
          if (OpMaskContains(mask, event.op) && range.Contains(event.start_ts))
            ++expected;
        }
        EXPECT_EQ(partition->OpCountInRange(mask, range), expected)
            << "mask=" << mask << " range=[" << range.start << ","
            << range.end << ")";
      }
    }
  }
}

TEST(ColumnarSealTest, SealArtifactsSurviveSnapshotRoundTrip) {
  // MixedDatabase appends in random time order, so bucket rotation splits
  // (bucket, agent) pairs into rollover partitions; the v2 snapshot format
  // round-trips each physical partition 1:1 (that is what makes lazy
  // per-partition loading possible). Compare content partition by
  // partition, then check the loaded partitions' restored columns and
  // postings against their own rows.
  AuditDatabase db = MixedDatabase();
  std::string path = "/tmp/aiql_columnar_roundtrip_test.snap";
  ASSERT_TRUE(SaveSnapshot(db, path).ok());
  auto loaded = LoadSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->stats().total_events, db.stats().total_events);

  auto event_key = [](const Event& e) {
    return std::tuple(e.start_ts, e.end_ts, static_cast<int>(e.op), e.subject,
                      e.object, e.amount);
  };
  ASSERT_EQ(loaded->partitions().size(), db.partitions().size());
  auto orig_it = db.partitions().begin();
  for (const auto& [key, partition] : loaded->partitions()) {
    ASSERT_TRUE(partition->sealed());
    ASSERT_EQ(key, orig_it->first);
    std::vector<std::tuple<Timestamp, Timestamp, int, EntityId, EntityId,
                           uint64_t>>
        expected, actual;
    for (const Event& event : orig_it->second->events()) {
      expected.push_back(event_key(event));
    }
    for (const Event& event : partition->events()) {
      actual.push_back(event_key(event));
    }
    EXPECT_EQ(actual, expected);
    ++orig_it;

    // Rebuilt artifacts must mirror the merged rows.
    const EventColumns& cols = partition->columns();
    ASSERT_EQ(cols.size(), partition->size());
    uint64_t posting_total = 0;
    for (int op = 0; op < kNumOpTypes; ++op) {
      posting_total += partition->posting(static_cast<OpType>(op)).size();
    }
    EXPECT_EQ(posting_total, partition->size());
    for (size_t i = 0; i < partition->size(); ++i) {
      EXPECT_EQ(cols.start_ts[i], partition->events()[i].start_ts);
      EXPECT_EQ(cols.op[i], partition->events()[i].op);
    }
    EXPECT_EQ(partition->OpCountInRange(0x1FF, TimeRange{INT64_MIN, INT64_MAX}),
              partition->size());
  }
}

TEST(LowerBoundTest, EmptyPartition) {
  EventPartition partition;
  partition.Seal();
  EXPECT_EQ(partition.LowerBound(INT64_MIN), 0u);
  EXPECT_EQ(partition.LowerBound(0), 0u);
  EXPECT_EQ(partition.LowerBound(INT64_MAX), 0u);
  EXPECT_EQ(partition.OpCountInRange(0x1FF, TimeRange{INT64_MIN, INT64_MAX}),
            0u);
}

TEST(LowerBoundTest, BeforeBetweenAndAfterAllEvents) {
  EventPartition partition;
  Event event;
  event.op = OpType::kRead;
  for (Timestamp t : {10, 20, 30}) {
    event.start_ts = t * kSecond;
    event.end_ts = t * kSecond + 1;
    partition.Append(event, 0);
  }
  partition.Seal();
  EXPECT_EQ(partition.LowerBound(0), 0u);                  // before all
  EXPECT_EQ(partition.LowerBound(10 * kSecond), 0u);       // first event
  EXPECT_EQ(partition.LowerBound(10 * kSecond + 1), 1u);   // between
  EXPECT_EQ(partition.LowerBound(30 * kSecond), 2u);       // last event
  EXPECT_EQ(partition.LowerBound(30 * kSecond + 1), 3u);   // after all
  EXPECT_EQ(partition.LowerBound(INT64_MAX), 3u);
}

// --- zero-copy scan ---------------------------------------------------------

CompiledPattern PatternFor(OpMask mask, EntityType object_type) {
  CompiledPattern pattern;
  pattern.op_mask = mask;
  pattern.subject.type = EntityType::kProcess;
  pattern.object.type = object_type;
  return pattern;
}

TEST(ZeroCopyScanTest, MatchesAliasPartitionStorage) {
  AuditDatabase db = MixedDatabase();
  CompiledPattern pattern =
      PatternFor(OpBit(OpType::kRead) | OpBit(OpType::kConnect),
                 EntityType::kFile);
  TimeRange range{T0(), T0() + 3 * kHour};
  for (const auto& [key, partition] : db.partitions()) {
    std::vector<const Event*> out;
    ScanPartition(*partition, pattern, range, nullptr, false, &out);
    const Event* base = partition->events().data();
    const Event* limit = base + partition->events().size();
    for (const Event* match : out) {
      // Pointer identity: every match points into partition.events().
      ASSERT_GE(match, base);
      ASSERT_LT(match, limit);
      size_t index = static_cast<size_t>(match - base);
      EXPECT_EQ(match, &partition->events()[index]);
    }
  }
}

TEST(ZeroCopyScanTest, AgreesWithBruteForceRowScan) {
  AuditDatabase db = MixedDatabase();
  const TimeRange range{T0() + 30 * kMinute, T0() + 4 * kHour};
  const OpMask masks[] = {OpBit(OpType::kExecute),  // rare op: posting path
                          static_cast<OpMask>(0x1FF)};  // all: columnar path
  for (OpMask mask : masks) {
    CompiledPattern pattern = PatternFor(mask, EntityType::kFile);
    for (const auto& [key, partition] : db.partitions()) {
      std::vector<const Event*> out;
      ScanPartition(*partition, pattern, range, nullptr, false, &out);
      std::vector<const Event*> expected;
      for (const Event& event : partition->events()) {
        if (range.Contains(event.start_ts) &&
            OpMaskContains(mask, event.op) &&
            event.object_type == EntityType::kFile) {
          expected.push_back(&event);
        }
      }
      // Same matches, same (ascending index) order, same addresses.
      EXPECT_EQ(out, expected);
    }
  }
}

TEST(ZeroCopyScanTest, UnsealedPartitionFallsBackToRowScan) {
  EventPartition partition;
  Event event;
  event.op = OpType::kWrite;
  event.object_type = EntityType::kFile;
  for (Timestamp t : {30, 10, 20}) {  // deliberately unsorted, not sealed
    event.start_ts = t * kSecond;
    event.end_ts = t * kSecond + 1;
    partition.Append(event, 0);
  }
  ASSERT_FALSE(partition.sealed());
  CompiledPattern pattern = PatternFor(OpBit(OpType::kWrite),
                                       EntityType::kFile);
  std::vector<const Event*> out;
  ScanPartition(partition, pattern, TimeRange{0, 25 * kSecond}, nullptr,
                false, &out);
  ASSERT_EQ(out.size(), 2u);  // 10s and 20s events, not silently zero
  for (const Event* match : out) {
    EXPECT_GE(match, partition.events().data());
    EXPECT_LT(match, partition.events().data() + partition.size());
  }
}

TEST(ZeroCopyScanTest, AgentFilterRestrictsMatches) {
  AuditDatabase db = MixedDatabase();
  CompiledPattern pattern =
      PatternFor(static_cast<OpMask>(0x1FF), EntityType::kFile);
  AgentFilterSet only_agent2{std::vector<AgentId>{2}};
  for (const auto& [key, partition] : db.partitions()) {
    std::vector<const Event*> out;
    ScanPartition(*partition, pattern, TimeRange{INT64_MIN, INT64_MAX},
                  &only_agent2, false, &out);
    for (const Event* match : out) {
      EXPECT_EQ(match->agent_id, 2u);
    }
  }
}

}  // namespace
}  // namespace aiql
