// Tiered retention end-to-end tests: result identity across residence
// states (hot, cold, merged, mid-compaction), memory-budgeted eviction
// under concurrent queries, crash/abort injection at the compaction and
// demotion commit points, recovery from the retention directory, the
// retention horizon (tombstoning + entity aging), and QueryContext byte
// budgets governing cold materialization.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/time_utils.h"
#include "engine/aiql_engine.h"
#include "engine/result.h"
#include "simulator/scenario.h"
#include "storage/database.h"
#include "storage/tiered.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, OpType op, Timestamp start, uint64_t amount,
                const std::string& exe, ObjectRef object) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = amount;
  record.subject =
      ProcessRef{agent, static_cast<uint32_t>(100 + agent), exe, "root"};
  record.object = std::move(object);
  return record;
}

/// 3 agents x 5 hourly buckets, enough per-bucket volume to roll over the
/// (tiny) partition event cap several times — so every bucket has multiple
/// seq siblings for merge compaction to fold.
std::vector<EventRecord> BuildRecords() {
  std::vector<EventRecord> records;
  for (AgentId agent = 1; agent <= 3; ++agent) {
    for (int hour = 0; hour < 5; ++hour) {
      Timestamp base = T0() + hour * kHour;
      for (int i = 0; i < 60; ++i) {
        OpType op = i % 3 == 0   ? OpType::kRead
                    : i % 3 == 1 ? OpType::kWrite
                                 : OpType::kExecute;
        // Bucket-unique file paths: entities of expired buckets have no
        // later touches, so the aging pass has something to count.
        records.push_back(Rec(agent, op, base + i * kMinute, 10 + i,
                              "proc" + std::to_string(i % 4),
                              FileRef{agent, "/h" + std::to_string(hour) +
                                                 "/f" + std::to_string(i % 7)}));
      }
      records.push_back(
          Rec(agent, OpType::kConnect, base + 45 * kMinute, 0, "net",
              NetworkRef{agent, "10.0.0." + std::to_string(agent),
                         "172.16.0.9", 49152, 443, "tcp"}));
    }
  }
  return records;
}

StorageOptions SmallPartitions() {
  StorageOptions options;
  options.partition_duration = kHour;
  options.max_partition_events = 16;  // force seq rollover inside buckets
  return options;
}

const char* kQueries[] = {
    // Full scan with projection.
    "proc p1 write file f1 as e1 return p1, f1, e1.amount",
    // Filtered scan (entity predicate pushdown over every tier).
    "proc p1 read file f1[\"/h1/%\"] as e1 return p1, f1, e1.amount",
    // Ordered scan (limit above the total row count, so the canonicalized
    // row multiset is tier-independent even with tied timestamps).
    "proc p1 execute file f1 as e1 "
    "return p1, f1, e1.start_ts order by e1.start_ts limit 1000",
};

/// Canonicalized result tables for every probe query (rows sorted, so
/// multiset identity compares with ==; ordered queries stay stable because
/// the sort is a no-op permutation within equal rows).
std::vector<ResultTable> RunProbes(AiqlEngine* engine) {
  std::vector<ResultTable> out;
  for (const char* query : kQueries) {
    auto result = engine->Execute(query);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
    ResultTable table =
        result.ok() ? std::move(result->table) : ResultTable{};
    table.SortRows();
    out.push_back(std::move(table));
  }
  return out;
}

class RetentionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoint::ClearAll();
    dir_ = std::string("/tmp/aiql_retention_test_") +
           std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
           std::to_string(getpid());
    RemoveDir(dir_);
  }
  void TearDown() override {
    Failpoint::ClearAll();
    RemoveDir(dir_);
  }

  static void RemoveDir(const std::string& dir) {
    std::remove((dir + "/DATA").c_str());
    for (uint64_t seq = 0; seq <= 256; ++seq) {
      std::remove((dir + "/FOOTER." + std::to_string(seq)).c_str());
    }
    std::remove((dir + "/FOOTER.tmp").c_str());
    rmdir(dir.c_str());
  }

  /// Sealed tiered store over BuildRecords() in this test's directory.
  std::unique_ptr<TieredStore> BuildTiered(RetentionOptions retention) {
    retention.dir = dir_;
    auto store = TieredStore::Create(SmallPartitions(), retention);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    if (!store.ok()) return nullptr;
    EXPECT_TRUE((*store)->AppendBatch(BuildRecords()).ok());
    EXPECT_TRUE((*store)->Seal().ok());
    return std::move(*store);
  }

  /// All-hot baseline: the same records in a plain sealed database.
  std::vector<ResultTable> Baseline() {
    auto db = IngestRecords(BuildRecords(), SmallPartitions());
    EXPECT_TRUE(db.ok());
    EXPECT_TRUE(db->Seal().ok());
    AiqlEngine engine(&*db);
    return RunProbes(&engine);
  }

  std::string dir_;
};

TEST_F(RetentionTest, FullDemotionKeepsResultsIdentical) {
  std::vector<ResultTable> baseline = Baseline();

  RetentionOptions retention;
  retention.hot_buckets = -1;  // everything sealed is past the hot window
  retention.compact_min_partitions = 0;  // isolate demotion from merging
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);

  AiqlEngine engine(store.get());
  EXPECT_EQ(RunProbes(&engine), baseline);  // all-hot tiered

  ASSERT_TRUE(store->CompactOnce().ok());
  RetentionStats stats = store->stats();
  EXPECT_EQ(stats.hot_partitions, 0u);
  EXPECT_GT(stats.cold_partitions, 0u);
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GT(stats.commits, 0u);

  EXPECT_EQ(RunProbes(&engine), baseline);  // all-cold tiered
  // Second run hits the (unlimited) cache — no extra disk decodes.
  uint64_t resident = store->stats().cache.resident;
  EXPECT_EQ(RunProbes(&engine), baseline);
  EXPECT_EQ(store->stats().cache.resident, resident);
}

TEST_F(RetentionTest, MergeCompactionKeepsResultsIdentical) {
  std::vector<ResultTable> baseline = Baseline();

  RetentionOptions retention;
  retention.hot_buckets = 1000;  // no demotion: isolate merging
  retention.compact_min_partitions = 2;
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);
  uint64_t before = store->stats().hot_partitions;

  ASSERT_TRUE(store->CompactOnce().ok());
  RetentionStats stats = store->stats();
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GT(stats.merged_partitions, stats.merges);  // >= 2 sources each
  EXPECT_LT(stats.hot_partitions, before);
  EXPECT_EQ(stats.cold_partitions, 0u);

  AiqlEngine engine(store.get());
  EXPECT_EQ(RunProbes(&engine), baseline);
}

TEST_F(RetentionTest, TinyBudgetMatchesUnlimitedWithEvictions) {
  std::vector<ResultTable> baseline = Baseline();

  RetentionOptions retention;
  retention.hot_buckets = -1;
  retention.compact_min_partitions = 0;
  retention.memory_budget_bytes = 1;  // at most one resident cold partition
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->CompactOnce().ok());
  ASSERT_GT(store->stats().cold_partitions, 0u);

  AiqlEngine engine(store.get());
  EXPECT_EQ(RunProbes(&engine), baseline);
  RetentionStats stats = store->stats();
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_LE(stats.cache.resident, 1u);

  // Re-running must re-materialize (reopens), still byte-identical.
  EXPECT_EQ(RunProbes(&engine), baseline);
  EXPECT_GT(store->stats().reopens, 0u);
}

TEST_F(RetentionTest, ConcurrentQueriesDuringCompactionStayIdentical) {
  std::vector<ResultTable> baseline = Baseline();

  RetentionOptions retention;
  retention.hot_buckets = 2;
  retention.compact_min_partitions = 2;
  retention.memory_budget_bytes = 64 * 1024;  // small: eviction under load
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);

  // Queries race merge + demotion passes; every view must see each
  // partition in exactly one tier, so every result is byte-identical.
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      AiqlEngine engine(store.get());
      while (!stop.load(std::memory_order_relaxed)) {
        if (RunProbes(&engine) != baseline) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int pass = 0; pass < 8; ++pass) {
    ASSERT_TRUE(store->CompactOnce().ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);

  RetentionStats stats = store->stats();
  EXPECT_GT(stats.demotions, 0u);
  EXPECT_GT(stats.compactor_passes, 0u);
  AiqlEngine engine(store.get());
  EXPECT_EQ(RunProbes(&engine), baseline);
}

TEST_F(RetentionTest, BackgroundCompactorThreadDemotes) {
  RetentionOptions retention;
  retention.hot_buckets = -1;
  retention.compact_min_partitions = 0;
  retention.compact_interval = 1 * kMillisecond;
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);

  store->StartCompactor();
  AiqlEngine engine(store.get());
  std::vector<ResultTable> baseline = Baseline();
  for (int i = 0; i < 200; ++i) {
    if (store->stats().hot_partitions == 0) break;
    EXPECT_EQ(RunProbes(&engine), baseline);  // query while it demotes
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  store->StopCompactor();
  EXPECT_EQ(store->stats().hot_partitions, 0u);
  EXPECT_EQ(RunProbes(&engine), baseline);
}

TEST_F(RetentionTest, RecoveryServesDemotedPartitions) {
  std::vector<ResultTable> baseline = Baseline();
  DatabaseStats want_stats;

  {
    RetentionOptions retention;
    retention.hot_buckets = -1;
    retention.compact_min_partitions = 0;
    auto store = BuildTiered(retention);
    ASSERT_NE(store, nullptr);
    want_stats = store->StatsSnapshot();
    ASSERT_TRUE(store->CompactOnce().ok());
    ASSERT_EQ(store->stats().hot_partitions, 0u);
  }  // destroy the store; everything lives in the retention directory

  RetentionOptions retention;
  retention.dir = dir_;
  auto reopened = TieredStore::Create(SmallPartitions(), retention);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  RetentionStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.hot_partitions, 0u);
  EXPECT_GT(stats.cold_partitions, 0u);

  DatabaseStats recovered_stats = (*reopened)->StatsSnapshot();
  EXPECT_EQ(recovered_stats.total_events, want_stats.total_events);
  EXPECT_EQ(recovered_stats.raw_events, want_stats.raw_events);
  EXPECT_EQ(recovered_stats.min_ts, want_stats.min_ts);
  EXPECT_EQ(recovered_stats.max_ts, want_stats.max_ts);

  AiqlEngine engine(reopened->get());
  EXPECT_EQ(RunProbes(&engine), baseline);
}

TEST_F(RetentionTest, AbortedMergeLeavesSourcesUntouched) {
  std::vector<ResultTable> baseline = Baseline();

  RetentionOptions retention;
  retention.hot_buckets = 1000;
  retention.compact_min_partitions = 2;
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);
  uint64_t before = store->stats().hot_partitions;

  ASSERT_TRUE(
      Failpoint::Configure("retention.compact.commit=error(Unavailable)")
          .ok());
  Status pass = store->CompactOnce();
  EXPECT_EQ(pass.code(), StatusCode::kUnavailable);
  Failpoint::ClearAll();

  RetentionStats stats = store->stats();
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.hot_partitions, before);
  AiqlEngine engine(store.get());
  EXPECT_EQ(RunProbes(&engine), baseline);

  // The next (clean) pass completes the merge.
  ASSERT_TRUE(store->CompactOnce().ok());
  EXPECT_GT(store->stats().merges, 0u);
  EXPECT_EQ(RunProbes(&engine), baseline);
}

TEST_F(RetentionTest, FailedDemotionWriteKeepsPartitionsHot) {
  std::vector<ResultTable> baseline = Baseline();

  RetentionOptions retention;
  retention.hot_buckets = -1;
  retention.compact_min_partitions = 0;
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);
  uint64_t before = store->stats().hot_partitions;

  ASSERT_TRUE(
      Failpoint::Configure("retention.demote.write=error(IOError)").ok());
  Status pass = store->CompactOnce();
  EXPECT_EQ(pass.code(), StatusCode::kIOError);
  Failpoint::ClearAll();

  // Nothing was extracted: the failure happened before the durable commit.
  RetentionStats stats = store->stats();
  EXPECT_EQ(stats.demotions, 0u);
  EXPECT_EQ(stats.hot_partitions, before);
  EXPECT_EQ(stats.cold_partitions, 0u);
  AiqlEngine engine(store.get());
  EXPECT_EQ(RunProbes(&engine), baseline);

  ASSERT_TRUE(store->CompactOnce().ok());
  EXPECT_EQ(store->stats().hot_partitions, 0u);
  EXPECT_EQ(RunProbes(&engine), baseline);
}

TEST_F(RetentionTest, FailedReopenSurfacesAndRecovers) {
  RetentionOptions retention;
  retention.hot_buckets = -1;
  retention.compact_min_partitions = 0;
  retention.memory_budget_bytes = 1;  // keep nothing resident between runs
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->CompactOnce().ok());

  AiqlEngine engine(store.get());
  ASSERT_TRUE(
      Failpoint::Configure("retention.reopen=error(IOError)").ok());
  auto result = engine.Execute(kQueries[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  Failpoint::ClearAll();

  // Transient fault: the next query materializes cleanly.
  EXPECT_EQ(RunProbes(&engine), Baseline());
}

TEST_F(RetentionTest, QueryByteBudgetGovernsColdMaterialization) {
  RetentionOptions retention;
  retention.hot_buckets = -1;
  retention.compact_min_partitions = 0;
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->CompactOnce().ok());

  AiqlEngine engine(store.get());
  QueryLimits limits;
  limits.max_bytes = 64;  // far below one partition's footprint
  QueryContext ctx(limits);
  auto result = engine.Execute(kQueries[0], &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  // An ungoverned query on the same store still runs to completion.
  auto clean = engine.Execute(kQueries[0]);
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
}

TEST_F(RetentionTest, RetentionHorizonTombstonesAndAgesEntities) {
  RetentionOptions retention;
  retention.hot_buckets = -1;
  retention.compact_min_partitions = 0;
  retention.retention_buckets = 2;  // keep the newest ~2 buckets only
  auto store = BuildTiered(retention);
  ASSERT_NE(store, nullptr);

  // Pass 1 demotes everything; pass 2 tombstones the expired buckets.
  ASSERT_TRUE(store->CompactOnce().ok());
  ASSERT_TRUE(store->CompactOnce().ok());
  RetentionStats stats = store->stats();
  EXPECT_GT(stats.tombstones, 0u);
  EXPECT_GT(stats.entities_aged, 0u);

  // Only partitions within the horizon remain visible — but some must.
  AiqlEngine engine(store.get());
  auto result = engine.Execute(kQueries[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(stats.cold_partitions + stats.hot_partitions, 0u);

  // Expired data stays gone across recovery (the committed footer already
  // dropped it).
  uint64_t cold_before = stats.cold_partitions;
  store.reset();
  RetentionOptions reopen_opts;
  reopen_opts.dir = dir_;
  auto reopened = TieredStore::Create(SmallPartitions(), reopen_opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().cold_partitions, cold_before);
}

}  // namespace
}  // namespace aiql
