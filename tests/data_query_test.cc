// Unit tests for pattern compilation: entity sets, predicate compilation,
// candidate resolution, and cross-occurrence constraint merging.

#include "engine/data_query.h"

#include <gtest/gtest.h>

#include "query/analyzer.h"
#include "query/parser.h"
#include "storage/database.h"

namespace aiql {
namespace {

TEST(EntitySetTest, AddContainsIntersect) {
  EntitySet a(200), b(200);
  a.Add(3);
  a.Add(64);
  a.Add(199);
  EXPECT_TRUE(a.Contains(3));
  EXPECT_TRUE(a.Contains(64));
  EXPECT_FALSE(a.Contains(4));
  EXPECT_EQ(a.Count(), 3u);

  b.Add(64);
  b.Add(100);
  a.IntersectWith(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Contains(64));
  EXPECT_FALSE(a.Contains(3));
}

TEST(EntitySetTest, ToVectorAscending) {
  EntitySet set(300);
  set.Add(255);
  set.Add(0);
  set.Add(63);
  set.Add(64);
  EXPECT_EQ(set.ToVector(), (std::vector<EntityId>{0, 63, 64, 255}));
}

TEST(EntitySetTest, IntersectDifferentUniverses) {
  EntitySet small(10), big(1000);
  small.Add(5);
  big.Add(5);
  big.Add(900);
  big.IntersectWith(small);
  EXPECT_TRUE(big.Contains(5));
  EXPECT_FALSE(big.Contains(900));
}

class CompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<AuditDatabase>();
    Timestamp t = *MakeTimestamp(2018, 5, 10);
    auto add = [&](AgentId agent, uint32_t pid, const char* exe,
                   const char* user, const char* path) {
      EventRecord record;
      record.agent_id = agent;
      record.op = OpType::kWrite;
      record.start_ts = t;
      record.end_ts = t + kSecond;
      record.subject = ProcessRef{agent, pid, exe, user};
      record.object = FileRef{agent, path};
      ASSERT_TRUE(db_->Append(record).ok());
      t += kMinute;
    };
    add(1, 10, "C:\\apps\\alpha.exe", "alice", "/data/a.txt");
    add(1, 11, "C:\\apps\\beta.exe", "bob", "/data/b.txt");
    add(2, 12, "C:\\apps\\alpha.exe", "alice", "/data/c.txt");
    add(2, 13, "C:\\tools\\gamma.exe", "carol", "/logs/d.log");
    db_->Seal();
  }

  std::vector<CompiledPattern> Compile(const std::string& text) {
    auto parsed = ParseAiql(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    parsed_ = std::move(parsed).value();
    auto analyzed = AnalyzeMultievent(*parsed_.multievent, parsed_.kind);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    analyzed_ = std::move(analyzed).value();
    auto compiled = CompilePatterns(analyzed_, db_->entities());
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return std::move(compiled).value();
  }

  std::unique_ptr<AuditDatabase> db_;
  ParsedQuery parsed_;
  AnalyzedQuery analyzed_;
};

TEST_F(CompileTest, ResolvesCandidatesFromIndex) {
  auto patterns = Compile("proc p[\"%alpha%\"] write file f return p");
  ASSERT_EQ(patterns.size(), 1u);
  ASSERT_TRUE(patterns[0].subject.candidates.has_value());
  EXPECT_EQ(patterns[0].subject.candidates->Count(), 2u);  // two alpha procs
  EXPECT_FALSE(patterns[0].object.candidates.has_value());  // unconstrained
  EXPECT_EQ(patterns[0].subject.matched_exe_ids.size(), 1u);
}

TEST_F(CompileTest, CombinesPredicatesConjunctively) {
  auto patterns = Compile(
      "proc p[\"%alpha%\", agentid = 2] write file f return p");
  ASSERT_TRUE(patterns[0].subject.candidates.has_value());
  EXPECT_EQ(patterns[0].subject.candidates->Count(), 1u);  // alpha on agent 2
}

TEST_F(CompileTest, NumericAndInPredicates) {
  auto patterns = Compile(
      "proc p[pid in (10, 13)] write file f return p");
  ASSERT_TRUE(patterns[0].subject.candidates.has_value());
  EXPECT_EQ(patterns[0].subject.candidates->Count(), 2u);

  auto ge = Compile("proc p[pid >= 12] write file f return p");
  EXPECT_EQ(ge[0].subject.candidates->Count(), 2u);  // pids 12, 13
}

TEST_F(CompileTest, NegationPredicate) {
  auto patterns = Compile(
      "proc p[exe_name != \"C:\\\\apps\\\\alpha.exe\"] write file f "
      "return p");
  ASSERT_TRUE(patterns[0].subject.candidates.has_value());
  EXPECT_EQ(patterns[0].subject.candidates->Count(), 2u);  // beta + gamma
}

TEST_F(CompileTest, SharedVariableConstraintsMergeAcrossOccurrences) {
  auto patterns = Compile(
      "proc p[\"%alpha%\"] write file f1 as e1 "
      "proc p[agentid = 1] write file f2 as e2 "
      "return p");
  // Both occurrences of p carry the merged constraints: alpha AND agent 1.
  ASSERT_EQ(patterns.size(), 2u);
  for (const auto& pattern : patterns) {
    ASSERT_TRUE(pattern.subject.candidates.has_value());
    EXPECT_EQ(pattern.subject.candidates->Count(), 1u);
  }
}

TEST_F(CompileTest, FileObjectCandidates) {
  auto patterns = Compile("proc p write file f[\"/data/%\"] return f");
  ASSERT_TRUE(patterns[0].object.candidates.has_value());
  EXPECT_EQ(patterns[0].object.candidates->Count(), 3u);
}

TEST_F(CompileTest, StringPredicatesCompileToDictionaryIdSets) {
  auto patterns = Compile("proc p[\"%alpha%\"] write file f return p");
  const auto& preds = patterns[0].subject.predicates;
  ASSERT_EQ(preds.size(), 1u);
  ASSERT_TRUE(preds[0].dict_attr.has_value());
  EXPECT_EQ(*preds[0].dict_attr, DictAttr::kExeName);
  ASSERT_NE(preds[0].matched_ids, nullptr);
  // One distinct exe string matches %alpha%; the set is current.
  EXPECT_EQ(preds[0].matched_ids->bits.Count(), 1u);
  EXPECT_EQ(preds[0].matched_ids->version,
            db_->entities().exe_names().version());
}

TEST_F(CompileTest, NegatedPredicateStoresPositiveSenseIdSet) {
  auto patterns = Compile(
      "proc p[exe_name != \"C:\\\\apps\\\\alpha.exe\"] write file f "
      "return p");
  const auto& preds = patterns[0].subject.predicates;
  ASSERT_EQ(preds.size(), 1u);
  ASSERT_NE(preds[0].matched_ids, nullptr);
  // matched_ids holds what the matcher MATCHES (alpha); kNe inverts at eval.
  EXPECT_EQ(preds[0].matched_ids->bits.Count(), 1u);
  EXPECT_EQ(patterns[0].subject.candidates->Count(), 2u);  // beta + gamma
}

TEST_F(CompileTest, NonPostingsAttrIdSetsStillEvaluate) {
  // `user` has a dictionary but no postings index: the predicate compiles
  // to an id set and per-entity evaluation uses it, even though candidates
  // cannot be seeded from an index expansion.
  auto patterns = Compile("proc p[user = \"alice\"] write file f return p");
  const EntityFilter& filter = patterns[0].subject;
  ASSERT_EQ(filter.predicates.size(), 1u);
  ASSERT_NE(filter.predicates[0].matched_ids, nullptr);
  EXPECT_EQ(*filter.predicates[0].dict_attr, DictAttr::kUser);
  const EntityStore& store = db_->entities();
  int matched = 0;
  for (EntityId id = 0; id < store.processes().size(); ++id) {
    if (EntityMatchesPredicates(store, EntityType::kProcess, id,
                                filter.predicates)) {
      ++matched;
    }
  }
  EXPECT_EQ(matched, 2);  // the two alice-owned processes
}

TEST_F(CompileTest, IntInOperandsSortedAndDeduplicated) {
  auto patterns = Compile(
      "proc p[pid in (13, 10, 13, 10)] write file f return p");
  const auto& preds = patterns[0].subject.predicates;
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].kind, AttrKind::kInt);
  // Compile sorts + dedups so evaluation can binary-search.
  EXPECT_EQ(preds[0].ints, (std::vector<int64_t>{10, 13}));
  ASSERT_TRUE(patterns[0].subject.candidates.has_value());
  EXPECT_EQ(patterns[0].subject.candidates->Count(), 2u);
}

TEST_F(CompileTest, EntityMatchesPredicatesAgreesWithCandidates) {
  auto patterns = Compile("proc p[\"%alpha%\"] write file f return p");
  const EntityFilter& filter = patterns[0].subject;
  const EntityStore& store = db_->entities();
  for (EntityId id = 0; id < store.processes().size(); ++id) {
    EXPECT_EQ(filter.candidates->Contains(id),
              EntityMatchesPredicates(store, EntityType::kProcess, id,
                                      filter.predicates))
        << "entity " << id;
  }
}

}  // namespace
}  // namespace aiql
