// Property tests for the anomaly engine's window math: seed-parameterized
// random event streams checked against a brute-force reference evaluation.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "engine/aiql_engine.h"
#include "storage/database.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

class AnomalyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnomalyPropertyTest, SumsMatchBruteForceWindows) {
  Rng rng(GetParam());
  StorageOptions options;
  options.dedup_window = 0;
  AuditDatabase db(options);

  // Random events from 3 processes over one hour.
  struct Sample {
    Timestamp ts;
    int proc;
    uint64_t amount;
  };
  std::vector<Sample> samples;
  for (int i = 0; i < 300; ++i) {
    Sample sample;
    sample.ts = T0() + static_cast<Duration>(rng.Uniform(3600)) * kSecond;
    sample.proc = static_cast<int>(rng.Uniform(3));
    sample.amount = 1 + rng.Uniform(1000);
    samples.push_back(sample);

    EventRecord record;
    record.agent_id = 1;
    record.op = OpType::kWrite;
    record.start_ts = sample.ts;
    record.end_ts = sample.ts + kMillisecond;
    record.amount = sample.amount;
    record.subject = ProcessRef{1, static_cast<uint32_t>(100 + sample.proc),
                                "proc" + std::to_string(sample.proc), "u"};
    record.object = NetworkRef{1, "10.0.0.1", "9.9.9.9", 1000, 443, "tcp"};
    ASSERT_TRUE(db.Append(record).ok());
  }
  db.Seal();

  const Duration window = 2 * kMinute;
  const Duration step = 30 * kSecond;

  AiqlEngine engine(&db);
  auto result = engine.Execute(R"(
    (at "05/10/2018")
    window = 2 min, step = 30 sec
    proc p write ip i as evt
    return p, sum(evt.amount) as total, count(*) as n
    group by p
    having n > 0
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Brute force: (window_start, proc) -> (sum, count).
  std::map<std::pair<int64_t, std::string>, std::pair<uint64_t, uint64_t>>
      expected;
  for (const Sample& sample : samples) {
    for (int64_t j = 0;; ++j) {
      Timestamp wstart = T0() + j * step;
      if (wstart > sample.ts) break;
      if (sample.ts < wstart + window) {
        auto& slot = expected[{wstart, "proc" + std::to_string(sample.proc)}];
        slot.first += sample.amount;
        slot.second += 1;
      }
    }
  }

  ASSERT_EQ(result->table.num_rows(), expected.size());
  for (const auto& row : result->table.rows) {
    int64_t wstart = std::get<int64_t>(row[0]);
    std::string proc = ValueToString(row[1]);
    double total = std::get<double>(row[2]);
    double count = std::get<double>(row[3]);
    auto it = expected.find({wstart, proc});
    ASSERT_NE(it, expected.end())
        << "unexpected window " << wstart << " for " << proc;
    EXPECT_DOUBLE_EQ(total, static_cast<double>(it->second.first));
    EXPECT_DOUBLE_EQ(count, static_cast<double>(it->second.second));
  }
}

TEST_P(AnomalyPropertyTest, HistoryReferencesEarlierWindowExactly) {
  Rng rng(GetParam() * 7919);
  StorageOptions options;
  options.dedup_window = 0;
  AuditDatabase db(options);
  // One event per minute with known amounts.
  std::vector<uint64_t> amounts;
  for (int i = 0; i < 30; ++i) {
    uint64_t amount = 10 + rng.Uniform(90);
    amounts.push_back(amount);
    EventRecord record;
    record.agent_id = 1;
    record.op = OpType::kWrite;
    record.start_ts = T0() + i * kMinute;
    record.end_ts = record.start_ts + kSecond;
    record.amount = amount;
    record.subject = ProcessRef{1, 100, "sender", "u"};
    record.object = NetworkRef{1, "10.0.0.1", "9.9.9.9", 1000, 443, "tcp"};
    ASSERT_TRUE(db.Append(record).ok());
  }
  db.Seal();

  // Tumbling 1-minute windows: having sum > sum[1] selects exactly the
  // windows whose amount exceeds the previous minute's.
  AiqlEngine engine(&db);
  auto result = engine.Execute(R"(
    (at "05/10/2018")
    window = 1 min, step = 1 min
    proc p write ip i as evt
    return p, sum(evt.amount) as s
    group by p
    having s > s[1]
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  size_t expected = 0;
  for (size_t i = 1; i < amounts.size(); ++i) {
    if (amounts[i] > amounts[i - 1]) ++expected;
  }
  EXPECT_EQ(result->table.num_rows(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnomalyPropertyTest,
                         ::testing::Values(1, 7, 42, 1337));

}  // namespace
}  // namespace aiql
