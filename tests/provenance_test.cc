// Tests for iterative causal provenance tracking: information-flow
// direction, time-monotonic pruning, hop/fanout/node budgets, reverse-index
// agreement with brute force, and end-to-end recovery of the simulator's
// planted exfiltration chain from a live database AND from a lazily opened
// v2 snapshot.

#include "engine/provenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/aiql_engine.h"
#include "graph/cypher_gen.h"
#include "graph/graph_store.h"
#include "simulator/scenario.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, OpType op, Timestamp t, Duration len,
                ProcessRef subject, ObjectRef object, uint64_t amount = 0) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = t;
  record.end_ts = t + len;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

ProcessRef Proc(uint32_t pid, const std::string& exe) {
  return ProcessRef{1, pid, exe, "root"};
}

/// Recovered (type, display name) set of a result.
std::set<std::pair<EntityType, std::string>> NodeNames(
    const ProvenanceResult& result, const EntityStore& entities) {
  std::set<std::pair<EntityType, std::string>> out;
  for (const ProvenanceNode& node : result.nodes) {
    out.emplace(node.type, entities.EntityName(node.type, node.id));
  }
  return out;
}

// --- micro world: a -> b -> c chain with a late decoy ------------------------

class ProvenanceChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // writer writes f1 (t=0); reader reads f1 (t=100) and writes f2
    // (t=200); decoy writes f1 at t=150 — after the read, so a backward
    // track from f2 must not include it.
    db_ = std::make_unique<AuditDatabase>();
    ASSERT_TRUE(
        db_->Append(Rec(1, OpType::kWrite, T0(), kSecond,
                        Proc(100, "writer"), FileRef{1, "/data/f1"}))
            .ok());
    ASSERT_TRUE(db_->Append(Rec(1, OpType::kRead, T0() + 100 * kSecond,
                                kSecond, Proc(101, "reader"),
                                FileRef{1, "/data/f1"}))
                    .ok());
    ASSERT_TRUE(db_->Append(Rec(1, OpType::kWrite, T0() + 150 * kSecond,
                                kSecond, Proc(102, "decoy"),
                                FileRef{1, "/data/f1"}))
                    .ok());
    ASSERT_TRUE(db_->Append(Rec(1, OpType::kWrite, T0() + 200 * kSecond,
                                kSecond, Proc(101, "reader"),
                                FileRef{1, "/data/f2"}))
                    .ok());
    ASSERT_TRUE(db_->Seal().ok());
    view_ = db_->OpenReadView();
    f2_ = Find(EntityType::kFile, "/data/f2");
    f1_ = Find(EntityType::kFile, "/data/f1");
  }

  EntityId Find(EntityType type, const std::string& name) {
    const EntityStore& es = db_->entities();
    size_t n = es.NumEntities(type);
    for (EntityId id = 0; id < n; ++id) {
      if (es.EntityName(type, id) == name) return id;
    }
    ADD_FAILURE() << "entity not found: " << name;
    return kInvalidEntityId;
  }

  std::unique_ptr<AuditDatabase> db_;
  ReadView view_;
  EntityId f1_ = 0, f2_ = 0;
};

TEST_F(ProvenanceChainTest, BackwardFollowsFlowAndPrunesMonotonically) {
  ProvenanceOptions options;
  auto result = TrackProvenance(view_, {{EntityType::kFile, f2_}}, INT64_MAX,
                                options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto names = NodeNames(*result, db_->entities());
  std::set<std::pair<EntityType, std::string>> expected = {
      {EntityType::kFile, "/data/f2"},
      {EntityType::kProcess, "reader"},
      {EntityType::kFile, "/data/f1"},
      {EntityType::kProcess, "writer"},
  };
  // The decoy wrote f1 AFTER reader consumed it: time-monotonic pruning
  // must exclude it even though the event precedes the anchor.
  EXPECT_EQ(names, expected);
  EXPECT_EQ(result->edges.size(), 3u);
  EXPECT_FALSE(result->stats.truncated);
  EXPECT_EQ(result->num_roots, 1u);
  // Depths: f2=0, reader=1, f1=2, writer=3.
  for (const ProvenanceNode& node : result->nodes) {
    std::string name = db_->entities().EntityName(node.type, node.id);
    int expected_depth = name == "/data/f2"  ? 0
                         : name == "reader"  ? 1
                         : name == "/data/f1" ? 2
                                              : 3;
    EXPECT_EQ(node.depth, expected_depth) << name;
  }
}

TEST_F(ProvenanceChainTest, ForwardTrackingMirrorsBackward) {
  // Forward from f1 anchored at time zero: reader consumed it, then wrote
  // f2; decoy's write into f1 is an in-flow and must not appear.
  ProvenanceOptions options;
  options.backward = false;
  auto result = TrackProvenance(view_, {{EntityType::kFile, f1_}}, INT64_MIN,
                                options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto names = NodeNames(*result, db_->entities());
  std::set<std::pair<EntityType, std::string>> expected = {
      {EntityType::kFile, "/data/f1"},
      {EntityType::kProcess, "reader"},
      {EntityType::kFile, "/data/f2"},
  };
  EXPECT_EQ(names, expected);
  EXPECT_EQ(result->edges.size(), 2u);
}

TEST_F(ProvenanceChainTest, AnchorBoundsTheSearch) {
  // Anchor before reader's write into f2: nothing flows into f2 yet.
  ProvenanceOptions options;
  auto result = TrackProvenance(view_, {{EntityType::kFile, f2_}},
                                T0() + 150 * kSecond, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes.size(), 1u);  // just the root
  EXPECT_TRUE(result->edges.empty());
}

TEST_F(ProvenanceChainTest, DepthBudgetTruncates) {
  ProvenanceOptions options;
  options.max_depth = 1;
  auto result = TrackProvenance(view_, {{EntityType::kFile, f2_}}, INT64_MAX,
                                options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes.size(), 2u);  // f2 + reader
  EXPECT_TRUE(result->stats.truncated);
  EXPECT_EQ(result->stats.hops, 1);
}

TEST_F(ProvenanceChainTest, NodeBudgetTruncates) {
  ProvenanceOptions options;
  options.max_nodes = 2;
  auto result = TrackProvenance(view_, {{EntityType::kFile, f2_}}, INT64_MAX,
                                options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes.size(), 2u);
  EXPECT_TRUE(result->stats.truncated);
}

TEST_F(ProvenanceChainTest, OpAndEntityFiltersRestrictHops) {
  // Excluding reads cuts the chain at reader (f1 unreachable).
  ProvenanceOptions options;
  options.op_mask = static_cast<OpMask>(kAllOps & ~OpBit(OpType::kRead));
  auto result = TrackProvenance(view_, {{EntityType::kFile, f2_}}, INT64_MAX,
                                options);
  ASSERT_TRUE(result.ok());
  auto names = NodeNames(*result, db_->entities());
  EXPECT_EQ(names.count({EntityType::kFile, "/data/f1"}), 0u);
  EXPECT_EQ(names.count({EntityType::kProcess, "reader"}), 1u);

  // Excluding file hops stops at the first process.
  ProvenanceOptions no_files;
  no_files.follow_files = false;
  auto restricted = TrackProvenance(view_, {{EntityType::kFile, f2_}},
                                    INT64_MAX, no_files);
  ASSERT_TRUE(restricted.ok());
  auto restricted_names = NodeNames(*restricted, db_->entities());
  std::set<std::pair<EntityType, std::string>> expected = {
      {EntityType::kFile, "/data/f2"},
      {EntityType::kProcess, "reader"},
  };
  EXPECT_EQ(restricted_names, expected);
}

TEST_F(ProvenanceChainTest, EmptyRootsRejected) {
  EXPECT_FALSE(TrackProvenance(view_, {}, INT64_MAX, {}).ok());
}

TEST(ProvenanceFanoutTest, FanoutBudgetKeepsClosestInTime) {
  // 10 writers feed a hot file; fanout 3 must keep the 3 latest.
  AuditDatabase db;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0() + i * kMinute, kSecond,
                              Proc(200 + i, "w" + std::to_string(i)),
                              FileRef{1, "/hot"}))
                    .ok());
  }
  ASSERT_TRUE(db.Seal().ok());
  ReadView view = db.OpenReadView();
  EntityId hot = 0;  // only file interned
  ProvenanceOptions options;
  options.max_fanout = 3;
  auto result =
      TrackProvenance(view, {{EntityType::kFile, hot}}, INT64_MAX, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.truncated);
  auto names = NodeNames(*result, db.entities());
  EXPECT_EQ(result->edges.size(), 3u);
  EXPECT_EQ(names.count({EntityType::kProcess, "w9"}), 1u);
  EXPECT_EQ(names.count({EntityType::kProcess, "w8"}), 1u);
  EXPECT_EQ(names.count({EntityType::kProcess, "w7"}), 1u);
  EXPECT_EQ(names.count({EntityType::kProcess, "w0"}), 0u);
}

TEST(ProvenanceHopWindowTest, HopWindowBoundsTemporalGap) {
  // writer wrote the file an hour before the reader used it; a 5-minute
  // hop window must not bridge that gap, a 2-hour one must.
  AuditDatabase db;
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0(), kSecond,
                            Proc(300, "old-writer"), FileRef{1, "/f"}))
                  .ok());
  ASSERT_TRUE(db.Append(Rec(1, OpType::kRead, T0() + kHour, kSecond,
                            Proc(301, "reader"), FileRef{1, "/f"}))
                  .ok());
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0() + kHour + kMinute,
                            kSecond, Proc(301, "reader"),
                            FileRef{1, "/out"}))
                  .ok());
  ASSERT_TRUE(db.Seal().ok());
  ReadView view = db.OpenReadView();
  const EntityStore& es = db.entities();
  EntityId out_file = kInvalidEntityId;
  for (EntityId id = 0; id < es.NumEntities(EntityType::kFile); ++id) {
    if (es.EntityName(EntityType::kFile, id) == "/out") out_file = id;
  }
  ASSERT_NE(out_file, kInvalidEntityId);

  ProvenanceOptions narrow;
  narrow.hop_window = 5 * kMinute;
  auto clipped = TrackProvenance(view, {{EntityType::kFile, out_file}},
                                 INT64_MAX, narrow);
  ASSERT_TRUE(clipped.ok());
  auto clipped_names = NodeNames(*clipped, es);
  EXPECT_EQ(clipped_names.count({EntityType::kProcess, "old-writer"}), 0u);
  EXPECT_EQ(clipped_names.count({EntityType::kFile, "/f"}), 1u);

  ProvenanceOptions wide;
  wide.hop_window = 2 * kHour;
  auto full = TrackProvenance(view, {{EntityType::kFile, out_file}},
                              INT64_MAX, wide);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(NodeNames(*full, es).count({EntityType::kProcess, "old-writer"}),
            1u);
}

TEST(ProvenanceWideningTest, ReReachedNodeWidensBoundAndReExpands) {
  // X is first reached through an old event (bound 10), then re-reached
  // through a much later path (X started Y shortly before Y wrote the
  // POI). The looser bound admits X's own in-flows that the first visit
  // could not see — the tracker must widen and re-expand, not silently
  // drop them, and must not duplicate edges it already recorded.
  AuditDatabase db;
  ProcessRef p = Proc(500, "p-proc");
  ProcessRef x = Proc(501, "x-proc");
  ProcessRef y = Proc(502, "y-proc");
  FileRef c{1, "/poi"};
  FileRef f{1, "/lib/payload"};
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kStart, T0() + 5 * kSecond, kSecond, p, x))
          .ok());
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0() + 10 * kSecond, kSecond, x, c))
          .ok());
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kExecute, T0() + 80 * kSecond, kSecond, x, f))
          .ok());
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kStart, T0() + 92 * kSecond, kSecond, x, y))
          .ok());
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0() + 95 * kSecond, kSecond, y, c))
          .ok());
  ASSERT_TRUE(db.Seal().ok());
  ReadView view = db.OpenReadView();
  EntityId poi = kInvalidEntityId;
  const EntityStore& es = db.entities();
  for (EntityId id = 0; id < es.NumEntities(EntityType::kFile); ++id) {
    if (es.EntityName(EntityType::kFile, id) == "/poi") poi = id;
  }
  ASSERT_NE(poi, kInvalidEntityId);

  auto result =
      TrackProvenance(view, {{EntityType::kFile, poi}}, INT64_MAX, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto names = NodeNames(*result, es);
  std::set<std::pair<EntityType, std::string>> expected = {
      {EntityType::kFile, "/poi"},
      {EntityType::kProcess, "x-proc"},
      {EntityType::kProcess, "y-proc"},
      {EntityType::kProcess, "p-proc"},
      {EntityType::kFile, "/lib/payload"},
  };
  EXPECT_EQ(names, expected);
  // 2 writes into the POI, p->x start, x->y start, payload->x execute —
  // and the p->x start, re-discovered during X's re-expansion, only once.
  EXPECT_EQ(result->edges.size(), 5u);
  EXPECT_FALSE(result->stats.truncated);
  // Depth reflects first reach; the widened bound reflects the later path.
  for (const ProvenanceNode& node : result->nodes) {
    if (es.EntityName(node.type, node.id) == "x-proc") {
      EXPECT_EQ(node.depth, 1);
      EXPECT_EQ(node.bound, T0() + 92 * kSecond);
    }
  }
}

// --- reverse index vs brute force -------------------------------------------

TEST(ReverseIndexTest, PostingsAgreeWithBruteForce) {
  DemoScenarioData data = GenerateDemoScenario({});
  auto db = IngestRecords(data.records, StorageOptions{});
  ASSERT_TRUE(db.ok());
  size_t partitions_checked = 0;
  for (const auto& [key, partition] : db->partitions()) {
    (void)key;
    const std::vector<Event>& events = partition->events();
    // Brute-force per-entity lists.
    std::map<uint64_t, std::vector<uint32_t>> by_subject, by_object;
    for (uint32_t i = 0; i < events.size(); ++i) {
      by_subject[events[i].subject].push_back(i);
      by_object[EventPartition::ObjectKey(events[i].object_type,
                                          events[i].object)]
          .push_back(i);
    }
    for (const auto& [subject, expected] : by_subject) {
      auto [first, last] =
          partition->SubjectPostings(static_cast<EntityId>(subject));
      ASSERT_NE(first, nullptr);
      EXPECT_EQ(std::vector<uint32_t>(first, last), expected);
    }
    for (const auto& [okey, expected] : by_object) {
      auto [first, last] = partition->ObjectPostings(
          static_cast<EntityType>(okey >> 32),
          static_cast<EntityId>(okey & 0xFFFFFFFF));
      ASSERT_NE(first, nullptr);
      EXPECT_EQ(std::vector<uint32_t>(first, last), expected);
    }
    // Missing keys return an empty span.
    auto [none_first, none_last] = partition->SubjectPostings(0xFFFFFF);
    EXPECT_EQ(none_first, nullptr);
    EXPECT_EQ(none_last, nullptr);
    ++partitions_checked;
  }
  EXPECT_GT(partitions_checked, 0u);
}

// --- end to end: the planted exfiltration chain ------------------------------

class ExfilScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.events_per_host_per_hour = 500;  // haystack, but a fast one
    data_ = new ExfilScenarioData(GenerateExfilScenario(options));
    auto db = IngestRecords(data_->records, StorageOptions{});
    ASSERT_TRUE(db.ok());
    db_ = new AuditDatabase(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete data_;
    db_ = nullptr;
    data_ = nullptr;
  }

  static ExfilScenarioData* data_;
  static AuditDatabase* db_;
};

ExfilScenarioData* ExfilScenarioTest::data_ = nullptr;
AuditDatabase* ExfilScenarioTest::db_ = nullptr;

TrackRequest ExfilRequest(const ExfilChainTruth& truth) {
  TrackRequest request;
  request.type = EntityType::kNetwork;
  request.name_like = truth.poi_like;
  request.anchor = truth.anchor;
  return request;
}

void VerifyChainRecovered(const ProvenanceResult& result,
                          const EntityStore& entities,
                          const ExfilChainTruth& truth) {
  std::set<std::pair<EntityType, std::string>> expected(truth.chain.begin(),
                                                        truth.chain.end());
  EXPECT_EQ(NodeNames(result, entities), expected);
  EXPECT_EQ(result.nodes.size(), truth.chain.size());
  EXPECT_EQ(result.edges.size(), truth.chain_events);
  EXPECT_FALSE(result.stats.truncated);
  EXPECT_EQ(result.stats.hops, truth.chain_depth + 1);  // +1 empty closing hop
  // Every edge's flow endpoints are nodes of the graph, and backward hops
  // are time-monotonic: each edge ends at or before its destination bound.
  for (const ProvenanceEdge& edge : result.edges) {
    ASSERT_LT(edge.from, result.nodes.size());
    ASSERT_LT(edge.to, result.nodes.size());
    EXPECT_LE(edge.event.end_ts, result.nodes[edge.to].bound);
  }
}

TEST_F(ExfilScenarioTest, BackwardTrackRecoversChainFromLiveDatabase) {
  AiqlEngine engine(db_);
  auto result = engine.Track(ExfilRequest(data_->truth));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  VerifyChainRecovered(*result, db_->entities(), data_->truth);
  EXPECT_EQ(result->stats.hop_latency_us.size(),
            static_cast<size_t>(result->stats.hops));
}

TEST_F(ExfilScenarioTest, DepthBudgetClipsChainAndNothingOutsideIt) {
  AiqlEngine engine(db_);
  TrackRequest request = ExfilRequest(data_->truth);
  request.options.max_depth = 2;
  auto result = engine.Track(request);
  ASSERT_TRUE(result.ok());
  // Within 2 hops: conn_out, sysupd, customer.db, stage-loader.
  std::set<std::pair<EntityType, std::string>> expected(
      data_->truth.chain.begin(), data_->truth.chain.begin() + 4);
  EXPECT_EQ(NodeNames(*result, db_->entities()), expected);
  EXPECT_TRUE(result->stats.truncated);
}

TEST_F(ExfilScenarioTest, BackwardTrackRecoversChainFromV2Snapshot) {
  std::string path = "/tmp/aiql_provenance_test.snap";
  ASSERT_TRUE(SaveSnapshot(*db_, path).ok());
  auto store = SnapshotStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  AiqlEngine engine(store->get());
  auto result = engine.Track(ExfilRequest(data_->truth));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  VerifyChainRecovered(*result, (*store)->entities(), data_->truth);
  // Lazy store: the hops materialized only a subset of the partitions.
  EXPECT_GT((*store)->loaded_partitions(), 0u);
  EXPECT_LT((*store)->loaded_partitions(), (*store)->total_partitions());
  std::remove(path.c_str());
}

TEST_F(ExfilScenarioTest, ResultExportsToGraphDotAndCypher) {
  AiqlEngine engine(db_);
  auto result = engine.Track(ExfilRequest(data_->truth));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Dependency subgraph: same edge count, traversable adjacency.
  GraphStore graph(&db_->entities(), *result);
  EXPECT_EQ(graph.num_edges(), result->edges.size());
  const ProvenanceNode& poi = result->nodes[0];
  NodeId poi_node = graph.NodeOf(poi.type, poi.id);
  // Everything the track recovered flows INTO the POI; conn_out has 4
  // incoming event edges (connect + 3 bursts) and no outgoing ones.
  EXPECT_EQ(graph.InEdges(poi_node).size(), 4u);
  EXPECT_TRUE(graph.OutEdges(poi_node).empty());

  std::string dot = ProvenanceToDot(*result, db_->entities());
  EXPECT_NE(dot.find("digraph provenance"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // POI ring
  EXPECT_NE(dot.find("sysupd.exe"), std::string::npos);
  // One DOT edge per provenance edge.
  size_t arrows = 0;
  for (size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, result->edges.size());

  std::string cypher = ProvenanceToCypher(*result, db_->entities());
  EXPECT_NE(cypher.find("MERGE (n0:Connection"), std::string::npos);
  EXPECT_NE(cypher.find("poi: true"), std::string::npos);
  EXPECT_NE(cypher.find("[:WRITE"), std::string::npos);
  EXPECT_NE(cypher.find("[:ACCEPT"), std::string::npos);
}

TEST_F(ExfilScenarioTest, ForwardTrackFromEntryPointReachesExfiltration) {
  AiqlEngine engine(db_);
  TrackRequest request;
  request.type = EntityType::kProcess;
  request.name_like = "C:\\Windows\\Temp\\stage-loader.exe";
  request.options.backward = false;
  request.anchor = data_->truth.start;
  auto result = engine.Track(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto names = NodeNames(*result, db_->entities());
  EXPECT_EQ(names.count({EntityType::kNetwork, data_->truth.poi_name}), 1u);
  EXPECT_EQ(
      names.count({EntityType::kProcess, "C:\\Windows\\Temp\\sysupd.exe"}),
      1u);
}

}  // namespace
}  // namespace aiql
