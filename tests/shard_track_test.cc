// Cross-shard provenance tracking: recovery of the simulator's multi-host
// campaign chain from 2/4/8-way sharded fleets (database- and
// snapshot-backed), exact ground-truth matching, a brute-force diff against
// Track() on a merged single database, and the cross-shard monotonicity
// decoy that is only prunable when time bounds are exchanged between shards.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "engine/aiql_engine.h"
#include "engine/provenance.h"
#include "simulator/scenario.h"
#include "storage/database.h"
#include "storage/shard_map.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

/// Renders a node's display name (per-shard store for sharded results).
using NameFn = std::function<std::string(const ProvenanceNode&)>;

NameFn SingleDbNames(const AuditDatabase* db) {
  return [db](const ProvenanceNode& node) {
    return db->entities().EntityName(node.type, node.id);
  };
}

NameFn ShardedNames(const ShardMap* map) {
  return [map](const ProvenanceNode& node) {
    return map->entities(node.shard).EntityName(node.type, node.id);
  };
}

/// Canonical node: (type, name, depth, bound) — shard-independent.
using CanonNode = std::tuple<int, std::string, int, Timestamp>;
/// Canonical edge: (from name, to name, op, start, end, hop).
using CanonEdge =
    std::tuple<std::string, std::string, int, Timestamp, Timestamp, int>;

std::set<CanonNode> CanonNodes(const ProvenanceResult& result,
                               const NameFn& name_of) {
  std::set<CanonNode> out;
  for (const ProvenanceNode& node : result.nodes) {
    out.emplace(static_cast<int>(node.type), name_of(node), node.depth,
                node.bound);
  }
  return out;
}

std::multiset<CanonEdge> CanonEdges(const ProvenanceResult& result,
                                    const NameFn& name_of) {
  std::multiset<CanonEdge> out;
  for (const ProvenanceEdge& edge : result.edges) {
    out.emplace(name_of(result.nodes[edge.from]),
                name_of(result.nodes[edge.to]),
                static_cast<int>(edge.event.op), edge.event.start_ts,
                edge.event.end_ts, edge.hop);
  }
  return out;
}

/// Asserts `result` is exactly the planted campaign chain: every entity at
/// its ground-truth discovery position, depth, and time bound; every chain
/// event recovered; no decoy picked up; hops time-monotonic.
void VerifyCampaignRecovered(const ProvenanceResult& result,
                             const NameFn& name_of,
                             const CampaignChainTruth& truth) {
  ASSERT_EQ(result.nodes.size(), truth.chain.size());
  EXPECT_EQ(result.num_roots, 1u);
  EXPECT_EQ(result.edges.size(), truth.chain_events);
  EXPECT_FALSE(result.stats.truncated);
  EXPECT_EQ(result.stats.hops, truth.chain_depth + 1);  // +1 empty final hop
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    EXPECT_EQ(result.nodes[i].type, truth.chain[i].first) << "node " << i;
    EXPECT_EQ(name_of(result.nodes[i]), truth.chain[i].second) << "node " << i;
    EXPECT_EQ(result.nodes[i].depth, truth.chain_depths[i]) << "node " << i;
    EXPECT_EQ(result.nodes[i].bound, truth.chain_bounds[i]) << "node " << i;
  }
  std::set<std::string> names;
  for (const ProvenanceNode& node : result.nodes) names.insert(name_of(node));
  for (const std::string& decoy : truth.decoy_names) {
    EXPECT_EQ(names.count(decoy), 0u) << "decoy recovered: " << decoy;
  }
  for (const ProvenanceEdge& edge : result.edges) {
    ASSERT_LT(edge.from, result.nodes.size());
    ASSERT_LT(edge.to, result.nodes.size());
    EXPECT_LE(edge.event.end_ts, result.nodes[edge.to].bound);
  }
}

TrackRequest CampaignRequest(const CampaignChainTruth& truth) {
  TrackRequest request;
  request.type = EntityType::kNetwork;
  request.name_like = truth.poi_like;
  request.anchor = truth.anchor;
  return request;
}

/// A sharded copy of the campaign world: per-shard databases (optionally
/// re-opened through v2 snapshots) under one ShardMap.
struct ShardedWorld {
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  std::vector<std::unique_ptr<SnapshotStore>> snaps;
  std::vector<std::string> snap_paths;
  ShardMap map;

  ~ShardedWorld() {
    snaps.clear();
    for (const std::string& path : snap_paths) std::remove(path.c_str());
  }
};

class CampaignShardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.num_clients = 4;  // agents 1..8
    options.events_per_host_per_hour = 400;
    data_ = new CampaignScenarioData(GenerateCampaignScenario(options));
    auto db = IngestRecords(data_->records, StorageOptions{});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new AuditDatabase(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    delete data_;
    db_ = nullptr;
    data_ = nullptr;
  }

  static constexpr AgentId kMaxAgent = 8;

  /// Routes the campaign records into `num_shards` agent-range shards and
  /// ingests each one (optionally re-opened through an on-disk snapshot).
  static std::unique_ptr<ShardedWorld> BuildWorld(size_t num_shards,
                                                  bool snapshot_backed) {
    auto world = std::make_unique<ShardedWorld>();
    auto ranges = EvenAgentRanges(num_shards, 1, kMaxAgent);
    auto routed = RouteRecordsByAgent(ranges, data_->records);
    if (!routed.ok()) {
      ADD_FAILURE() << routed.status().ToString();
      return nullptr;
    }
    for (size_t s = 0; s < num_shards; ++s) {
      auto db = IngestRecords((*routed)[s], StorageOptions{});
      if (!db.ok()) {
        ADD_FAILURE() << db.status().ToString();
        return nullptr;
      }
      world->dbs.push_back(std::make_unique<AuditDatabase>(std::move(*db)));
      Status added;
      if (snapshot_backed) {
        std::string path = "/tmp/aiql_shard_track_" +
                           std::to_string(num_shards) + "_" +
                           std::to_string(s) + ".snap";
        Status saved = SaveSnapshot(*world->dbs.back(), path);
        if (!saved.ok()) {
          ADD_FAILURE() << saved.ToString();
          return nullptr;
        }
        world->snap_paths.push_back(path);
        auto store = SnapshotStore::Open(path);
        if (!store.ok()) {
          ADD_FAILURE() << store.status().ToString();
          return nullptr;
        }
        world->snaps.push_back(std::move(*store));
        added = world->map.AddShard(world->snaps.back().get(), ranges[s]);
      } else {
        added = world->map.AddShard(world->dbs.back().get(), ranges[s]);
      }
      if (!added.ok()) {
        ADD_FAILURE() << added.ToString();
        return nullptr;
      }
    }
    return world;
  }

  static CampaignScenarioData* data_;
  static AuditDatabase* db_;
};

CampaignScenarioData* CampaignShardTest::data_ = nullptr;
AuditDatabase* CampaignShardTest::db_ = nullptr;

TEST_F(CampaignShardTest, MergedSingleDatabaseRecoversCampaignChain) {
  AiqlEngine engine(db_);
  auto result = engine.Track(CampaignRequest(data_->truth));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  VerifyCampaignRecovered(*result, SingleDbNames(db_), data_->truth);
}

TEST_F(CampaignShardTest, DbBackedShardsRecoverChainAtEveryShardCount) {
  AiqlEngine single(db_);
  auto reference = single.Track(CampaignRequest(data_->truth));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (size_t num_shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    auto world = BuildWorld(num_shards, /*snapshot_backed=*/false);
    ASSERT_NE(world, nullptr);
    AiqlEngine engine(&world->map);
    auto result = engine.Track(CampaignRequest(data_->truth));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    VerifyCampaignRecovered(*result, ShardedNames(&world->map), data_->truth);
    // Brute-force diff: the sharded graph is canonically identical to the
    // merged single database's.
    EXPECT_EQ(CanonNodes(*result, ShardedNames(&world->map)),
              CanonNodes(*reference, SingleDbNames(db_)));
    EXPECT_EQ(CanonEdges(*result, ShardedNames(&world->map)),
              CanonEdges(*reference, SingleDbNames(db_)));
  }
}

TEST_F(CampaignShardTest, SnapshotBackedShardsRecoverChainAtEveryShardCount) {
  AiqlEngine single(db_);
  auto reference = single.Track(CampaignRequest(data_->truth));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (size_t num_shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    auto world = BuildWorld(num_shards, /*snapshot_backed=*/true);
    ASSERT_NE(world, nullptr);
    AiqlEngine engine(&world->map);
    auto result = engine.Track(CampaignRequest(data_->truth));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    VerifyCampaignRecovered(*result, ShardedNames(&world->map), data_->truth);
    EXPECT_EQ(CanonNodes(*result, ShardedNames(&world->map)),
              CanonNodes(*reference, SingleDbNames(db_)));
    EXPECT_EQ(CanonEdges(*result, ShardedNames(&world->map)),
              CanonEdges(*reference, SingleDbNames(db_)));
  }
}

TEST_F(CampaignShardTest, CrossShardBoundExchangePrunesMonotonicityDecoy) {
  // Under 8-way sharding every host is its own shard: beacon.exe's tight
  // bound comes from an event on the client's shard while the decoy connect
  // into beacon is recorded on the domain controller's shard. The chain
  // track above already proved the decoy is pruned; here we show the SAME
  // decoy event is admissible under the anchor alone — i.e. only the
  // exchanged bound can have pruned it.
  auto world = BuildWorld(8, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map);

  const std::string& scanner = data_->truth.decoy_names[1];  // netscan.exe

  TrackRequest chain_request = CampaignRequest(data_->truth);
  auto chain = engine.Track(chain_request);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  std::set<std::string> chain_names;
  for (const ProvenanceNode& node : chain->nodes) {
    chain_names.insert(ShardedNames(&world->map)(node));
  }
  EXPECT_EQ(chain_names.count(scanner), 0u);

  // Re-anchor directly on beacon.exe: its bound is now the (late) anchor,
  // so the decoy connect ending before it IS admitted. The decoy's absence
  // above therefore hinged on the tighter bound crossing shards.
  TrackRequest beacon_request;
  beacon_request.type = EntityType::kProcess;
  beacon_request.name_like = "C:\\Users\\Public\\beacon.exe";
  beacon_request.anchor = data_->truth.anchor;
  auto from_beacon = engine.Track(beacon_request);
  ASSERT_TRUE(from_beacon.ok()) << from_beacon.status().ToString();
  std::set<std::string> beacon_names;
  for (const ProvenanceNode& node : from_beacon->nodes) {
    beacon_names.insert(ShardedNames(&world->map)(node));
  }
  EXPECT_EQ(beacon_names.count(scanner), 1u);
}

TEST_F(CampaignShardTest, ShardedTrackReportsNotFoundForUnknownPoi) {
  auto world = BuildWorld(2, /*snapshot_backed=*/false);
  ASSERT_NE(world, nullptr);
  AiqlEngine engine(&world->map);
  TrackRequest request;
  request.type = EntityType::kFile;
  request.name_like = "/no/such/file/anywhere";
  auto result = engine.Track(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace aiql
