// Tests for the `order by` return-clause extension (the web UI's result
// sorting, §3) across the multievent, anomaly, and dependency paths.

#include <gtest/gtest.h>

#include "engine/aiql_engine.h"
#include "storage/database.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

class OrderByTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions options;
    options.dedup_window = 0;
    db_ = std::make_unique<AuditDatabase>(options);
    const char* exes[] = {"zeta.exe", "alpha.exe", "mid.exe"};
    uint64_t amounts[] = {300, 100, 200};
    for (int i = 0; i < 3; ++i) {
      EventRecord record;
      record.agent_id = 1;
      record.op = OpType::kWrite;
      record.start_ts = T0() + i * kMinute;
      record.end_ts = record.start_ts + kSecond;
      record.amount = amounts[i];
      record.subject = ProcessRef{1, static_cast<uint32_t>(10 + i), exes[i],
                                  "u"};
      record.object = NetworkRef{1, "10.0.0.1", "9.9.9.9", 1000, 443, "tcp"};
      ASSERT_TRUE(db_->Append(record).ok());
    }
    db_->Seal();
    engine_ = std::make_unique<AiqlEngine>(db_.get());
  }

  std::vector<std::string> Column(const std::string& query, size_t col) {
    auto result = engine_->Execute(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::string> out;
    if (result.ok()) {
      for (const auto& row : result->table.rows) {
        out.push_back(ValueToString(row[col]));
      }
    }
    return out;
  }

  std::unique_ptr<AuditDatabase> db_;
  std::unique_ptr<AiqlEngine> engine_;
};

TEST_F(OrderByTest, AscendingByStringColumn) {
  auto names = Column("proc p write ip i return p order by p", 0);
  EXPECT_EQ(names,
            (std::vector<std::string>{"alpha.exe", "mid.exe", "zeta.exe"}));
}

TEST_F(OrderByTest, DescendingByEventAttribute) {
  auto amounts = Column(
      "proc p write ip i as e return p, e.amount order by e.amount desc", 1);
  EXPECT_EQ(amounts, (std::vector<std::string>{"300", "200", "100"}));
}

TEST_F(OrderByTest, OrderByAlias) {
  auto amounts = Column(
      "proc p write ip i as e return p, e.amount as vol order by vol", 1);
  EXPECT_EQ(amounts, (std::vector<std::string>{"100", "200", "300"}));
}

TEST_F(OrderByTest, LimitAppliesAfterOrdering) {
  auto names = Column(
      "proc p write ip i return p order by p limit 1", 0);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "alpha.exe");  // smallest after sort, not first found
}

TEST_F(OrderByTest, SortKeywordIsAnAlias) {
  auto names = Column("proc p write ip i return p sort by p desc", 0);
  EXPECT_EQ(names,
            (std::vector<std::string>{"zeta.exe", "mid.exe", "alpha.exe"}));
}

TEST_F(OrderByTest, AnomalyRowsOrderable) {
  auto result = engine_->Execute(
      "(at \"05/10/2018\") window = 10 min, step = 10 min "
      "proc p write ip i as evt "
      "return p, sum(evt.amount) as s group by p order by s desc");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 3u);
  // Columns: window_start, p, s — ordered by s descending.
  EXPECT_EQ(ValueToString(result->table.rows[0][1]), "zeta.exe");
  EXPECT_EQ(ValueToString(result->table.rows[2][1]), "alpha.exe");
}

TEST_F(OrderByTest, DependencyQueriesOrderable) {
  auto result = engine_->Execute(
      "forward: proc p ->[write] ip i[dstip = \"9.9.9.9\"] "
      "return p, i order by p desc");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 3u);
  EXPECT_EQ(ValueToString(result->table.rows[0][0]), "zeta.exe");
}

TEST_F(OrderByTest, UnknownOrderColumnRejected) {
  auto result = engine_->Execute(
      "proc p write ip i return p order by ghost");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
  EXPECT_NE(result.status().message().find("ghost"), std::string::npos);
}

TEST_F(OrderByTest, MultiKeyOrdering) {
  auto result = engine_->Execute(
      "proc p write ip i as e return i, e.amount "
      "order by i, e.amount desc");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // All rows share the same dst_ip; secondary key sorts amounts descending.
  ASSERT_EQ(result->table.num_rows(), 3u);
  EXPECT_EQ(ValueToString(result->table.rows[0][1]), "300");
  EXPECT_EQ(ValueToString(result->table.rows[2][1]), "100");
}

}  // namespace
}  // namespace aiql
