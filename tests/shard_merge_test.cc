// Unit tests for the scatter/gather merge layer (engine/shard_merge.h) and
// the shard map (storage/shard_map.h): top-k heap merge behaviour at the
// LIMIT boundary, DISTINCT re-deduplication across shards, degenerate shard
// counts, per-shard error propagation, and agent-range bookkeeping.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "engine/shard_merge.h"
#include "storage/shard_map.h"

namespace aiql {
namespace {

Value I(int64_t v) { return Value{v}; }
Value S(std::string v) { return Value{std::move(v)}; }

QueryResult MakeResult(std::vector<std::string> columns,
                       std::vector<std::vector<Value>> rows) {
  QueryResult result;
  result.table.columns = std::move(columns);
  result.table.rows = std::move(rows);
  return result;
}

std::vector<std::string> Column(const QueryResult& result, size_t col) {
  std::vector<std::string> values;
  for (const auto& row : result.table.rows) {
    values.push_back(ValueToString(row[col]));
  }
  return values;
}

// ---------------------------------------------------------------------------
// ordered top-k merge

TEST(ShardMergeTest, TopKMergeWithDuplicateKeysAtLimitBoundary) {
  // Keys across shards: 1,3,3,5 | 2,3,4 | 3,6. Globally sorted:
  // 1,2,3,3,3,3,4,5,6. LIMIT 5 cuts through the run of equal 3s — the merge
  // must emit exactly five rows with key sequence 1,2,3,3,3 and break ties
  // by (shard, row) for determinism.
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"k", "tag"}, {{I(1), S("s0r0")},
                                             {I(3), S("s0r1")},
                                             {I(3), S("s0r2")},
                                             {I(5), S("s0r3")}}));
  shards.push_back(MakeResult(
      {"k", "tag"}, {{I(2), S("s1r0")}, {I(3), S("s1r1")}, {I(4), S("s1r2")}}));
  shards.push_back(MakeResult({"k", "tag"}, {{I(3), S("s2r0")},
                                             {I(6), S("s2r1")}}));

  ShardMergeSpec spec;
  spec.order_keys = {{0, false}};
  spec.limit = 5;
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 0),
            (std::vector<std::string>{"1", "2", "3", "3", "3"}));
  // Equal keys pop lowest (shard, row) first.
  EXPECT_EQ(Column(*merged, 1),
            (std::vector<std::string>{"s0r0", "s1r0", "s0r1", "s0r2", "s1r1"}));
}

TEST(ShardMergeTest, DescendingMergeAndUnlimited) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"k"}, {{I(9)}, {I(4)}, {I(1)}}));
  shards.push_back(MakeResult({"k"}, {{I(8)}, {I(3)}}));

  ShardMergeSpec spec;
  spec.order_keys = {{0, true}};
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 0),
            (std::vector<std::string>{"9", "8", "4", "3", "1"}));
}

TEST(ShardMergeTest, MixedTypeKeysCompareLikeOrderResultRows) {
  // Numeric columns mixing int64 and double compare numerically, exactly as
  // the single-db ORDER BY does.
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"k"}, {{Value{1.5}}, {I(3)}}));
  shards.push_back(MakeResult({"k"}, {{I(1)}, {Value{2.5}}}));

  ShardMergeSpec spec;
  spec.order_keys = {{0, false}};
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 0),
            (std::vector<std::string>{"1", "1.5", "2.5", "3"}));
}

TEST(ShardMergeTest, SecondaryKeyBreaksPrimaryTies) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(
      MakeResult({"a", "b"}, {{I(1), S("z")}, {I(2), S("a")}}));
  shards.push_back(
      MakeResult({"a", "b"}, {{I(1), S("m")}, {I(2), S("b")}}));

  ShardMergeSpec spec;
  spec.order_keys = {{0, false}, {1, false}};
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 1),
            (std::vector<std::string>{"m", "z", "a", "b"}));
}

// ---------------------------------------------------------------------------
// DISTINCT re-dedup

TEST(ShardMergeTest, DistinctRededupsRowsAppearingOnTwoShards) {
  // Per-shard results are already distinct; the same projected row appears
  // on two shards and must survive exactly once after the merge.
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"exe"}, {{S("cmd.exe")}, {S("sh")}}));
  shards.push_back(MakeResult({"exe"}, {{S("sh")}, {S("httpd")}}));
  shards.push_back(MakeResult({"exe"}, {{S("cmd.exe")}}));

  ShardMergeSpec spec;
  spec.distinct = true;
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 0),
            (std::vector<std::string>{"cmd.exe", "sh", "httpd"}));
}

TEST(ShardMergeTest, DistinctDoesNotConflateEqualRenderingsOfDifferentTypes) {
  // The row key is type-tagged: string "7" and integer 7 render identically
  // but are distinct rows.
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"v"}, {{S("7")}}));
  shards.push_back(MakeResult({"v"}, {{I(7)}}));

  ShardMergeSpec spec;
  spec.distinct = true;
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->table.num_rows(), 2u);
}

TEST(ShardMergeTest, DistinctOrderedLimitedTogether) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"k"}, {{I(1)}, {I(2)}, {I(4)}}));
  shards.push_back(MakeResult({"k"}, {{I(1)}, {I(3)}, {I(4)}}));

  ShardMergeSpec spec;
  spec.distinct = true;
  spec.order_keys = {{0, false}};
  spec.limit = 3;
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 0), (std::vector<std::string>{"1", "2", "3"}));
}

// ---------------------------------------------------------------------------
// degenerate shapes

TEST(ShardMergeTest, EmptyShardListYieldsEmptyResult) {
  auto merged = MergeShardResults({}, ShardMergeSpec{});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->table.num_rows(), 0u);
  EXPECT_EQ(merged->table.num_columns(), 0u);
}

TEST(ShardMergeTest, AllShardsEmptyPreservesColumns) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"a", "b"}, {}));
  shards.push_back(MakeResult({"a", "b"}, {}));

  ShardMergeSpec spec;
  spec.order_keys = {{0, false}};
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->table.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(merged->table.num_rows(), 0u);
}

TEST(ShardMergeTest, SingleShardPassesThrough) {
  QueryResult input = MakeResult({"k"}, {{I(2)}, {I(1)}, {I(2)}});
  input.stats.events_scanned = 17;
  std::vector<Result<QueryResult>> shards;
  shards.push_back(input);

  // Unordered, no distinct, no limit: rows come back verbatim.
  auto merged = MergeShardResults(std::move(shards), ShardMergeSpec{});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->table, input.table);
  EXPECT_EQ(merged->stats.events_scanned, 17u);
}

TEST(ShardMergeTest, EmptyShardAmongPopulatedShardsIsHarmless) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"k"}, {{I(2)}}));
  shards.push_back(MakeResult({"k"}, {}));
  shards.push_back(MakeResult({"k"}, {{I(1)}}));

  ShardMergeSpec spec;
  spec.order_keys = {{0, false}};
  auto merged = MergeShardResults(std::move(shards), spec);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(Column(*merged, 0), (std::vector<std::string>{"1", "2"}));
}

// ---------------------------------------------------------------------------
// error propagation

TEST(ShardMergeTest, AggregateErrorNamesEveryFailedShard) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"k"}, {{I(1)}}));
  shards.push_back(Result<QueryResult>(Status::IOError("shard 1 exploded")));
  shards.push_back(
      Result<QueryResult>(Status::Internal("shard 2 also exploded")));

  auto merged = MergeShardResults(std::move(shards), ShardMergeSpec{});
  ASSERT_FALSE(merged.ok());
  // Code comes from the lowest failed shard; the message names each failed
  // shard with its index and cause — no silent first-error-only collapse.
  EXPECT_EQ(merged.status().code(), StatusCode::kIOError);
  EXPECT_NE(merged.status().message().find("2 of 3 shard(s) failed"),
            std::string::npos);
  EXPECT_NE(merged.status().message().find("shard 1: IOError: shard 1 "
                                           "exploded"),
            std::string::npos);
  EXPECT_NE(merged.status().message().find("shard 2: Internal: shard 2 also "
                                           "exploded"),
            std::string::npos);
}

TEST(ShardMergeTest, SingleFailedShardStillNamesItsIndex) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"k"}, {{I(1)}}));
  shards.push_back(
      Result<QueryResult>(Status::Unavailable("gone after retries")));

  auto merged = MergeShardResults(std::move(shards), ShardMergeSpec{});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(merged.status().message().find("1 of 2 shard(s) failed"),
            std::string::npos);
  EXPECT_NE(merged.status().message().find("shard 1: Unavailable: gone "
                                           "after retries"),
            std::string::npos);
}

TEST(ShardMergeTest, TransientShardErrorClassification) {
  EXPECT_TRUE(IsTransientShardError(StatusCode::kIOError));
  EXPECT_TRUE(IsTransientShardError(StatusCode::kCorruption));
  EXPECT_TRUE(IsTransientShardError(StatusCode::kUnavailable));
  EXPECT_FALSE(IsTransientShardError(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransientShardError(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsTransientShardError(StatusCode::kCancelled));
  EXPECT_FALSE(IsTransientShardError(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsTransientShardError(StatusCode::kInternal));
}

TEST(ShardMergeTest, ColumnMismatchIsInternalError) {
  std::vector<Result<QueryResult>> shards;
  shards.push_back(MakeResult({"a"}, {{I(1)}}));
  shards.push_back(MakeResult({"b"}, {{I(2)}}));

  auto merged = MergeShardResults(std::move(shards), ShardMergeSpec{});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInternal);
}

TEST(ShardMergeTest, StatsAreSummedAcrossShards) {
  QueryResult a = MakeResult({"k"}, {{I(1)}});
  a.stats.events_scanned = 10;
  a.stats.events_matched = 4;
  a.stats.partitions_scanned = 2;
  a.stats.join_candidates = 3;
  a.stats.threads_used = 2;
  a.stats.patterns = 1;
  QueryResult b = MakeResult({"k"}, {{I(2)}});
  b.stats.events_scanned = 5;
  b.stats.events_matched = 1;
  b.stats.partitions_scanned = 7;
  b.stats.join_candidates = 2;
  b.stats.threads_used = 8;
  b.stats.patterns = 1;

  std::vector<Result<QueryResult>> shards;
  shards.push_back(std::move(a));
  shards.push_back(std::move(b));
  auto merged = MergeShardResults(std::move(shards), ShardMergeSpec{});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->stats.events_scanned, 15u);
  EXPECT_EQ(merged->stats.events_matched, 5u);
  EXPECT_EQ(merged->stats.partitions_scanned, 9u);
  EXPECT_EQ(merged->stats.join_candidates, 5u);
  EXPECT_EQ(merged->stats.threads_used, 8);
  EXPECT_EQ(merged->stats.patterns, 1);
}

// ---------------------------------------------------------------------------
// shard map bookkeeping

TEST(ShardMapTest, EvenAgentRangesCoverAndBalance) {
  auto two = EvenAgentRanges(2, 1, 8);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].begin, 1u);
  EXPECT_EQ(two[0].end, 5u);
  EXPECT_EQ(two[1].begin, 5u);
  EXPECT_EQ(two[1].end, 9u);

  // 10 agents over 3 shards: remainder goes to the leading ranges.
  auto three = EvenAgentRanges(3, 1, 10);
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[0].end - three[0].begin, 4u);
  EXPECT_EQ(three[1].end - three[1].begin, 3u);
  EXPECT_EQ(three[2].end - three[2].begin, 3u);
  EXPECT_EQ(three[0].begin, 1u);
  EXPECT_EQ(three[2].end, 11u);
  EXPECT_EQ(three[0].end, three[1].begin);
  EXPECT_EQ(three[1].end, three[2].begin);
}

TEST(ShardMapTest, RouteRecordsByAgentPartitionsAndRejectsUnowned) {
  std::vector<EventRecord> records(3);
  records[0].agent_id = 1;
  records[1].agent_id = 6;
  records[2].agent_id = 2;
  auto ranges = EvenAgentRanges(2, 1, 8);

  auto routed = RouteRecordsByAgent(ranges, records);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_EQ(routed->size(), 2u);
  EXPECT_EQ((*routed)[0].size(), 2u);
  EXPECT_EQ((*routed)[1].size(), 1u);
  EXPECT_EQ((*routed)[1][0].agent_id, 6u);

  records[1].agent_id = 42;  // outside every range
  auto bad = RouteRecordsByAgent(ranges, records);
  EXPECT_FALSE(bad.ok());
}

TEST(ShardMapTest, AddShardValidatesRanges) {
  AuditDatabase a{StorageOptions{}};
  AuditDatabase b{StorageOptions{}};
  ShardMap map;
  ASSERT_TRUE(map.AddShard(&a, ShardRange{1, 5}).ok());
  // Overlapping range rejected.
  EXPECT_FALSE(map.AddShard(&b, ShardRange{4, 9}).ok());
  // Empty range rejected.
  EXPECT_FALSE(map.AddShard(&b, ShardRange{7, 7}).ok());
  // Null shard rejected.
  EXPECT_FALSE(
      map.AddShard(static_cast<const AuditDatabase*>(nullptr), ShardRange{5, 9})
          .ok());
  // Disjoint range accepted; lookups route correctly.
  ASSERT_TRUE(map.AddShard(&b, ShardRange{5, 9}).ok());
  EXPECT_EQ(map.num_shards(), 2u);
  EXPECT_EQ(map.ShardForAgent(3), 0);
  EXPECT_EQ(map.ShardForAgent(5), 1);
  EXPECT_EQ(map.ShardForAgent(9), -1);
  EXPECT_FALSE(map.shard_is_snapshot(0));
}

}  // namespace
}  // namespace aiql
