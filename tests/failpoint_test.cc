// Failpoint registry unit tests: spec grammar parsing, trigger modifiers
// (@arg / @p / @nth / @once), deterministic probability sequences, buffer
// corruption, and latency injection that stays interruptible under a query
// deadline (the contract the chaos harness and degraded-execution tests
// build on).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/status.h"

namespace aiql {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoint::ClearAll(); }
  void TearDown() override { Failpoint::ClearAll(); }
};

TEST_F(FailpointTest, UnarmedHitIsOkAndInactive) {
  EXPECT_FALSE(Failpoint::AnyActive());
  EXPECT_TRUE(Failpoint::Hit("never.armed").ok());
  EXPECT_EQ(Failpoint::HitCount("never.armed"), 0u);
}

TEST_F(FailpointTest, ErrorActionReturnsInjectedStatus) {
  FailpointSpec spec;
  spec.action = FailpointAction::kReturnError;
  spec.code = StatusCode::kIOError;
  Failpoint::Set("io.fault", spec);
  EXPECT_TRUE(Failpoint::AnyActive());
  Status hit = Failpoint::Hit("io.fault");
  EXPECT_EQ(hit.code(), StatusCode::kIOError);
  EXPECT_NE(hit.message().find("injected by failpoint 'io.fault'"),
            std::string::npos);
  Failpoint::Clear("io.fault");
  EXPECT_FALSE(Failpoint::AnyActive());
  EXPECT_TRUE(Failpoint::Hit("io.fault").ok());
}

TEST_F(FailpointTest, ConfigureParsesActionsAndModifiers) {
  ASSERT_TRUE(
      Failpoint::Configure(
          "a=error(Unavailable)@arg2;b=error(Corruption)@nth2;c=latency(10)")
          .ok());
  EXPECT_EQ(Failpoint::ActiveNames().size(), 3u);
  // @arg2: non-matching args pass through without consuming the counter.
  EXPECT_TRUE(Failpoint::Hit("a", 0).ok());
  EXPECT_TRUE(Failpoint::Hit("a", 7).ok());
  EXPECT_EQ(Failpoint::Hit("a", 2).code(), StatusCode::kUnavailable);
  // @nth2: first hit passes, second triggers, third passes again.
  EXPECT_TRUE(Failpoint::Hit("b").ok());
  EXPECT_EQ(Failpoint::Hit("b").code(), StatusCode::kCorruption);
  EXPECT_TRUE(Failpoint::Hit("b").ok());
  // Latency returns OK after sleeping.
  EXPECT_TRUE(Failpoint::Hit("c").ok());
}

TEST_F(FailpointTest, ConfigureRejectsBadGrammar) {
  EXPECT_EQ(Failpoint::Configure("noequals").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoint::Configure("x=explode()").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoint::Configure("x=error(NoSuchCode)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoint::Configure("x=error(IOError)@bogus").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(Failpoint::AnyActive());
}

TEST_F(FailpointTest, ConfigureRejectsMalformedNumerics) {
  // Every numeric payload is parsed strictly: `latency(abc)` used to arm a
  // 0us sleep (atoll semantics), which meant a typo'd AIQL_FAILPOINTS ran
  // with no injection at all.
  const char* bad[] = {
      "x=latency(abc)",            // non-numeric latency
      "x=latency()",               // empty latency
      "x=latency(12q)",            // trailing garbage
      "x=latency(-5)",             // sign on an unsigned field
      "x=latency( 7)",             // leading whitespace (strtoull skips it)
      "x=latency(99999999999999999999999999)",  // ERANGE saturation
      "x=error(IOError)@arg1x",    // trailing garbage on @arg
      "x=error(IOError)@argzz",    // non-numeric @arg
      "x=error(IOError)@arg",      // empty @arg
      "x=error(IOError)@arg-2",    // negative arg filter
      "x=error(IOError)@nthabc",   // non-numeric @nth
      "x=error(IOError)@nth0",     // 0 can never trigger (hits are 1-based)
      "x=error(IOError)@nth99999999999999999999999999",  // ERANGE
      "x=error(IOError)@seedzz",   // non-numeric @seed
      "x=error(IOError)@p2.0",     // probability above 1
      "x=error(IOError)@p-0.5",    // probability below 0 / stray sign
      "x=error(IOError)@p1e",      // truncated exponent
  };
  for (const char* spec : bad) {
    EXPECT_EQ(Failpoint::Configure(spec).code(), StatusCode::kInvalidArgument)
        << "accepted: " << spec;
  }
  EXPECT_FALSE(Failpoint::AnyActive());

  // The well-formed variants of the same fields still parse.
  ASSERT_TRUE(Failpoint::Configure("ok1=latency(250)@arg3@nth2;"
                                   "ok2=error(IOError)@p0.5@seed42")
                  .ok());
  EXPECT_EQ(Failpoint::ActiveNames().size(), 2u);
}

TEST_F(FailpointTest, OnceDisarmsAfterFirstTrigger) {
  ASSERT_TRUE(
      Failpoint::Configure("solo=error(IOError)@once;other=latency(1)").ok());
  EXPECT_EQ(Failpoint::Hit("solo").code(), StatusCode::kIOError);
  EXPECT_TRUE(Failpoint::Hit("solo").ok());  // disarmed by the trigger
  EXPECT_TRUE(Failpoint::AnyActive());       // 'other' is still armed
  EXPECT_EQ(Failpoint::ActiveNames().size(), 1u);
  Failpoint::Clear("other");
  EXPECT_FALSE(Failpoint::AnyActive());
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FailpointSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    Failpoint::Set("p.fault", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!Failpoint::Hit("p.fault").ok());
    }
    Failpoint::Clear("p.fault");
    return fired;
  };
  std::vector<bool> first = run(42);
  std::vector<bool> second = run(42);
  std::vector<bool> other = run(43);
  EXPECT_EQ(first, second);  // same seed => same hit-index decisions
  EXPECT_NE(first, other);
  auto fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
}

TEST_F(FailpointTest, ArgFilterDoesNotConsumeNthCounter) {
  ASSERT_TRUE(Failpoint::Configure("sel=error(IOError)@nth1@arg3").ok());
  for (int64_t arg = 0; arg < 3; ++arg) {
    EXPECT_TRUE(Failpoint::Hit("sel", arg).ok());
  }
  // Filtered hits above did not advance the counter: the first matching
  // hit is still "the 1st".
  EXPECT_EQ(Failpoint::Hit("sel", 3).code(), StatusCode::kIOError);
}

TEST_F(FailpointTest, HitBufferCorruptFlipsOneMidBufferBit) {
  std::string bytes = "0123456789abcdef";
  const std::string original = bytes;
  ASSERT_TRUE(Failpoint::Configure("buf=corrupt").ok());
  EXPECT_TRUE(Failpoint::HitBuffer("buf", bytes.data(), bytes.size()).ok());
  ASSERT_NE(bytes, original);
  EXPECT_EQ(bytes[bytes.size() / 2],
            static_cast<char>(original[bytes.size() / 2] ^ 0x40));
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (i != bytes.size() / 2) {
      EXPECT_EQ(bytes[i], original[i]) << i;
    }
  }
  // Empty buffers are a safe no-op.
  EXPECT_TRUE(Failpoint::HitBuffer("buf", nullptr, 0).ok());
}

TEST_F(FailpointTest, CorruptActionAtBufferlessSiteSurfacesAsCorruption) {
  ASSERT_TRUE(Failpoint::Configure("nobuf=corrupt").ok());
  EXPECT_EQ(Failpoint::Hit("nobuf").code(), StatusCode::kCorruption);
}

TEST_F(FailpointTest, HitCountTracksArmedHits) {
  ASSERT_TRUE(Failpoint::Configure("counted=error(IOError)@nth1000").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(Failpoint::Hit("counted").ok());
  EXPECT_EQ(Failpoint::HitCount("counted"), 5u);
}

TEST_F(FailpointTest, InjectedLatencyHonorsQueryDeadline) {
  ASSERT_TRUE(Failpoint::Configure("slow=latency(500000)").ok());
  QueryLimits limits;
  limits.timeout = std::chrono::milliseconds(20);
  QueryContext ctx(limits);
  ScopedQueryContext bind(&ctx);
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Failpoint::Hit("slow").ok());  // sleep cut short by deadline
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 250) << "500ms injected stall ignored deadline";
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace aiql
