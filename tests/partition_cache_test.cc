// PartitionCache unit tests: LRU eviction under a byte budget, pins that
// outlive eviction (the no-invalidation contract scans rely on), budget
// shrink/lift via SetBudget, owner teardown, and stats counters — plus a
// multi-threaded hammering test for the tsan suite.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "storage/partition.h"
#include "storage/partition_cache.h"

namespace aiql {
namespace {

std::shared_ptr<const EventPartition> MakePartition() {
  return std::make_shared<const EventPartition>();
}

TEST(PartitionCacheTest, LookupMissThenHit) {
  PartitionCache cache;
  int owner = 0;
  EXPECT_EQ(cache.Lookup(&owner, 0), nullptr);
  auto p = MakePartition();
  cache.Insert(&owner, 0, p, 100);
  EXPECT_EQ(cache.Lookup(&owner, 0), p);
  EXPECT_EQ(cache.Lookup(&owner, 1), nullptr);

  PartitionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_EQ(stats.charged_bytes, 100u);
  EXPECT_EQ(stats.budget_bytes, 0u);
}

TEST(PartitionCacheTest, BudgetEvictsLeastRecentlyUsed) {
  PartitionCache cache(250);
  int owner = 0;
  cache.Insert(&owner, 0, MakePartition(), 100);
  cache.Insert(&owner, 1, MakePartition(), 100);
  // Touch 0 so 1 becomes the LRU entry.
  EXPECT_NE(cache.Lookup(&owner, 0), nullptr);
  cache.Insert(&owner, 2, MakePartition(), 100);

  EXPECT_NE(cache.Lookup(&owner, 0), nullptr);
  EXPECT_EQ(cache.Lookup(&owner, 1), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(&owner, 2), nullptr);
  PartitionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident, 2u);
  EXPECT_EQ(stats.charged_bytes, 200u);
}

TEST(PartitionCacheTest, OversizedEntryIsStillAdmitted) {
  // The caller already materialized the partition; refusing it would only
  // force an immediate re-read. It evicts everything else instead.
  PartitionCache cache(100);
  int owner = 0;
  cache.Insert(&owner, 0, MakePartition(), 50);
  cache.Insert(&owner, 1, MakePartition(), 500);
  EXPECT_EQ(cache.Lookup(&owner, 0), nullptr);
  EXPECT_NE(cache.Lookup(&owner, 1), nullptr);
  EXPECT_EQ(cache.stats().charged_bytes, 500u);
}

TEST(PartitionCacheTest, PinSurvivesEviction) {
  PartitionCache cache(100);
  int owner = 0;
  auto p = MakePartition();
  std::weak_ptr<const EventPartition> weak = p;
  cache.Insert(&owner, 0, p, 100);
  std::shared_ptr<const EventPartition> pin = cache.Lookup(&owner, 0);
  ASSERT_NE(pin, nullptr);
  p.reset();

  // A larger insert evicts entry 0; the pin must keep it alive.
  cache.Insert(&owner, 1, MakePartition(), 100);
  EXPECT_EQ(cache.Lookup(&owner, 0), nullptr);
  EXPECT_FALSE(weak.expired());
  EXPECT_EQ(cache.stats().charged_bytes, 100u);  // evicted bytes uncharged
  pin.reset();
  EXPECT_TRUE(weak.expired());
}

TEST(PartitionCacheTest, InsertReplacesExistingKey) {
  PartitionCache cache(1000);
  int owner = 0;
  cache.Insert(&owner, 0, MakePartition(), 100);
  auto replacement = MakePartition();
  cache.Insert(&owner, 0, replacement, 300);
  EXPECT_EQ(cache.Lookup(&owner, 0), replacement);
  PartitionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_EQ(stats.charged_bytes, 300u);
}

TEST(PartitionCacheTest, SetBudgetShrinkEvictsImmediately) {
  PartitionCache cache;
  int owner = 0;
  for (size_t i = 0; i < 4; ++i) cache.Insert(&owner, i, MakePartition(), 100);
  EXPECT_EQ(cache.stats().charged_bytes, 400u);

  cache.SetBudget(150);
  PartitionCacheStats stats = cache.stats();
  EXPECT_LE(stats.charged_bytes, 150u);
  EXPECT_EQ(stats.budget_bytes, 150u);
  // 0 lifts the budget again: new inserts are never evicted.
  cache.SetBudget(0);
  for (size_t i = 10; i < 14; ++i) {
    cache.Insert(&owner, i, MakePartition(), 100);
  }
  EXPECT_GE(cache.stats().charged_bytes, 400u);
}

TEST(PartitionCacheTest, EraseAndEraseOwner) {
  PartitionCache cache;
  int owner_a = 0, owner_b = 0;
  cache.Insert(&owner_a, 0, MakePartition(), 10);
  cache.Insert(&owner_a, 1, MakePartition(), 10);
  cache.Insert(&owner_b, 0, MakePartition(), 10);

  cache.Erase(&owner_a, 0);
  cache.Erase(&owner_a, 99);  // absent: no-op
  EXPECT_EQ(cache.Lookup(&owner_a, 0), nullptr);
  EXPECT_NE(cache.Lookup(&owner_a, 1), nullptr);

  cache.EraseOwner(&owner_a);
  EXPECT_EQ(cache.Lookup(&owner_a, 1), nullptr);
  EXPECT_NE(cache.Lookup(&owner_b, 0), nullptr);
  EXPECT_EQ(cache.stats().charged_bytes, 10u);
}

TEST(PartitionCacheTest, ConcurrentInsertLookupEvict) {
  // Many threads share a tiny budget, so every operation races against
  // concurrent eviction. Correctness here is "no crash, no lost pins":
  // every pin obtained remains dereferenceable, asserted by use_count.
  PartitionCache cache(300);
  int owner = 0;
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &owner, t] {
      for (int i = 0; i < kOps; ++i) {
        size_t index = static_cast<size_t>((t * 7 + i) % 16);
        std::shared_ptr<const EventPartition> pin =
            cache.Lookup(&owner, index);
        if (pin == nullptr) {
          pin = MakePartition();
          cache.Insert(&owner, index, pin, 100);
        }
        ASSERT_GE(pin.use_count(), 1);
        if (i % 64 == 0) cache.SetBudget(200 + (i % 3) * 100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  PartitionCacheStats stats = cache.stats();
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.charged_bytes, 400u + 100u);  // budget + one oversized slop
}

}  // namespace
}  // namespace aiql
