// Tests for the text audit-log transport format.

#include "storage/log_format.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "simulator/scenario.h"

namespace aiql {
namespace {

EventRecord SampleFileEvent() {
  EventRecord record;
  record.agent_id = 3;
  record.op = OpType::kWrite;
  record.start_ts = 1525910400000000;
  record.end_ts = 1525910401000000;
  record.amount = 4096;
  record.subject = ProcessRef{3, 42, "C:\\Windows\\cmd.exe", "alice"};
  record.object = FileRef{3, "C:\\Users\\alice\\notes.txt"};
  return record;
}

TEST(LogFormatTest, RoundTripsAllObjectKinds) {
  EventRecord file_event = SampleFileEvent();

  EventRecord proc_event = file_event;
  proc_event.op = OpType::kStart;
  proc_event.object = ProcessRef{4, 99, "/bin/sh", "root"};

  EventRecord net_event = file_event;
  net_event.op = OpType::kConnect;
  net_event.object = NetworkRef{3, "10.0.0.1", "8.8.8.8", 1234, 443, "udp"};

  for (const EventRecord& original : {file_event, proc_event, net_event}) {
    auto parsed = ParseLogLine(FormatLogLine(original));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->start_ts, original.start_ts);
    EXPECT_EQ(parsed->end_ts, original.end_ts);
    EXPECT_EQ(parsed->agent_id, original.agent_id);
    EXPECT_EQ(parsed->op, original.op);
    EXPECT_EQ(parsed->amount, original.amount);
    EXPECT_EQ(parsed->subject.exe_name, original.subject.exe_name);
    EXPECT_EQ(ObjectRefType(parsed->object), ObjectRefType(original.object));
  }
}

TEST(LogFormatTest, EscapesHostileStrings) {
  EventRecord record = SampleFileEvent();
  record.subject.exe_name = "evil\tname\\with\nweird chars";
  record.object = FileRef{3, "/tmp/tab\there"};
  std::string line = FormatLogLine(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = ParseLogLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->subject.exe_name, record.subject.exe_name);
  EXPECT_EQ(std::get<FileRef>(parsed->object).path, "/tmp/tab\there");
}

TEST(LogFormatTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseLogLine("").ok());
  EXPECT_FALSE(ParseLogLine("not\ta\tlog\tline").ok());
  EXPECT_FALSE(
      ParseLogLine("x\t1\t1\twrite\t0\t1\ta\tb\tfile\t1\t/f").ok());
  EXPECT_FALSE(  // unknown object kind
      ParseLogLine("1\t2\t1\twrite\t0\t1\ta\tb\tpipe\t1\t/f").ok());
  EXPECT_FALSE(  // unknown op
      ParseLogLine("1\t2\t1\tfrobnicate\t0\t1\ta\tb\tfile\t1\t/f").ok());
}

TEST(LogFormatTest, FileRoundTripOfAWholeScenario) {
  ScenarioOptions options;
  options.num_clients = 2;
  options.duration = kHour;
  options.events_per_host_per_hour = 200;
  DemoScenarioData data = GenerateDemoScenario(options);

  std::string path = "/tmp/aiql_log_format_test.log";
  ASSERT_TRUE(WriteAuditLog(data.records, path).ok());
  auto loaded = ReadAuditLog(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), data.records.size());

  // Databases built from originals and from the replayed log are identical.
  auto db_a = IngestRecords(data.records, StorageOptions{});
  auto db_b = IngestRecords(*loaded, StorageOptions{});
  ASSERT_TRUE(db_a.ok());
  ASSERT_TRUE(db_b.ok());
  EXPECT_EQ(db_a->stats().total_events, db_b->stats().total_events);
  EXPECT_EQ(db_a->entities().processes().size(),
            db_b->entities().processes().size());
  EXPECT_EQ(db_a->entities().files().size(),
            db_b->entities().files().size());
  EXPECT_EQ(db_a->entities().networks().size(),
            db_b->entities().networks().size());
}

TEST(LogFormatTest, ReaderReportsLineNumbers) {
  std::string path = "/tmp/aiql_log_format_badline.log";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# header\n", f);
  std::fputs(FormatLogLine(SampleFileEvent()).c_str(), f);
  std::fputs("\ngarbage line\n", f);
  std::fclose(f);
  auto loaded = ReadAuditLog(path);
  std::remove(path.c_str());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
}

TEST(LogFormatTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadAuditLog("/tmp/definitely_missing.log").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace aiql
