// AiqlServer integration tests: wire-protocol round-trips, concurrent
// sessions returning byte-identical rows vs the in-process engine,
// admission-control overload, session caps, per-session deadlines killing
// failpoint-stalled queries, and protocol torture (malformed frames must
// produce clean errors, never crashes).

#include "server/aiql_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/net.h"
#include "common/time_utils.h"
#include "engine/aiql_engine.h"
#include "server/protocol.h"
#include "simulator/queries_a.h"
#include "simulator/scenario.h"
#include "storage/database.h"
#include "storage/shard_map.h"

namespace aiql {
namespace {

/// Shared demo-scenario world: one single database plus a 4-way agent-range
/// shard map over the same records; built once for the whole suite.
struct World {
  DemoScenarioData data;
  std::unique_ptr<AuditDatabase> db;
  std::vector<std::unique_ptr<AuditDatabase>> shard_dbs;
  ShardMap shards;
  std::vector<CatalogQuery> catalog;
};

World& GetWorld() {
  static World* world = [] {
    auto* w = new World();
    ScenarioOptions options;
    options.num_clients = 4;
    options.events_per_host_per_hour = 200;  // small but attack-complete
    w->data = GenerateDemoScenario(options);
    auto db = IngestRecords(w->data.records, StorageOptions{});
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    w->db = std::make_unique<AuditDatabase>(std::move(*db));
    AgentId min_agent = UINT32_MAX, max_agent = 0;
    for (const EventRecord& record : w->data.records) {
      min_agent = std::min(min_agent, record.agent_id);
      max_agent = std::max(max_agent, record.agent_id);
    }
    auto ranges = EvenAgentRanges(4, min_agent, max_agent);
    auto routed = RouteRecordsByAgent(ranges, w->data.records);
    EXPECT_TRUE(routed.ok());
    for (size_t s = 0; s < ranges.size(); ++s) {
      auto shard_db = IngestRecords((*routed)[s], StorageOptions{});
      EXPECT_TRUE(shard_db.ok());
      w->shard_dbs.push_back(
          std::make_unique<AuditDatabase>(std::move(*shard_db)));
      EXPECT_TRUE(
          w->shards.AddShard(w->shard_dbs.back().get(), ranges[s]).ok());
    }
    w->catalog = DemoInvestigationQueries(w->data.truth);
    return w;
  }();
  return *world;
}

/// One client connection to a test server, with the hello handshake done.
struct TestClient {
  Connection conn;

  static TestClient Connect(uint16_t port, bool hello = true) {
    TestClient client;
    auto connected = ConnectTo("127.0.0.1", port);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    client.conn = std::move(*connected);
    if (hello) {
      auto greeted = client.Call(EncodeHello());
      EXPECT_TRUE(greeted.ok()) << greeted.status().ToString();
      EXPECT_EQ(greeted->type, MsgType::kHelloOk);
      EXPECT_EQ(greeted->version, kProtocolVersion);
    }
    return client;
  }

  Result<Response> Call(const std::string& frame) {
    AIQL_RETURN_IF_ERROR(conn.WriteFrame(frame));
    AIQL_ASSIGN_OR_RETURN(std::string reply, conn.ReadFrame());
    return DecodeResponse(reply);
  }
};

class ServerTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoint::ClearAll(); }
};

// --- Protocol unit round-trips (no sockets) ---

TEST(ProtocolTest, RequestRoundTrips) {
  auto query = DecodeRequest(EncodeTextRequest(MsgType::kQuery, "proc p"));
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->type, MsgType::kQuery);
  EXPECT_EQ(query->text, "proc p");

  TrackCommand command;
  command.request.name_like = "%db.bak%";
  command.request.type = EntityType::kNetwork;
  command.request.anchor = int64_t{-12345};
  command.request.options.backward = true;
  command.request.options.max_depth = 7;
  command.request.options.max_fanout = 9;
  command.request.options.max_nodes = 11;
  command.request.options.hop_window = 30 * kMinute;
  command.want_cypher = true;
  auto track = DecodeRequest(EncodeTrack(command));
  ASSERT_TRUE(track.ok());
  EXPECT_EQ(track->type, MsgType::kTrack);
  EXPECT_EQ(track->track.request.name_like, "%db.bak%");
  EXPECT_EQ(track->track.request.type, EntityType::kNetwork);
  ASSERT_TRUE(track->track.request.anchor.has_value());
  EXPECT_EQ(*track->track.request.anchor, -12345);
  EXPECT_TRUE(track->track.request.options.backward);
  EXPECT_EQ(track->track.request.options.max_depth, 7);
  EXPECT_EQ(track->track.request.options.max_fanout, 9u);
  EXPECT_EQ(track->track.request.options.max_nodes, 11u);
  EXPECT_EQ(track->track.request.options.hop_window, 30 * kMinute);
  EXPECT_FALSE(track->track.want_dot);
  EXPECT_TRUE(track->track.want_cypher);

  auto option = DecodeRequest(EncodeSetOption("timeout_ms", "250"));
  ASSERT_TRUE(option.ok());
  EXPECT_EQ(option->option_name, "timeout_ms");
  EXPECT_EQ(option->option_value, "250");
}

TEST(ProtocolTest, ResponseRoundTripsPreserveValueTypes) {
  QueryReply reply;
  reply.table.columns = {"s", "i", "d"};
  reply.table.rows.push_back(
      {std::string("text"), int64_t{-42}, 0.1 + 0.2});
  reply.stats.events_scanned = 12345;
  reply.stats.parse_time = -1;  // signed fields survive
  reply.degraded = "PARTIAL 1/2 shards";
  auto decoded = DecodeResponse(EncodeQueryOk(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kQueryOk);
  // operator== over the variant rows: exact, including the double bits.
  EXPECT_EQ(decoded->query.table, reply.table);
  EXPECT_EQ(decoded->query.stats.events_scanned, 12345u);
  EXPECT_EQ(decoded->query.stats.parse_time, -1);
  EXPECT_EQ(decoded->query.degraded, "PARTIAL 1/2 shards");

  auto error = DecodeResponse(
      EncodeError(Status::ResourceExhausted("queue full")));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, MsgType::kError);
  EXPECT_EQ(error->error.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(error->error.message(), "queue full");
}

TEST(ProtocolTest, DecodersRejectMalformedPayloads) {
  EXPECT_FALSE(DecodeRequest("").ok());
  EXPECT_FALSE(DecodeResponse("").ok());
  // Unknown discriminators.
  EXPECT_FALSE(DecodeRequest(std::string(1, '\x3f')).ok());
  EXPECT_FALSE(DecodeResponse(std::string(1, '\x01')).ok());
  // Trailing bytes after a valid message.
  EXPECT_FALSE(DecodeRequest(EncodeBare(MsgType::kPing) + "x").ok());
  EXPECT_FALSE(DecodeResponse(EncodePong() + "x").ok());
  // Truncations at every prefix of a structured message.
  std::string track = EncodeTrack(TrackCommand{});
  for (size_t cut = 1; cut < track.size(); ++cut) {
    EXPECT_FALSE(DecodeRequest(track.substr(0, cut)).ok())
        << "accepted prefix of " << cut << " bytes";
  }
  QueryReply reply;
  reply.table.columns = {"a"};
  reply.table.rows.push_back({int64_t{1}});
  std::string ok_frame = EncodeQueryOk(reply);
  for (size_t cut = 1; cut < ok_frame.size(); ++cut) {
    EXPECT_FALSE(DecodeResponse(ok_frame.substr(0, cut)).ok());
  }
  // A forged row count cannot force a huge reservation: counts larger than
  // the remaining payload are rejected up front.
  std::string forged;
  forged.push_back(static_cast<char>(MsgType::kQueryOk));
  forged += '\x01';          // 1 column
  forged += '\x01';          // name length 1
  forged += 'c';
  forged += "\xff\xff\xff\xff\x0f";  // varint row count ~4 billion
  EXPECT_FALSE(DecodeResponse(forged).ok());
}

// --- Live server ---

TEST_F(ServerTest, HelloPingAndStats) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), &world.shards);
  ASSERT_TRUE(server.Start().ok());
  TestClient client = TestClient::Connect(server.port());
  auto pong = client.Call(EncodeBare(MsgType::kPing));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, MsgType::kPong);
  auto stats = client.Call(EncodeBare(MsgType::kStats));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->type, MsgType::kStatsOk);
  EXPECT_NE(stats->text.find("4 shards"), std::string::npos) << stats->text;
  server.Stop();
}

TEST_F(ServerTest, HelloVersionMismatchIsRejected) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), nullptr);
  ASSERT_TRUE(server.Start().ok());
  TestClient client = TestClient::Connect(server.port(), /*hello=*/false);
  // A hand-built hello claiming protocol version 99.
  std::string hello;
  hello.push_back(static_cast<char>(MsgType::kHello));
  hello.push_back('\x63');
  auto reply = client.Call(hello);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kError);
  EXPECT_EQ(reply->error.code(), StatusCode::kInvalidArgument);
  server.Stop();
}

TEST_F(ServerTest, EightConcurrentSessionsMatchInProcessByteForByte) {
  World& world = GetWorld();
  ServerOptions options;
  options.max_concurrent_queries = 4;
  AiqlServer server(world.db.get(), &world.shards, options);
  ASSERT_TRUE(server.Start().ok());

  // In-process oracle over the same shard map and engine configuration the
  // server uses for sharded-strict sessions.
  EngineOptions engine_options;
  AiqlEngine oracle(&world.shards, engine_options);
  struct Expected {
    std::string text;
    Status status = Status::OK();
    ResultTable table;
  };
  std::vector<Expected> expected;
  for (const CatalogQuery& query : world.catalog) {
    Expected e;
    e.text = query.text;
    auto result = oracle.Execute(query.text);
    if (result.ok()) {
      e.table = result->table;
      e.table.SortRows();
    } else {
      e.status = result.status();
    }
    expected.push_back(std::move(e));
  }

  constexpr size_t kSessions = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      TestClient client = TestClient::Connect(server.port());
      // Each session walks the whole catalog starting at its own offset so
      // different queries are in flight simultaneously.
      for (size_t q = 0; q < expected.size(); ++q) {
        const Expected& e = expected[(s + q) % expected.size()];
        auto reply = client.Call(EncodeTextRequest(MsgType::kQuery, e.text));
        if (!reply.ok()) {
          ++mismatches;
          continue;
        }
        if (!e.status.ok()) {
          if (reply->type != MsgType::kError ||
              reply->error.code() != e.status.code()) {
            ++mismatches;
          }
          continue;
        }
        if (reply->type != MsgType::kQueryOk) {
          ++mismatches;
          continue;
        }
        ResultTable table = std::move(reply->query.table);
        table.SortRows();
        if (!(table == e.table)) ++mismatches;
      }
    });
  }
  for (std::thread& session : sessions) session.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().sessions_accepted, kSessions);
  server.Stop();
}

TEST_F(ServerTest, TrackMatchesInProcessRendering) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), &world.shards);
  ASSERT_TRUE(server.Start().ok());

  TrackCommand command;
  command.request.name_like = "%" + world.data.truth.attacker_ip + "%";
  command.request.type = EntityType::kNetwork;
  command.request.options.backward = true;
  command.request.options.max_depth = 4;

  EngineOptions engine_options;
  AiqlEngine oracle(&world.shards, engine_options);
  auto local = oracle.Track(command.request);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_GT(local->nodes.size(), 0u);
  ResultTable expected;
  expected.columns = {"depth", "type", "entity", "bound"};
  for (const ProvenanceNode& node : local->nodes) {
    expected.rows.push_back(
        {std::string(std::to_string(node.depth)),
         std::string(EntityTypeToString(node.type)),
         world.shards.entities(node.shard).EntityName(node.type, node.id),
         node.bound == INT64_MAX || node.bound == INT64_MIN
             ? std::string("-")
             : FormatTimestamp(node.bound)});
  }
  expected.SortRows();

  TestClient client = TestClient::Connect(server.port());
  auto reply = client.Call(EncodeTrack(command));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kTrackOk);
  ResultTable remote = std::move(reply->track.table);
  remote.SortRows();
  EXPECT_TRUE(remote == expected);
  EXPECT_NE(reply->track.summary.find("roots"), std::string::npos);
  EXPECT_EQ(server.stats().tracks_executed, 1u);
  server.Stop();
}

TEST_F(ServerTest, ExplainAndCheckTravelTheWire) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), nullptr);
  ASSERT_TRUE(server.Start().ok());
  const std::string query = "proc p read file f return distinct p limit 3";

  EngineOptions engine_options;
  AiqlEngine oracle(world.db.get(), engine_options);
  auto local_plan = oracle.Explain(query);
  ASSERT_TRUE(local_plan.ok());

  TestClient client = TestClient::Connect(server.port());
  auto plan = client.Call(EncodeTextRequest(MsgType::kExplain, query));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->type, MsgType::kExplainOk);
  EXPECT_EQ(plan->text, *local_plan);

  auto check = client.Call(EncodeTextRequest(MsgType::kCheck, query));
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->type, MsgType::kCheckOk);
  EXPECT_EQ(check->text, "multievent");

  auto bad = client.Call(EncodeTextRequest(MsgType::kCheck, "%%nonsense"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->type, MsgType::kError);
  server.Stop();
}

TEST_F(ServerTest, AdmissionOverloadRepliesResourceExhausted) {
  World& world = GetWorld();
  ServerOptions options;
  options.max_concurrent_queries = 1;
  options.admission_queue_depth = 0;  // no queue: reject immediately
  AiqlServer server(world.db.get(), &world.shards, options);
  ASSERT_TRUE(server.Start().ok());

  // Stall the scatter path so the first query holds the only slot.
  ASSERT_TRUE(Failpoint::Configure("shard.scatter=latency(400000)").ok());
  TestClient slow = TestClient::Connect(server.port());
  TestClient fast = TestClient::Connect(server.port());
  const std::string query = "proc p read file f return distinct p limit 1";
  ASSERT_TRUE(slow.conn.WriteFrame(
      EncodeTextRequest(MsgType::kQuery, query)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto start = std::chrono::steady_clock::now();
  auto rejected = fast.Call(EncodeTextRequest(MsgType::kQuery, query));
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_EQ(rejected->type, MsgType::kError);
  EXPECT_EQ(rejected->error.code(), StatusCode::kResourceExhausted);
  // Overload must answer instantly, not after the slow query finishes.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            300);

  // The stalled query itself still completes normally.
  auto slow_reply = slow.conn.ReadFrame();
  ASSERT_TRUE(slow_reply.ok());
  auto decoded = DecodeResponse(*slow_reply);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kQueryOk);
  EXPECT_GE(server.stats().queries_rejected, 1u);
  server.Stop();
}

TEST_F(ServerTest, SessionCapRefusesExtraConnections) {
  World& world = GetWorld();
  ServerOptions options;
  options.max_sessions = 1;
  AiqlServer server(world.db.get(), nullptr, options);
  ASSERT_TRUE(server.Start().ok());
  TestClient first = TestClient::Connect(server.port());
  // The second connection gets an error frame instead of a session.
  auto second = ConnectTo("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok());
  auto refusal = second->ReadFrame();
  ASSERT_TRUE(refusal.ok()) << refusal.status().ToString();
  auto decoded = DecodeResponse(*refusal);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kError);
  EXPECT_EQ(decoded->error.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.stats().sessions_rejected, 1u);
  // The first session is unaffected.
  auto pong = first.Call(EncodeBare(MsgType::kPing));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, MsgType::kPong);
  server.Stop();
}

TEST_F(ServerTest, SessionDeadlineKillsStalledQueryWithinTwiceTheDeadline) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), &world.shards);
  ASSERT_TRUE(server.Start().ok());
  TestClient client = TestClient::Connect(server.port());
  auto option = client.Call(EncodeSetOption("timeout_ms", "500"));
  ASSERT_TRUE(option.ok());
  ASSERT_EQ(option->type, MsgType::kOptionOk);

  // Each scatter hit would stall 10s; the 500ms session deadline must cut
  // through (InterruptibleSleep polls the bound context).
  ASSERT_TRUE(Failpoint::Configure("shard.scatter=latency(10000000)").ok());
  auto start = std::chrono::steady_clock::now();
  auto reply = client.Call(EncodeTextRequest(
      MsgType::kQuery, "proc p read file f return distinct p limit 1"));
  auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kError);
  EXPECT_EQ(reply->error.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(wall_ms, 1000) << "deadline kill took " << wall_ms << " ms";
  server.Stop();
}

TEST_F(ServerTest, SetOptionValidatesAndGoverns) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), &world.shards);
  ASSERT_TRUE(server.Start().ok());
  TestClient client = TestClient::Connect(server.port());

  // Malformed numerics are rejected by the shared checked parser.
  for (const char* bad : {"abc", "12x", "-5", "0", "99999999999999999999"}) {
    auto reply = client.Call(EncodeSetOption("timeout_ms", bad));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, MsgType::kError) << "accepted: " << bad;
    EXPECT_EQ(reply->error.code(), StatusCode::kInvalidArgument);
  }
  auto unknown = client.Call(EncodeSetOption("no_such_option", "1"));
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->type, MsgType::kError);
  // The server's layout is fixed: numeric shard counts are refused with a
  // message naming it.
  auto numeric = client.Call(EncodeSetOption("shards", "16"));
  ASSERT_TRUE(numeric.ok());
  ASSERT_EQ(numeric->type, MsgType::kError);
  EXPECT_NE(numeric->error.message().find("fixed"), std::string::npos);

  // A rows budget of 1 turns a multi-row query into kResourceExhausted.
  auto budget = client.Call(EncodeSetOption("rows", "1"));
  ASSERT_TRUE(budget.ok());
  ASSERT_EQ(budget->type, MsgType::kOptionOk);
  auto governed = client.Call(EncodeTextRequest(
      MsgType::kQuery, "proc p read file f return distinct p"));
  ASSERT_TRUE(governed.ok());
  ASSERT_EQ(governed->type, MsgType::kError);
  EXPECT_EQ(governed->error.code(), StatusCode::kResourceExhausted);
  // budget_off restores the session.
  ASSERT_TRUE(client.Call(EncodeSetOption("budget_off", "")).ok());
  auto clean = client.Call(EncodeTextRequest(
      MsgType::kQuery, "proc p read file f return distinct p limit 2"));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->type, MsgType::kQueryOk);
  server.Stop();
}

TEST_F(ServerTest, SessionsSwitchBackendsIndependently) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), &world.shards);
  ASSERT_TRUE(server.Start().ok());
  TestClient sharded = TestClient::Connect(server.port());
  TestClient single = TestClient::Connect(server.port());
  auto switched = single.Call(EncodeSetOption("shards", "off"));
  ASSERT_TRUE(switched.ok());
  ASSERT_EQ(switched->type, MsgType::kOptionOk);
  // Both modes agree on the rows for the same query (single-db vs
  // scatter/gather differential, now through two live sessions). No LIMIT:
  // a limit binds before cross-engine ordering, so only the full distinct
  // set is comparable.
  const std::string query = "proc p read file f return distinct p";
  auto from_shards = sharded.Call(EncodeTextRequest(MsgType::kQuery, query));
  auto from_single = single.Call(EncodeTextRequest(MsgType::kQuery, query));
  ASSERT_TRUE(from_shards.ok());
  ASSERT_TRUE(from_single.ok());
  ASSERT_EQ(from_shards->type, MsgType::kQueryOk);
  ASSERT_EQ(from_single->type, MsgType::kQueryOk);
  ResultTable a = std::move(from_shards->query.table);
  ResultTable b = std::move(from_single->query.table);
  a.SortRows();
  b.SortRows();
  EXPECT_TRUE(a == b);
  server.Stop();
}

TEST_F(ServerTest, TortureMalformedFramesNeverKillTheServer) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), &world.shards);
  ASSERT_TRUE(server.Start().ok());

  {
    // Body-level garbage: error reply, session survives.
    TestClient client = TestClient::Connect(server.port());
    auto garbage = client.Call(std::string("\x02\xff\xff\xff\xff", 5));
    ASSERT_TRUE(garbage.ok());
    EXPECT_EQ(garbage->type, MsgType::kError);
    auto empty = client.Call("");
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty->type, MsgType::kError);
    auto unknown_type = client.Call(std::string(1, '\x3f'));
    ASSERT_TRUE(unknown_type.ok());
    EXPECT_EQ(unknown_type->type, MsgType::kError);
    auto pong = client.Call(EncodeBare(MsgType::kPing));
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong->type, MsgType::kPong);
  }
  {
    // Oversized declaration: clean error reply, then the stream ends.
    TestClient client = TestClient::Connect(server.port());
    ASSERT_TRUE(client.conn.WriteBytes("\xff\xff\xff\x7f", 4).ok());
    auto refusal = client.conn.ReadFrame();
    ASSERT_TRUE(refusal.ok()) << refusal.status().ToString();
    auto decoded = DecodeResponse(*refusal);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, MsgType::kError);
    EXPECT_EQ(decoded->error.code(), StatusCode::kInvalidArgument);
  }
  {
    // Truncated prefix then disconnect.
    TestClient client = TestClient::Connect(server.port(), /*hello=*/false);
    ASSERT_TRUE(client.conn.WriteBytes("\x10\x00", 2).ok());
    client.conn.Close();
  }
  {
    // Mid-frame disconnect.
    TestClient client = TestClient::Connect(server.port(), /*hello=*/false);
    ASSERT_TRUE(client.conn.WriteBytes("\x40\x00\x00\x00half", 8).ok());
    client.conn.Close();
  }
  // Give the reaper a moment, then prove the server still serves cleanly.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  TestClient survivor = TestClient::Connect(server.port());
  auto result = survivor.Call(EncodeTextRequest(
      MsgType::kQuery, "proc p read file f return distinct p limit 2"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->type, MsgType::kQueryOk);
  EXPECT_GE(server.stats().frames_rejected, 3u);
  server.Stop();
}

TEST_F(ServerTest, StopCancelsInFlightQueriesAndJoins) {
  World& world = GetWorld();
  AiqlServer server(world.db.get(), &world.shards);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(Failpoint::Configure("shard.scatter=latency(10000000)").ok());
  TestClient client = TestClient::Connect(server.port());
  ASSERT_TRUE(client.conn.WriteFrame(EncodeTextRequest(
      MsgType::kQuery, "proc p read file f return distinct p limit 1"))
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto start = std::chrono::steady_clock::now();
  server.Stop();  // must cancel the 40s worth of injected stalls
  auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(stop_ms, 2000) << "Stop() took " << stop_ms << " ms";
}

}  // namespace
}  // namespace aiql
