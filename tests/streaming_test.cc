// Streaming-ingest tests: bucket rotation and size-threshold rollover with
// automatic per-partition sealing, ReadView snapshot semantics, write-path
// status propagation (Flush/AppendBatch), final-seal append rejection, and
// a multi-threaded ingest-vs-query consistency check (run under TSAN in
// CI's tsan job).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "engine/aiql_engine.h"
#include "simulator/replay.h"
#include "simulator/scenario.h"
#include "storage/database.h"
#include "storage/shard_map.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord Rec(AgentId agent, OpType op, Timestamp start, std::string exe,
                ObjectRef object, uint64_t amount = 1) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = amount;
  record.subject = ProcessRef{agent, 100, std::move(exe), "root"};
  record.object = std::move(object);
  return record;
}

StorageOptions MinuteBuckets() {
  StorageOptions options;
  options.partition_duration = kMinute;
  options.dedup_window = 0;
  options.batch_commit_size = 1;  // commit every append
  return options;
}

TEST(StreamingTest, BucketRotationSealsClosedPartitions) {
  AuditDatabase db(MinuteBuckets());
  FileRef file{1, "/f"};
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0(), "a", file)).ok());
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0() + 10 * kSecond, "a", file)).ok());
  {
    // Both events sit in the active (open) bucket: committed but invisible.
    ReadView view = db.OpenReadView();
    EXPECT_EQ(view.partitions().size(), 0u);
    EXPECT_EQ(view.visible_events(), 0u);
    EXPECT_EQ(view.stats().total_events, 2u);
  }
  // Crossing into the next bucket rotates and seals the previous one.
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0() + kMinute, "a", file)).ok());
  {
    ReadView view = db.OpenReadView();
    ASSERT_EQ(view.partitions().size(), 1u);
    EXPECT_TRUE(view.partitions()[0].second->sealed());
    EXPECT_EQ(view.visible_events(), 2u);
    EXPECT_EQ(view.stats().total_events, 3u);
  }
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0() + 2 * kMinute, "a", file)).ok());
  {
    ReadView view = db.OpenReadView();
    EXPECT_EQ(view.partitions().size(), 2u);
    EXPECT_EQ(view.visible_events(), 3u);
  }
  // The explicit Seal() flushes-and-seals everything that remains.
  ASSERT_TRUE(db.Seal().ok());
  ReadView view = db.OpenReadView();
  EXPECT_EQ(view.partitions().size(), 3u);
  EXPECT_EQ(view.visible_events(), 4u);
  EXPECT_EQ(view.visible_events(), view.stats().total_events);
}

TEST(StreamingTest, SizeThresholdRollsOverWithinBucket) {
  StorageOptions options = MinuteBuckets();
  options.max_partition_events = 2;
  AuditDatabase db(options);
  FileRef file{1, "/f"};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        db.Append(Rec(1, OpType::kWrite, T0() + i * kSecond, "a", file)).ok());
  }
  {
    // 5 same-bucket events with threshold 2: two sealed rollover partitions
    // plus one still-open partition holding the 5th event.
    ReadView view = db.OpenReadView();
    EXPECT_EQ(view.partitions().size(), 2u);
    EXPECT_EQ(view.visible_events(), 4u);
  }
  ASSERT_TRUE(db.Seal().ok());
  ReadView view = db.OpenReadView();
  EXPECT_EQ(view.partitions().size(), 3u);
  EXPECT_EQ(view.visible_events(), 5u);
  // All three physical partitions share the (bucket, agent) pair and are
  // all selected for a scan of the bucket's range.
  auto selected =
      view.SelectPartitions(TimeRange{T0(), T0() + kMinute}, std::nullopt);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 3u);
  EXPECT_EQ(db.stats().total_partitions, 3u);
  EXPECT_EQ(db.stats().partitions_sealed, 3u);
}

TEST(StreamingTest, LateEventOpensOverflowPartition) {
  AuditDatabase db(MinuteBuckets());
  FileRef file{1, "/f"};
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0(), "a", file)).ok());
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0() + kMinute, "a", file)).ok());
  // Bucket 0 is sealed now; a late arrival must not touch the sealed
  // partition — it opens an overflow partition of the same bucket.
  ASSERT_TRUE(
      db.Append(Rec(1, OpType::kWrite, T0() + 30 * kSecond, "a", file)).ok());
  ASSERT_TRUE(db.Seal().ok());
  EXPECT_EQ(db.stats().total_partitions, 3u);
  ReadView view = db.OpenReadView();
  EXPECT_EQ(view.visible_events(), 3u);
  auto first_bucket =
      view.SelectPartitions(TimeRange{T0(), T0() + kMinute}, std::nullopt);
  ASSERT_TRUE(first_bucket.ok());
  ASSERT_EQ(first_bucket->size(), 2u);
  EXPECT_EQ((*first_bucket)[0].second->size() +
                (*first_bucket)[1].second->size(),
            2u);
}

TEST(StreamingTest, AppendsDuringStreamingAcceptedUntilFinalSeal) {
  AuditDatabase db(MinuteBuckets());
  FileRef file{1, "/f"};
  // Rotations (auto-sealing individual partitions) never reject appends.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        db.Append(Rec(1, OpType::kWrite, T0() + i * kMinute, "a", file)).ok());
    EXPECT_FALSE(db.sealed());
  }
  ASSERT_TRUE(db.Seal().ok());
  EXPECT_TRUE(db.sealed());
  // After the final seal the historical contract holds: appends error.
  Status status = db.Append(Rec(1, OpType::kWrite, T0() + kHour, "a", file));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(StreamingTest, AppendBatchIsAllOrNothingOnInvalidRecord) {
  AuditDatabase db(MinuteBuckets());
  FileRef file{1, "/f"};
  std::vector<EventRecord> batch;
  batch.push_back(Rec(1, OpType::kWrite, T0(), "a", file));
  EventRecord bad = Rec(1, OpType::kWrite, T0() + kSecond, "a", file);
  bad.end_ts = bad.start_ts - 1;  // ends before it starts
  batch.push_back(bad);
  batch.push_back(Rec(1, OpType::kWrite, T0() + 2 * kSecond, "a", file));
  EXPECT_FALSE(db.AppendBatch(std::move(batch)).ok());
  // Nothing from the failed batch was applied — not even the valid prefix.
  EXPECT_TRUE(db.Flush().ok());
  EXPECT_EQ(db.StatsSnapshot().total_events, 0u);

  // A subsequent valid batch commits normally.
  std::vector<EventRecord> good;
  good.push_back(Rec(1, OpType::kWrite, T0(), "a", file));
  good.push_back(Rec(1, OpType::kRead, T0() + 2 * kSecond, "a", file));
  EXPECT_TRUE(db.AppendBatch(std::move(good)).ok());
  ASSERT_TRUE(db.Seal().ok());
  EXPECT_EQ(db.stats().total_events, 2u);
}

TEST(StreamingTest, FlushAndSealReportStatus) {
  AuditDatabase db(MinuteBuckets());
  EXPECT_TRUE(db.Flush().ok());  // empty flush
  ASSERT_TRUE(db.Append(Rec(1, OpType::kWrite, T0(), "a", FileRef{1, "/f"})).ok());
  EXPECT_TRUE(db.Flush().ok());
  EXPECT_TRUE(db.Seal().ok());
  EXPECT_TRUE(db.Seal().ok());  // idempotent
}

// The satellite concurrency test: one thread streams records (bucket
// rotation + background sealing on a shared pool) while query threads open
// ReadViews and run a fig4-style two-pattern multievent query. Every view
// must be consistent: only fully-sealed partitions, monotonically
// non-decreasing visible events, and monotonically non-decreasing query
// results; after the final seal the query must see everything.
TEST(StreamingTest, ConcurrentIngestAndQueriesSeeConsistentViews) {
  constexpr int kBuckets = 24;
  constexpr int kNoisePerBucket = 40;

  std::vector<EventRecord> records;
  for (int b = 0; b < kBuckets; ++b) {
    Timestamp base = T0() + b * kMinute;
    for (int i = 0; i < kNoisePerBucket; ++i) {
      records.push_back(Rec(1 + (i % 2), OpType::kWrite, base + i * kSecond,
                            "noise.exe", FileRef{1u + (i % 2), "/tmp/noise"}));
    }
    // The attack pair: a read of the secret then an exfil write, once per
    // bucket. Reads pair with all later-or-same-bucket writes: with k
    // buckets ingested the query yields k * (k + 1) / 2 rows.
    records.push_back(Rec(1, OpType::kRead, base + 10 * kSecond,
                          "attacker.exe", FileRef{1, "/secret/key.pem"}));
    records.push_back(
        Rec(1, OpType::kWrite, base + 20 * kSecond, "attacker.exe",
            NetworkRef{1, "10.0.0.1", "6.6.6.6", 50000, 443, "tcp"}));
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.start_ts < b.start_ts;
                   });
  const size_t expected_rows = kBuckets * (kBuckets + 1) / 2;
  const std::string query =
      "proc p1[\"%attacker.exe\"] read file f1[\"%key.pem\"] as e1 "
      "proc p1 write ip i1[dstip = \"6.6.6.6\"] as e2 "
      "with e1 before e2 "
      "return f1, i1";

  ThreadPool seal_pool(2);
  StorageOptions storage = MinuteBuckets();
  storage.batch_commit_size = 32;
  storage.seal_pool = &seal_pool;
  AuditDatabase db(storage);

  EngineOptions engine_options;
  engine_options.num_threads = 2;
  AiqlEngine engine(&db, engine_options);

  ReplayOptions replay;
  replay.batch_size = 16;
  StreamReplayer replayer(&db, &records, replay);

  std::atomic<bool> failed{false};
  auto query_loop = [&] {
    uint64_t last_visible = 0;
    size_t last_rows = 0;
    int iterations = 0;
    do {
      ++iterations;
      {
        ReadView view = db.OpenReadView();
        for (const auto& [key, partition] : view.partitions()) {
          if (!partition->sealed()) {
            ADD_FAILURE() << "view exposed a partially-sealed partition";
            failed.store(true);
            return;
          }
        }
        if (view.visible_events() < last_visible) {
          ADD_FAILURE() << "visible events moved backwards";
          failed.store(true);
          return;
        }
        last_visible = view.visible_events();
        if (view.stats().total_events < view.visible_events()) {
          ADD_FAILURE() << "stats behind visible partitions";
          failed.store(true);
          return;
        }
      }
      auto result = engine.Execute(query);
      if (!result.ok()) {
        ADD_FAILURE() << "query failed: " << result.status().ToString();
        failed.store(true);
        return;
      }
      size_t rows = result->table.num_rows();
      if (rows < last_rows || rows > expected_rows) {
        ADD_FAILURE() << "rows not monotone: " << rows << " after "
                      << last_rows;
        failed.store(true);
        return;
      }
      last_rows = rows;
    } while (!replayer.done() && iterations < 100000);
  };

  replayer.Start();
  std::thread reader_a(query_loop);
  std::thread reader_b(query_loop);
  reader_a.join();
  reader_b.join();
  ASSERT_TRUE(replayer.Join().ok());
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(replayer.ingested(), records.size());

  ASSERT_TRUE(db.Seal().ok());
  auto final_result = engine.Execute(query);
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  EXPECT_EQ(final_result->table.num_rows(), expected_rows);
  ReadView view = db.OpenReadView();
  EXPECT_EQ(view.visible_events(), view.stats().total_events);
  EXPECT_EQ(view.stats().total_events, db.stats().total_events);
}

TEST(StreamingTest, ShardedQueriesSeeConsistentViewsDuringConcurrentIngest) {
  // Two shards ingest concurrently while readers run a cross-shard join
  // through the sharded engine (run under TSAN in CI's tsan job). Shard 0
  // owns agent 1 (the secret reads), shard 1 owns agent 2 (the exfil
  // writes); the writes' subject is the agent-1 attacker process, so every
  // result row joins events living on different shards and the semi-join
  // bindings must cross the shard boundary.
  constexpr int kBuckets = 16;
  constexpr int kNoisePerBucket = 30;

  ProcessRef attacker{1, 100, "attacker.exe", "root"};
  std::vector<EventRecord> shard0_records, shard1_records;
  for (int b = 0; b < kBuckets; ++b) {
    Timestamp base = T0() + b * kMinute;
    for (int i = 0; i < kNoisePerBucket; ++i) {
      shard0_records.push_back(Rec(1, OpType::kWrite, base + i * kSecond,
                                   "noise.exe", FileRef{1, "/tmp/noise"}));
      shard1_records.push_back(Rec(2, OpType::kWrite, base + i * kSecond,
                                   "noise.exe", FileRef{2, "/tmp/noise"}));
    }
    shard0_records.push_back(Rec(1, OpType::kRead, base + 10 * kSecond,
                                 "attacker.exe",
                                 FileRef{1, "/secret/key.pem"}));
    EventRecord exfil =
        Rec(2, OpType::kWrite, base + 20 * kSecond, "attacker.exe",
            NetworkRef{2, "10.0.0.2", "6.6.6.6", 50000, 443, "tcp"});
    exfil.subject = attacker;  // agent-1 process observed on agent 2
    shard1_records.push_back(exfil);
  }
  auto by_start = [](const EventRecord& a, const EventRecord& b) {
    return a.start_ts < b.start_ts;
  };
  std::stable_sort(shard0_records.begin(), shard0_records.end(), by_start);
  std::stable_sort(shard1_records.begin(), shard1_records.end(), by_start);
  const size_t expected_rows = kBuckets * (kBuckets + 1) / 2;
  const std::string query =
      "proc p1[\"%attacker.exe\"] read file f1[\"%key.pem\"] as e1 "
      "proc p1 write ip i1[dstip = \"6.6.6.6\"] as e2 "
      "with e1 before e2 "
      "return f1, i1";

  ThreadPool seal_pool(2);
  StorageOptions storage = MinuteBuckets();
  storage.batch_commit_size = 32;
  storage.seal_pool = &seal_pool;
  AuditDatabase shard0(storage);
  AuditDatabase shard1(storage);
  ShardMap map;
  ASSERT_TRUE(map.AddShard(&shard0, ShardRange{1, 2}).ok());
  ASSERT_TRUE(map.AddShard(&shard1, ShardRange{2, 3}).ok());

  EngineOptions engine_options;
  engine_options.num_threads = 2;
  AiqlEngine engine(&map, engine_options);

  ReplayOptions replay;
  replay.batch_size = 16;
  StreamReplayer replayer0(&shard0, &shard0_records, replay);
  StreamReplayer replayer1(&shard1, &shard1_records, replay);

  std::atomic<bool> failed{false};
  auto query_loop = [&] {
    size_t last_rows = 0;
    int iterations = 0;
    do {
      ++iterations;
      auto result = engine.Execute(query);
      if (!result.ok()) {
        ADD_FAILURE() << "sharded query failed: "
                      << result.status().ToString();
        failed.store(true);
        return;
      }
      // Each shard's view is taken atomically at scatter time, and both
      // shards only grow: the cross-shard row count must be monotone.
      size_t rows = result->table.num_rows();
      if (rows < last_rows || rows > expected_rows) {
        ADD_FAILURE() << "rows not monotone: " << rows << " after "
                      << last_rows;
        failed.store(true);
        return;
      }
      last_rows = rows;
    } while (!(replayer0.done() && replayer1.done()) && iterations < 100000);
  };

  replayer0.Start();
  replayer1.Start();
  std::thread reader_a(query_loop);
  std::thread reader_b(query_loop);
  reader_a.join();
  reader_b.join();
  ASSERT_TRUE(replayer0.Join().ok());
  ASSERT_TRUE(replayer1.Join().ok());
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(replayer0.ingested(), shard0_records.size());
  EXPECT_EQ(replayer1.ingested(), shard1_records.size());

  ASSERT_TRUE(shard0.Seal().ok());
  ASSERT_TRUE(shard1.Seal().ok());
  auto final_result = engine.Execute(query);
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  EXPECT_EQ(final_result->table.num_rows(), expected_rows);

  // Differential close: the sealed sharded result matches a merged single
  // database bit for bit (modulo row order).
  std::vector<EventRecord> merged = shard0_records;
  merged.insert(merged.end(), shard1_records.begin(), shard1_records.end());
  std::stable_sort(merged.begin(), merged.end(), by_start);
  auto merged_db = IngestRecords(merged, MinuteBuckets());
  ASSERT_TRUE(merged_db.ok()) << merged_db.status().ToString();
  AiqlEngine single(&*merged_db, engine_options);
  auto reference = single.Execute(query);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ResultTable sharded_table = final_result->table;
  ResultTable reference_table = reference->table;
  sharded_table.SortRows();
  reference_table.SortRows();
  EXPECT_EQ(sharded_table, reference_table);
}

}  // namespace
}  // namespace aiql
