// End-to-end integration: scenario -> snapshot -> reload -> identical query
// results across storage round-trips and engine configurations; plus
// seed-parameterized differential checks between the AIQL engine and the
// SQL baseline on the full demo catalog.

#include <gtest/gtest.h>

#include <cstdio>

#include "engine/aiql_engine.h"
#include "query/parser.h"
#include "simulator/queries_a.h"
#include "simulator/scenario.h"
#include "sql/catalog.h"
#include "sql/sql_executor.h"
#include "sql/translator.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

ScenarioOptions TinyScenario(uint64_t seed) {
  ScenarioOptions options;
  options.num_clients = 2;
  options.duration = 3 * kHour;
  options.events_per_host_per_hour = 250;
  options.seed = seed;
  return options;
}

TEST(EndToEndTest, SnapshotRoundTripPreservesQueryResults) {
  DemoScenarioData data = GenerateDemoScenario(TinyScenario(3));
  auto db = IngestRecords(data.records, StorageOptions{});
  ASSERT_TRUE(db.ok());

  std::string path = "/tmp/aiql_e2e_snapshot.snap";
  ASSERT_TRUE(SaveSnapshot(*db, path).ok());
  auto reloaded = LoadSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  AiqlEngine original(&*db);
  AiqlEngine restored(&*reloaded);
  for (const CatalogQuery& query : DemoInvestigationQueries(data.truth)) {
    auto a = original.Execute(query.text);
    auto b = restored.Execute(query.text);
    ASSERT_TRUE(a.ok()) << query.id;
    ASSERT_TRUE(b.ok()) << query.id;
    a->table.SortRows();
    b->table.SortRows();
    EXPECT_EQ(a->table, b->table) << query.id;
  }
}

// Property-style sweep: for several seeds, the AIQL engine and the SQL
// baseline agree on every demo-catalog query (multievent, dependency, and
// anomaly alike).
class DifferentialSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSweep, AiqlAndSqlAgreeOnTheWholeCatalog) {
  DemoScenarioData data = GenerateDemoScenario(TinyScenario(GetParam()));
  auto db = IngestRecords(data.records, StorageOptions{});
  ASSERT_TRUE(db.ok());
  AiqlEngine engine(&*db);
  OptimizedCatalog catalog(&*db);
  SqlExecutor sql(&catalog);

  for (const CatalogQuery& query : DemoInvestigationQueries(data.truth)) {
    auto aiql_result = engine.Execute(query.text);
    ASSERT_TRUE(aiql_result.ok())
        << query.id << ": " << aiql_result.status().ToString();

    auto parsed = ParseAiql(query.text);
    ASSERT_TRUE(parsed.ok());
    auto translated = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
    ASSERT_TRUE(translated.ok())
        << query.id << ": " << translated.status().ToString();
    auto sql_result = sql.Execute(translated->sql);
    ASSERT_TRUE(sql_result.ok())
        << query.id << ": " << sql_result.status().ToString();

    aiql_result->table.SortRows();
    sql_result->table.SortRows();
    ASSERT_EQ(sql_result->table.num_rows(), aiql_result->table.num_rows())
        << query.id << "\n" << translated->sql;
    for (size_t r = 0; r < sql_result->table.rows.size(); ++r) {
      for (size_t c = 0; c < sql_result->table.rows[r].size(); ++c) {
        EXPECT_EQ(ValueToString(sql_result->table.rows[r][c]),
                  ValueToString(aiql_result->table.rows[r][c]))
            << query.id << " row " << r << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Values(17, 23, 99));

// Engine-variant sweep over the catalog: all optimization combinations
// return identical results (the invariant behind the ablation benchmark).
class VariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(VariantSweep, AllEngineVariantsAgree) {
  DemoScenarioData data = GenerateDemoScenario(TinyScenario(5));
  auto db = IngestRecords(data.records, StorageOptions{});
  ASSERT_TRUE(db.ok());

  int mask = GetParam();
  EngineOptions variant;
  variant.enable_reordering = (mask & 1) != 0;
  variant.enable_semi_join = (mask & 2) != 0;
  variant.enable_temporal_pruning = (mask & 4) != 0;
  variant.enable_parallelism = (mask & 8) != 0;

  AiqlEngine reference(&*db);  // everything on
  AiqlEngine subject(&*db, variant);
  for (const CatalogQuery& query : DemoInvestigationQueries(data.truth)) {
    auto expected = reference.Execute(query.text);
    auto actual = subject.Execute(query.text);
    ASSERT_TRUE(expected.ok()) << query.id;
    ASSERT_TRUE(actual.ok()) << query.id;
    expected->table.SortRows();
    actual->table.SortRows();
    EXPECT_EQ(actual->table, expected->table)
        << query.id << " with mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, VariantSweep,
                         ::testing::Values(0, 1, 2, 4, 8, 5, 10, 15));

}  // namespace
}  // namespace aiql
