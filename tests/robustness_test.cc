// Robustness and cross-engine guarantees:
//  * the parser never crashes on arbitrary input (fuzz-ish sweep);
//  * the conciseness gap the paper reports holds across the catalogs;
//  * all three engines agree on the full ATC catalog (the invariant the
//    Figure 5 benchmark relies on).

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "engine/aiql_engine.h"
#include "graph/graph_executor.h"
#include "graph/graph_store.h"
#include "query/metrics.h"
#include "query/parser.h"
#include "simulator/queries_c.h"
#include "simulator/scenario.h"
#include "sql/catalog.h"
#include "sql/sql_executor.h"
#include "sql/translator.h"

namespace aiql {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, NeverCrashesOnArbitraryInput) {
  Rng rng(GetParam());
  const std::string vocab[] = {
      "proc",  "file",   "ip",   "read",  "write", "start",  "return",
      "with",  "before", "as",   "p1",    "f1",    "evt",    "distinct",
      "(",     ")",      "[",    "]",     ",",     "=",      "\"%x%\"",
      "42",    "||",     "->",   "<-",    "group", "by",     "having",
      "window", "step",  "min",  "sec",   ".",     "forward", ":",
      "agentid", "avg",  "*",    "+",     "/",     "limit",  "\"",
  };
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string query;
    size_t tokens = rng.Uniform(25);
    for (size_t i = 0; i < tokens; ++i) {
      query += vocab[rng.Uniform(std::size(vocab))];
      query += ' ';
    }
    // Must not crash; errors are fine (and must carry a message).
    auto parsed = ParseAiql(query);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

TEST_P(ParserFuzzTest, NeverCrashesOnMutatedValidQuery) {
  Rng rng(GetParam() * 31);
  const std::string base =
      "(at \"05/10/2018\") agentid = 7 "
      "proc p1[\"%cmd.exe\"] start proc p2 as e1 "
      "proc p2 write file f as e2 with e1 before e2 "
      "return distinct p1, p2, f";
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string mutated = base;
    size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
      }
    }
    (void)ParseAiql(mutated);  // must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11, 12, 13, 14));

TEST(ConcisenessGuard, SqlStaysSubstantiallyMoreVerbose) {
  ScenarioOptions options;
  options.num_clients = 2;
  AtcScenarioData atc = GenerateAtcScenario(options);
  size_t aiql_words = 0, sql_words = 0;
  size_t aiql_constraints = 0, sql_constraints = 0;
  for (const CatalogQuery& query : AtcInvestigationQueries(atc.truth)) {
    auto parsed = ParseAiql(query.text);
    ASSERT_TRUE(parsed.ok()) << query.id;
    QueryTextMetrics aiql_metrics = ComputeAiqlMetrics(*parsed);
    auto sql = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
    ASSERT_TRUE(sql.ok()) << query.id;
    aiql_words += aiql_metrics.words;
    sql_words += sql->metrics.words;
    aiql_constraints += aiql_metrics.constraints;
    sql_constraints += sql->metrics.constraints;
  }
  // Paper: >=3.0x constraints, 3.5x words. Guard a conservative 2x floor so
  // refactors cannot silently erode the gap.
  EXPECT_GT(sql_words, 2 * aiql_words);
  EXPECT_GT(sql_constraints, 2 * aiql_constraints);
}

TEST(CrossEngineTest, AllThreeEnginesAgreeOnTheAtcCatalog) {
  ScenarioOptions options;
  options.num_clients = 2;
  options.duration = 3 * kHour;
  options.events_per_host_per_hour = 300;
  AtcScenarioData data = GenerateAtcScenario(options);

  auto optimized = IngestRecords(data.records, StorageOptions{});
  StorageOptions raw_options;
  raw_options.enable_partitioning = false;
  raw_options.dedup_window = 0;
  auto raw = IngestRecords(data.records, raw_options);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(raw.ok());

  AiqlEngine aiql_engine(&*optimized);
  FlatCatalog flat(&*raw);
  SqlExecutor sql_engine(&flat);
  GraphStore graph(&*raw);
  GraphExecutor graph_engine(&graph);

  for (const CatalogQuery& query : AtcInvestigationQueries(data.truth)) {
    auto expected = aiql_engine.Execute(query.text);
    ASSERT_TRUE(expected.ok()) << query.id;
    expected->table.SortRows();

    auto parsed = ParseAiql(query.text);
    auto translated = TranslateToSql(*parsed, SqlSchemaMode::kFlat);
    ASSERT_TRUE(translated.ok()) << query.id;
    auto sql_result = sql_engine.Execute(translated->sql);
    ASSERT_TRUE(sql_result.ok())
        << query.id << ": " << sql_result.status().ToString();
    sql_result->table.SortRows();
    EXPECT_EQ(sql_result->table.num_rows(), expected->table.num_rows())
        << query.id << " (SQL)";

    auto graph_result = graph_engine.ExecuteAiql(query.text);
    ASSERT_TRUE(graph_result.ok())
        << query.id << ": " << graph_result.status().ToString();
    graph_result->table.SortRows();
    EXPECT_EQ(graph_result->table.num_rows(), expected->table.num_rows())
        << query.id << " (graph)";
    // Row-content equality for the graph engine (same projection code).
    EXPECT_EQ(graph_result->table, expected->table) << query.id;
  }
}

}  // namespace
}  // namespace aiql
