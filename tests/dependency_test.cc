// Unit tests for dependency -> multievent query rewriting.

#include "engine/dependency.h"

#include <gtest/gtest.h>

#include "common/time_utils.h"
#include "engine/aiql_engine.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "storage/database.h"

namespace aiql {
namespace {

Result<std::unique_ptr<MultieventQueryAst>> Rewrite(const std::string& text) {
  auto parsed = ParseAiql(text);
  if (!parsed.ok()) return parsed.status();
  if (parsed->kind != QueryKind::kDependency) {
    return Status::InvalidArgument("not a dependency query");
  }
  return RewriteDependency(*parsed->dependency);
}

TEST(DependencyRewriteTest, ForwardChainStructure) {
  auto rewritten = Rewrite(
      "forward: proc p1[\"%cp%\"] ->[write] file f1[\"%stealer%\"] "
      "<-[read] proc p2[\"%apache%\"] ->[connect] proc p3 "
      "return p1, p3");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  const MultieventQueryAst& ast = **rewritten;

  ASSERT_EQ(ast.patterns.size(), 3u);
  // Edge 1: p1 -> f1 (arrow forward: previous node is subject).
  EXPECT_EQ(ast.patterns[0].subject.var, "p1");
  EXPECT_EQ(ast.patterns[0].object.var, "f1");
  EXPECT_EQ(ast.patterns[0].ops, std::vector<OpType>{OpType::kWrite});
  // Edge 2: f1 <- p2 (arrow backward: target is the subject).
  EXPECT_EQ(ast.patterns[1].subject.var, "p2");
  EXPECT_EQ(ast.patterns[1].object.var, "f1");
  EXPECT_EQ(ast.patterns[1].ops, std::vector<OpType>{OpType::kRead});
  // Edge 3: p2 -> p3.
  EXPECT_EQ(ast.patterns[2].subject.var, "p2");
  EXPECT_EQ(ast.patterns[2].object.var, "p3");

  // Forward: chained before-relations.
  ASSERT_EQ(ast.temporal_rels.size(), 2u);
  EXPECT_TRUE(ast.temporal_rels[0].before);
  EXPECT_EQ(ast.temporal_rels[0].left, ast.patterns[0].event_var);
  EXPECT_EQ(ast.temporal_rels[0].right, ast.patterns[1].event_var);
}

TEST(DependencyRewriteTest, BackwardChainReversesTime) {
  auto rewritten = Rewrite(
      "backward: file f[\"%creds%\"] <-[write] proc p1 <-[start] proc p2 "
      "return p1, p2");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  const MultieventQueryAst& ast = **rewritten;
  ASSERT_EQ(ast.patterns.size(), 2u);
  // Edges: f <-[write] p1 == (p1 write f); p1 <-[start] p2 == (p2 start p1).
  EXPECT_EQ(ast.patterns[0].subject.var, "p1");
  EXPECT_EQ(ast.patterns[0].object.var, "f");
  EXPECT_EQ(ast.patterns[1].subject.var, "p2");
  EXPECT_EQ(ast.patterns[1].object.var, "p1");
  // Backward: each successive event happens earlier (e1 after e2).
  ASSERT_EQ(ast.temporal_rels.size(), 1u);
  EXPECT_FALSE(ast.temporal_rels[0].before);
}

TEST(DependencyRewriteTest, AnonymousNodesGetJoinableNames) {
  auto rewritten = Rewrite(
      "forward: proc[\"%sh%\"] ->[write] file ->[connect] proc p3 "
      "return p3");
  // 'file' anonymous in the middle: wait — connect edge from a file is
  // invalid; the validator must reject this shape.
  ASSERT_FALSE(rewritten.ok());
}

TEST(DependencyRewriteTest, AnonymousIntermediateProcessJoins) {
  auto rewritten = Rewrite(
      "forward: proc p0[\"%sh%\"] ->[start] proc ->[write] file f "
      "return p0, f");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  const MultieventQueryAst& ast = **rewritten;
  ASSERT_EQ(ast.patterns.size(), 2u);
  // The anonymous middle process received an internal name shared between
  // pattern 0's object and pattern 1's subject (that's the join).
  EXPECT_FALSE(ast.patterns[0].object.var.empty());
  EXPECT_EQ(ast.patterns[0].object.var, ast.patterns[1].subject.var);
  EXPECT_EQ(ast.patterns[0].object.var[0], '$');  // not user-addressable
}

TEST(DependencyRewriteTest, PreservesGlobalsReturnsAndLimit) {
  auto rewritten = Rewrite(
      "(at \"05/10/2018\") agentid = 3 "
      "forward: proc p ->[write] file f return distinct p, f limit 5");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  const MultieventQueryAst& ast = **rewritten;
  EXPECT_TRUE(ast.globals.time_window.has_value());
  ASSERT_EQ(ast.globals.attrs.size(), 1u);
  EXPECT_TRUE(ast.distinct);
  EXPECT_EQ(ast.return_items.size(), 2u);
  EXPECT_EQ(ast.limit, 5);
}

TEST(DependencyRewriteTest, RewrittenQueryPassesAnalysis) {
  auto rewritten = Rewrite(
      "forward: proc p1[\"%a%\"] ->[write] file f1 <-[read] proc p2 "
      "->[write] ip i1[dstip = \"1.2.3.4\"] return p1, p2, i1");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  auto analyzed = AnalyzeMultievent(**rewritten, QueryKind::kMultievent);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // f1 is shared by patterns 0 and 1; p2 by patterns 1 and 2.
  EXPECT_EQ(analyzed->entity_occurrences.at("f1").size(), 2u);
  EXPECT_EQ(analyzed->entity_occurrences.at("p2").size(), 2u);
}

TEST(DependencyRewriteTest, HopWindowsCarryIntoTemporalRelations) {
  auto rewritten = Rewrite(
      "forward: proc p1 ->[write] file f1 <-[read, 5 min] proc p2 "
      "->[connect, 30 sec] ip i1 return p1, i1");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  const MultieventQueryAst& ast = **rewritten;
  ASSERT_EQ(ast.temporal_rels.size(), 2u);
  // Edge 2's window bounds the (e1, e2) gap; edge 3's bounds (e2, e3).
  EXPECT_EQ(ast.temporal_rels[0].within, 5 * kMinute);
  EXPECT_EQ(ast.temporal_rels[1].within, 30 * kSecond);
  EXPECT_TRUE(ast.temporal_rels[0].before);
}

TEST(DependencyRewriteTest, UnboundedEdgesKeepZeroWithin) {
  auto rewritten = Rewrite(
      "forward: proc p1 ->[write] file f1 <-[read] proc p2 return p2");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  ASSERT_EQ((*rewritten)->temporal_rels.size(), 1u);
  EXPECT_EQ((*rewritten)->temporal_rels[0].within, 0);
}

TEST(DependencyRewriteTest, HopWindowOnFirstEdgeRejected) {
  auto rewritten = Rewrite(
      "forward: proc p1 ->[write, 5 min] file f1 return p1");
  ASSERT_FALSE(rewritten.ok());
  EXPECT_NE(rewritten.status().message().find("first dependency edge"),
            std::string::npos)
      << rewritten.status().ToString();
}

TEST(DependencyRewriteTest, DuplicateNodeVariableRejected) {
  // p1 at two non-adjacent path positions would alias distinct nodes.
  auto rewritten = Rewrite(
      "forward: proc p1 ->[write] file f1 <-[read] proc p1 return p1");
  ASSERT_FALSE(rewritten.ok());
  EXPECT_NE(rewritten.status().message().find("two different dependency"),
            std::string::npos)
      << rewritten.status().ToString();
  // Same collision via the start node.
  EXPECT_FALSE(Rewrite("backward: file f <-[write] proc p <-[start] proc p "
                       "return p")
                   .ok());
  // Distinct names remain fine (control).
  EXPECT_TRUE(Rewrite("forward: proc p1 ->[write] file f1 <-[read] proc p2 "
                      "return p2")
                  .ok());
}

TEST(DependencyRewriteTest, HopWindowEnforcedEndToEnd) {
  // Two-hop chain where the second event happens 10 minutes after the
  // first: a 5-minute hop window must reject it, a 15-minute one accept it.
  AuditDatabase db;
  Timestamp t0 = *MakeTimestamp(2018, 5, 10, 9, 0, 0);
  ProcessRef writer{1, 100, "dropper.exe", "system"};
  ProcessRef reader{1, 101, "stealer.exe", "system"};
  FileRef file{1, "C:\\Temp\\loot.txt"};
  EventRecord w;
  w.agent_id = 1;
  w.op = OpType::kWrite;
  w.start_ts = t0;
  w.end_ts = t0 + kSecond;
  w.subject = writer;
  w.object = file;
  EventRecord r = w;
  r.op = OpType::kRead;
  r.start_ts = t0 + 10 * kMinute;
  r.end_ts = r.start_ts + kSecond;
  r.subject = reader;
  ASSERT_TRUE(db.Append(w).ok());
  ASSERT_TRUE(db.Append(r).ok());
  ASSERT_TRUE(db.Seal().ok());

  AiqlEngine engine(&db);
  auto narrow = engine.Execute(
      "forward: proc p1[\"dropper.exe\"] ->[write] file f "
      "<-[read, 5 min] proc p2 return p2");
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  EXPECT_EQ(narrow->table.num_rows(), 0u);
  auto wide = engine.Execute(
      "forward: proc p1[\"dropper.exe\"] ->[write] file f "
      "<-[read, 15 min] proc p2 return p2");
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_EQ(wide->table.num_rows(), 1u);
}

TEST(DependencyRewriteTest, ConstraintsAttachOnlyAtFirstOccurrence) {
  auto rewritten = Rewrite(
      "forward: proc p1 ->[write] file f1[\"%x%\"] <-[read] proc p2 "
      "return p2");
  ASSERT_TRUE(rewritten.ok());
  const MultieventQueryAst& ast = **rewritten;
  EXPECT_EQ(ast.patterns[0].object.constraints.size(), 1u);
  EXPECT_TRUE(ast.patterns[1].object.constraints.empty());
}

}  // namespace
}  // namespace aiql
