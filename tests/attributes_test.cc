// Unit tests for canonical attribute resolution (context-aware shortcuts
// and aliases).

#include "query/attributes.h"

#include <gtest/gtest.h>

namespace aiql {
namespace {

TEST(AttributesTest, DefaultsMatchPaperShortcuts) {
  // p1 -> p1.exe_name, f1 -> f1.name/path, i1 -> i1.dst_ip (paper §2.2.1).
  EXPECT_STREQ(DefaultEntityAttr(EntityType::kProcess), "exe_name");
  EXPECT_STREQ(DefaultEntityAttr(EntityType::kFile), "path");
  EXPECT_STREQ(DefaultEntityAttr(EntityType::kNetwork), "dst_ip");
}

TEST(AttributesTest, EmptyNameResolvesToDefault) {
  auto info = ResolveEntityAttr(EntityType::kProcess, "");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->canonical, "exe_name");
  EXPECT_EQ(info->kind, AttrKind::kString);
}

TEST(AttributesTest, ProcessAliases) {
  for (const char* alias : {"exe_name", "exename", "name", "exe"}) {
    auto info = ResolveEntityAttr(EntityType::kProcess, alias);
    ASSERT_TRUE(info.ok()) << alias;
    EXPECT_EQ(info->canonical, "exe_name");
  }
  EXPECT_EQ(ResolveEntityAttr(EntityType::kProcess, "pid")->kind,
            AttrKind::kInt);
  EXPECT_EQ(ResolveEntityAttr(EntityType::kProcess, "username")->canonical,
            "user");
}

TEST(AttributesTest, NetworkAliases) {
  EXPECT_EQ(ResolveEntityAttr(EntityType::kNetwork, "dstip")->canonical,
            "dst_ip");
  EXPECT_EQ(ResolveEntityAttr(EntityType::kNetwork, "sip")->canonical,
            "src_ip");
  EXPECT_EQ(ResolveEntityAttr(EntityType::kNetwork, "dport")->canonical,
            "dst_port");
  EXPECT_EQ(ResolveEntityAttr(EntityType::kNetwork, "proto")->canonical,
            "protocol");
  EXPECT_EQ(ResolveEntityAttr(EntityType::kNetwork, "dport")->kind,
            AttrKind::kInt);
}

TEST(AttributesTest, AgentidOnEveryType) {
  for (EntityType type : {EntityType::kProcess, EntityType::kFile,
                          EntityType::kNetwork}) {
    auto info = ResolveEntityAttr(type, "agentid");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->canonical, "agentid");
    EXPECT_EQ(info->kind, AttrKind::kInt);
  }
}

TEST(AttributesTest, CaseInsensitiveResolution) {
  EXPECT_TRUE(ResolveEntityAttr(EntityType::kProcess, "EXE_NAME").ok());
  EXPECT_TRUE(ResolveEntityAttr(EntityType::kNetwork, "DstIp").ok());
}

TEST(AttributesTest, WrongTypeAttributesRejected) {
  EXPECT_FALSE(ResolveEntityAttr(EntityType::kFile, "exe_name").ok());
  EXPECT_FALSE(ResolveEntityAttr(EntityType::kProcess, "dst_ip").ok());
  EXPECT_FALSE(ResolveEntityAttr(EntityType::kNetwork, "path").ok());
  auto error = ResolveEntityAttr(EntityType::kFile, "color");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kSemanticError);
  EXPECT_NE(error.status().message().find("color"), std::string::npos);
}

TEST(AttributesTest, EventAttributes) {
  EXPECT_EQ(ResolveEventAttr("amount")->kind, AttrKind::kInt);
  EXPECT_EQ(ResolveEventAttr("bytes")->canonical, "amount");
  EXPECT_EQ(ResolveEventAttr("starttime")->canonical, "start_time");
  EXPECT_EQ(ResolveEventAttr("end_ts")->canonical, "end_time");
  EXPECT_EQ(ResolveEventAttr("op")->kind, AttrKind::kString);
  EXPECT_FALSE(ResolveEventAttr("nonsense").ok());
}

}  // namespace
}  // namespace aiql
