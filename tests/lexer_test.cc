// Unit tests for the AIQL lexer.

#include "query/lexer.h"

#include <gtest/gtest.h>

namespace aiql {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = LexQuery("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ(tokens->front().kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersAndSymbols) {
  auto tokens = LexQuery("proc p1[\"%cmd.exe\"] start proc p2 as evt1");
  ASSERT_TRUE(tokens.ok());
  auto kinds = Kinds(*tokens);
  std::vector<TokenKind> expected = {
      TokenKind::kIdent, TokenKind::kIdent, TokenKind::kLBracket,
      TokenKind::kString, TokenKind::kRBracket, TokenKind::kIdent,
      TokenKind::kIdent, TokenKind::kIdent, TokenKind::kIdent,
      TokenKind::kIdent, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ((*tokens)[3].text, "%cmd.exe");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = LexQuery("agentid = 5 // SQL database server\nreturn p");
  ASSERT_TRUE(tokens.ok());
  // agentid, =, 5, return, p, end
  EXPECT_EQ(tokens->size(), 6u);
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = LexQuery("42 3.14");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_TRUE((*tokens)[0].number_is_integer);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 42);
  EXPECT_FALSE((*tokens)[1].number_is_integer);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 3.14);
}

TEST(LexerTest, ArrowsVersusComparisons) {
  auto tokens = LexQuery("-> <- <= >= < > != = ||");
  ASSERT_TRUE(tokens.ok());
  auto kinds = Kinds(*tokens);
  std::vector<TokenKind> expected = {
      TokenKind::kArrowRight, TokenKind::kArrowLeft, TokenKind::kLe,
      TokenKind::kGe,         TokenKind::kLt,        TokenKind::kGt,
      TokenKind::kNe,         TokenKind::kEq,        TokenKind::kOrOr,
      TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, LessThanNegativeNumberIsNotArrow) {
  auto tokens = LexQuery("amt < -5");
  ASSERT_TRUE(tokens.ok());
  auto kinds = Kinds(*tokens);
  std::vector<TokenKind> expected = {TokenKind::kIdent, TokenKind::kLt,
                                     TokenKind::kMinus, TokenKind::kNumber,
                                     TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = LexQuery(R"("a\"b" "tab\there" "C:\Users")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\"b");
  EXPECT_EQ((*tokens)[1].text, "tab\there");
  EXPECT_EQ((*tokens)[2].text, "C:\\Users");  // unknown escape kept verbatim
}

TEST(LexerTest, UnterminatedStringReportsLocation) {
  auto tokens = LexQuery("proc p[\"oops");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
  EXPECT_NE(tokens.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(tokens.status().message().find("unterminated"),
            std::string::npos);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = LexQuery("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(LexQuery("a # b").ok());
  EXPECT_FALSE(LexQuery("a ! b").ok());
  EXPECT_FALSE(LexQuery("a | b").ok());
}

}  // namespace
}  // namespace aiql
