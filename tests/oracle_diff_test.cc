// Differential-oracle property test (issue #4 satellite): a deliberately
// naive brute-force reference matcher over the raw generated events, plus a
// seeded-RNG generator of random multi-pattern AIQL queries (operation
// disjunctions, global time windows, agent filters, shared entity
// variables, bounded before/after relations, distinct). The optimized
// engine must produce byte-identical result tables
//   * under every combination of EngineOptions toggles, and
//   * whether results are served from in-memory sealed partitions or from
//     a lazily opened v2 snapshot.
//
// The oracle shares only LikeMatcher (string predicate semantics) with the
// engine; candidate filtering, joining, temporal checks, and projection are
// reimplemented as straight nested loops over the raw event list.
//
// Query count per options combination defaults to 200 and can be raised
// via AIQL_ORACLE_QUERIES.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/like_matcher.h"
#include "common/rng.h"
#include "engine/aiql_engine.h"
#include "engine/result.h"
#include "storage/database.h"
#include "storage/snapshot.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }
constexpr Duration kSpan = 6 * kHour;
constexpr int kNumAgents = 4;

// --- generated world ---------------------------------------------------------

struct GenProc {
  AgentId agent;
  uint32_t pid;
  std::string exe;
  std::string user;
};
struct GenFile {
  AgentId agent;
  std::string path;
};
struct GenNet {
  AgentId agent;
  std::string src_ip;
  std::string dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  std::string proto;
};

struct GenEvent {
  OpType op = OpType::kRead;
  EntityType otype = EntityType::kFile;
  size_t subject = 0;  ///< index into World::procs
  size_t object = 0;   ///< index into the pool of `otype`
  Timestamp start = 0;
  Timestamp end = 0;
  uint64_t amount = 0;
  AgentId agent = 0;
};

struct World {
  std::vector<GenProc> procs;
  std::vector<GenFile> files;
  std::vector<GenNet> nets;
  std::vector<GenEvent> events;
};

World GenerateWorld(uint64_t seed, int num_events) {
  Rng rng(seed);
  World world;
  const char* exes[] = {"cmd.exe",      "powershell.exe", "svchost.exe",
                        "chrome.exe",   "sqlservr.exe",   "osql.exe",
                        "backup.exe",   "winword.exe",    "sshd",
                        "bash",         "python",         "nginx"};
  const char* users[] = {"root", "alice", "bob", "system"};
  for (uint32_t i = 0; i < 40; ++i) {
    // Unique pids keep every pool entry a distinct entity, so oracle
    // identity (pool index) coincides with engine identity (EntityId).
    world.procs.push_back(
        {static_cast<AgentId>(1 + rng.Uniform(kNumAgents)), 100 + i,
         exes[rng.Uniform(12)], users[rng.Uniform(4)]});
  }
  const char* dirs[] = {"/etc", "/var/log", "/home/alice",
                        "/tmp", "/usr/bin", "/data"};
  for (int i = 0; i < 30; ++i) {
    world.files.push_back(
        {static_cast<AgentId>(1 + rng.Uniform(kNumAgents)),
         std::string(dirs[rng.Uniform(6)]) + "/file" + std::to_string(i)});
  }
  const char* ips[] = {"10.0.0.5",      "10.0.0.9",    "172.16.0.129",
                       "93.184.216.34", "192.168.1.7", "8.8.8.8"};
  for (uint16_t i = 0; i < 20; ++i) {
    world.nets.push_back(
        {static_cast<AgentId>(1 + rng.Uniform(kNumAgents)),
         ips[rng.Uniform(6)], ips[rng.Uniform(6)],
         static_cast<uint16_t>(40000 + i),  // unique: distinct 5-tuples
         static_cast<uint16_t>(rng.Chance(0.5) ? 443 : 8000 + i),
         rng.Chance(0.8) ? "tcp" : "udp"});
  }

  const OpType file_ops[] = {OpType::kRead, OpType::kWrite, OpType::kExecute,
                             OpType::kDelete, OpType::kRename};
  const OpType net_ops[] = {OpType::kRead, OpType::kWrite, OpType::kConnect,
                            OpType::kAccept};
  const OpType proc_ops[] = {OpType::kStart, OpType::kEnd, OpType::kConnect};
  for (int i = 0; i < num_events; ++i) {
    GenEvent e;
    e.subject = rng.Uniform(world.procs.size());
    double r = rng.NextDouble();
    if (r < 0.5) {
      e.otype = EntityType::kFile;
      e.object = rng.Uniform(world.files.size());
      e.op = file_ops[rng.Uniform(5)];
    } else if (r < 0.75) {
      e.otype = EntityType::kNetwork;
      e.object = rng.Uniform(world.nets.size());
      e.op = net_ops[rng.Uniform(4)];
    } else {
      e.otype = EntityType::kProcess;
      e.object = rng.Uniform(world.procs.size());
      e.op = proc_ops[rng.Uniform(3)];
    }
    if (rng.Chance(0.05)) {  // off-matrix (op, object type) combinations
      e.op = static_cast<OpType>(rng.Uniform(kNumOpTypes));
    }
    e.start = T0() + static_cast<Duration>(rng.Uniform(kSpan / kSecond)) *
                         kSecond;
    e.end = e.start + static_cast<Duration>(rng.Uniform(120)) * kSecond;
    e.amount = rng.Uniform(1000000);
    e.agent = world.procs[e.subject].agent;
    world.events.push_back(e);
  }
  return world;
}

AuditDatabase BuildDatabase(const World& world) {
  StorageOptions options;
  options.partition_duration = kHour;
  options.dedup_window = 0;  // oracle works on raw events 1:1
  options.max_partition_events = 200;  // exercise rollover / seq partitions
  AuditDatabase db(options);
  for (const GenEvent& e : world.events) {
    EventRecord record;
    record.agent_id = e.agent;
    record.op = e.op;
    record.start_ts = e.start;
    record.end_ts = e.end;
    record.amount = e.amount;
    const GenProc& s = world.procs[e.subject];
    record.subject = ProcessRef{s.agent, s.pid, s.exe, s.user};
    switch (e.otype) {
      case EntityType::kFile: {
        const GenFile& f = world.files[e.object];
        record.object = FileRef{f.agent, f.path};
        break;
      }
      case EntityType::kNetwork: {
        const GenNet& n = world.nets[e.object];
        record.object = NetworkRef{n.agent, n.src_ip, n.dst_ip, n.src_port,
                                   n.dst_port, n.proto};
        break;
      }
      case EntityType::kProcess: {
        const GenProc& p = world.procs[e.object];
        record.object = ProcessRef{p.agent, p.pid, p.exe, p.user};
        break;
      }
    }
    EXPECT_TRUE(db.Append(record).ok());
  }
  EXPECT_TRUE(db.Seal().ok());
  return db;
}

// --- generated queries -------------------------------------------------------

struct GenConstraint {
  std::optional<std::string> like;     ///< default-attr LIKE
  std::optional<std::string> user_eq;  ///< proc only
  std::optional<uint16_t> dst_port;    ///< net only
};

struct GenPattern {
  EntityType otype = EntityType::kFile;
  std::vector<OpType> ops;
  std::string subj_var;
  std::string obj_var;
  GenConstraint subj;
  GenConstraint obj;
  std::string event_var;
};

struct GenTemporal {
  size_t left = 0;   ///< pattern index that must end first
  size_t right = 0;  ///< pattern index that starts later
  Duration within = 0;
  bool render_as_after = false;
};

struct GenQuery {
  std::optional<TimeRange> window;
  std::string from_text, to_text;
  std::optional<AgentId> agent;
  std::vector<GenPattern> patterns;
  std::vector<GenTemporal> rels;
  bool distinct = false;
  /// (var, attr) — attr empty renders the bare variable (default attr).
  std::vector<std::pair<std::string, std::string>> returns;
};

std::string TimeText(Timestamp ts) {
  int64_t secs = (ts - T0()) / kSecond;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d 05/10/2018",
                static_cast<int>(secs / 3600),
                static_cast<int>((secs / 60) % 60),
                static_cast<int>(secs % 60));
  return buf;
}

GenQuery GenerateQuery(Rng* rng, const World& /*world*/) {
  GenQuery q;

  if (rng->Chance(0.6)) {
    int64_t span_secs = kSpan / kSecond;
    int64_t a = rng->UniformRange(0, span_secs - 1);
    int64_t b = rng->UniformRange(0, span_secs - 1);
    if (a > b) std::swap(a, b);
    Timestamp from = T0() + a * kSecond;
    Timestamp to = T0() + b * kSecond;
    q.window = TimeRange{from, to + 1};  // "(from X to Y)" includes Y
    q.from_text = TimeText(from);
    q.to_text = TimeText(to);
  }
  if (rng->Chance(0.5)) {
    q.agent = static_cast<AgentId>(1 + rng->Uniform(kNumAgents));
  }

  const char* exe_likes[] = {"%cmd%",  "%.exe",      "%sh%",  "%sql%",
                             "chrome.exe", "%w%",    "nginx", "%e%"};
  const char* path_likes[] = {"/etc/%",  "%log%", "%file1%",
                              "/tmp/%",  "%file2_", "%a%"};
  const char* ip_likes[] = {"10.0.0.%", "%129", "8.8.8.8", "%.16.%",
                            "192.168.%"};
  const char* user_eqs[] = {"root", "alice", "bob", "system"};
  const OpType file_ops[] = {OpType::kRead, OpType::kWrite, OpType::kExecute,
                             OpType::kDelete, OpType::kRename};
  const OpType net_ops[] = {OpType::kRead, OpType::kWrite, OpType::kConnect,
                            OpType::kAccept};
  const OpType proc_ops[] = {OpType::kStart, OpType::kEnd, OpType::kConnect};

  int num_patterns = 1 + static_cast<int>(rng->Uniform(3));
  int next_proc = 0, next_file = 0, next_net = 0;
  std::vector<std::string> proc_vars, file_vars, net_vars;

  for (int i = 0; i < num_patterns; ++i) {
    GenPattern p;
    p.event_var = "e" + std::to_string(i);

    // Subject (always a process): reuse a proc var sometimes — shared vars
    // are the implicit joins the semi-join optimization prunes on.
    bool fresh_subject = proc_vars.empty() || !rng->Chance(0.3);
    if (fresh_subject) {
      p.subj_var = "p" + std::to_string(next_proc++);
      proc_vars.push_back(p.subj_var);
    } else {
      p.subj_var = proc_vars[rng->Uniform(proc_vars.size())];
    }
    if (rng->Chance(fresh_subject ? 0.6 : 0.2)) {
      p.subj.like = exe_likes[rng->Uniform(8)];
    }
    if (rng->Chance(0.15)) p.subj.user_eq = user_eqs[rng->Uniform(4)];

    double r = rng->NextDouble();
    if (r < 0.5) {
      p.otype = EntityType::kFile;
      p.ops.push_back(file_ops[rng->Uniform(5)]);
      if (rng->Chance(0.3)) p.ops.push_back(file_ops[rng->Uniform(5)]);
    } else if (r < 0.75) {
      p.otype = EntityType::kNetwork;
      p.ops.push_back(net_ops[rng->Uniform(4)]);
      if (rng->Chance(0.3)) p.ops.push_back(net_ops[rng->Uniform(4)]);
    } else {
      p.otype = EntityType::kProcess;
      p.ops.push_back(proc_ops[rng->Uniform(3)]);
      if (rng->Chance(0.3)) p.ops.push_back(proc_ops[rng->Uniform(3)]);
    }
    // Drop duplicate ops from the disjunction.
    std::sort(p.ops.begin(), p.ops.end());
    p.ops.erase(std::unique(p.ops.begin(), p.ops.end()), p.ops.end());

    std::vector<std::string>* typed_vars =
        p.otype == EntityType::kFile      ? &file_vars
        : p.otype == EntityType::kNetwork ? &net_vars
                                          : &proc_vars;
    bool fresh_object = typed_vars->empty() || !rng->Chance(0.35);
    if (p.otype == EntityType::kProcess && rng->Chance(0.05)) {
      p.obj_var = p.subj_var;  // subject == object identity scan
      fresh_object = false;
    } else if (fresh_object) {
      switch (p.otype) {
        case EntityType::kFile:
          p.obj_var = "f" + std::to_string(next_file++);
          break;
        case EntityType::kNetwork:
          p.obj_var = "n" + std::to_string(next_net++);
          break;
        case EntityType::kProcess:
          p.obj_var = "p" + std::to_string(next_proc++);
          break;
      }
      typed_vars->push_back(p.obj_var);
    } else {
      p.obj_var = (*typed_vars)[rng->Uniform(typed_vars->size())];
    }
    if (rng->Chance(fresh_object ? 0.5 : 0.2)) {
      switch (p.otype) {
        case EntityType::kFile:
          p.obj.like = path_likes[rng->Uniform(6)];
          break;
        case EntityType::kNetwork:
          p.obj.like = ip_likes[rng->Uniform(5)];
          break;
        case EntityType::kProcess:
          p.obj.like = exe_likes[rng->Uniform(8)];
          break;
      }
    }
    if (p.otype == EntityType::kNetwork && rng->Chance(0.15)) {
      p.obj.dst_port = 443;
    }
    q.patterns.push_back(std::move(p));
  }

  if (num_patterns >= 2 && rng->Chance(0.7)) {
    int num_rels = 1 + static_cast<int>(rng->Uniform(2));
    for (int r = 0; r < num_rels; ++r) {
      GenTemporal rel;
      rel.left = rng->Uniform(q.patterns.size());
      rel.right = rng->Uniform(q.patterns.size());
      if (rel.left == rel.right) continue;
      if (rng->Chance(0.4)) {
        const Duration bounds[] = {kMinute, 5 * kMinute, 30 * kMinute,
                                   2 * kHour};
        rel.within = bounds[rng->Uniform(4)];
      }
      rel.render_as_after = rng->Chance(0.5);
      q.rels.push_back(rel);
    }
  }

  // Return items: a subset of the entity vars (at least one), optionally an
  // event amount; `distinct` sometimes.
  std::vector<std::string> entity_vars;
  for (const GenPattern& p : q.patterns) {
    for (const std::string& var : {p.subj_var, p.obj_var}) {
      if (std::find(entity_vars.begin(), entity_vars.end(), var) ==
          entity_vars.end()) {
        entity_vars.push_back(var);
      }
    }
  }
  bool all_vars = rng->Chance(0.6);
  for (const std::string& var : entity_vars) {
    if (all_vars || rng->Chance(0.5)) q.returns.emplace_back(var, "");
  }
  if (q.returns.empty()) q.returns.emplace_back(entity_vars.front(), "");
  if (rng->Chance(0.3)) {
    size_t i = rng->Uniform(q.patterns.size());
    q.returns.emplace_back(q.patterns[i].event_var, "amount");
  }
  q.distinct = rng->Chance(0.4);
  return q;
}

std::string RenderQuery(const GenQuery& q) {
  std::string text;
  if (q.window.has_value()) {
    text += "(from \"" + q.from_text + "\" to \"" + q.to_text + "\") ";
  }
  if (q.agent.has_value()) {
    text += "agentid = " + std::to_string(*q.agent) + " ";
  }
  for (const GenPattern& p : q.patterns) {
    auto render_entity = [](EntityType type, const std::string& var,
                            const GenConstraint& c) {
      std::string out = type == EntityType::kFile      ? "file "
                        : type == EntityType::kNetwork ? "ip "
                                                       : "proc ";
      out += var;
      std::vector<std::string> constraints;
      if (c.like.has_value()) constraints.push_back("\"" + *c.like + "\"");
      if (c.user_eq.has_value()) {
        constraints.push_back("user = \"" + *c.user_eq + "\"");
      }
      if (c.dst_port.has_value()) {
        constraints.push_back("dst_port = " + std::to_string(*c.dst_port));
      }
      if (!constraints.empty()) {
        out += "[";
        for (size_t i = 0; i < constraints.size(); ++i) {
          if (i > 0) out += ", ";
          out += constraints[i];
        }
        out += "]";
      }
      return out;
    };
    text += render_entity(EntityType::kProcess, p.subj_var, p.subj) + " ";
    for (size_t i = 0; i < p.ops.size(); ++i) {
      if (i > 0) text += " || ";
      text += OpTypeToString(p.ops[i]);
    }
    text += " " + render_entity(p.otype, p.obj_var, p.obj);
    text += " as " + p.event_var + " ";
  }
  if (!q.rels.empty()) {
    text += "with ";
    for (size_t i = 0; i < q.rels.size(); ++i) {
      const GenTemporal& rel = q.rels[i];
      if (i > 0) text += ", ";
      std::string bound;
      if (rel.within > 0) {
        bound = "[" + std::to_string(rel.within / kMinute) + " min]";
      }
      const std::string& left = q.patterns[rel.left].event_var;
      const std::string& right = q.patterns[rel.right].event_var;
      if (rel.render_as_after) {
        text += right + " after" + bound + " " + left;
      } else {
        text += left + " before" + bound + " " + right;
      }
    }
    text += " ";
  }
  text += "return ";
  if (q.distinct) text += "distinct ";
  for (size_t i = 0; i < q.returns.size(); ++i) {
    if (i > 0) text += ", ";
    text += q.returns[i].first;
    if (!q.returns[i].second.empty()) text += "." + q.returns[i].second;
  }
  return text;
}

// --- the brute-force oracle --------------------------------------------------

/// Compiled-per-query constraint matchers (LikeMatcher is the one component
/// shared with the engine: it defines the language's LIKE semantics).
struct OracleConstraint {
  std::optional<LikeMatcher> like;
  std::optional<LikeMatcher> user_eq;
  std::optional<uint16_t> dst_port;

  explicit OracleConstraint(const GenConstraint& c) {
    if (c.like.has_value()) like.emplace(*c.like);
    if (c.user_eq.has_value()) user_eq.emplace(*c.user_eq);
    dst_port = c.dst_port;
  }
};

bool OracleBefore(const GenEvent& a, const GenEvent& b, Duration within) {
  if (a.end > b.start) return false;
  if (within > 0 && b.start - a.end > within) return false;
  return true;
}

/// One row per joined event tuple, exactly like the engine's backtracking
/// join; distinct dedupes rendered rows.
ResultTable OracleExecute(const World& world, const GenQuery& q,
                          size_t* out_rows_bound) {
  const size_t num_patterns = q.patterns.size();
  std::vector<OracleConstraint> subj_cs, obj_cs;
  for (const GenPattern& p : q.patterns) {
    subj_cs.emplace_back(p.subj);
    obj_cs.emplace_back(p.obj);
  }

  auto subject_ok = [&](const GenEvent& e, size_t pi) {
    const GenProc& proc = world.procs[e.subject];
    const OracleConstraint& c = subj_cs[pi];
    if (c.like.has_value() && !c.like->Matches(proc.exe)) return false;
    if (c.user_eq.has_value() && !c.user_eq->Matches(proc.user)) return false;
    return true;
  };
  auto object_ok = [&](const GenEvent& e, size_t pi) {
    const OracleConstraint& c = obj_cs[pi];
    switch (e.otype) {
      case EntityType::kFile:
        return !c.like.has_value() ||
               c.like->Matches(world.files[e.object].path);
      case EntityType::kNetwork: {
        const GenNet& n = world.nets[e.object];
        if (c.like.has_value() && !c.like->Matches(n.dst_ip)) return false;
        if (c.dst_port.has_value() && n.dst_port != *c.dst_port) return false;
        return true;
      }
      case EntityType::kProcess:
        return !c.like.has_value() ||
               c.like->Matches(world.procs[e.object].exe);
    }
    return false;
  };

  // Per-pattern candidate events (raw linear scans).
  std::vector<std::vector<size_t>> cands(num_patterns);
  for (size_t k = 0; k < world.events.size(); ++k) {
    const GenEvent& e = world.events[k];
    if (q.window.has_value() && !(e.start >= q.window->start &&
                                  e.start < q.window->end)) {
      continue;
    }
    if (q.agent.has_value() && e.agent != *q.agent) continue;
    for (size_t pi = 0; pi < num_patterns; ++pi) {
      const GenPattern& p = q.patterns[pi];
      if (e.otype != p.otype) continue;
      if (std::find(p.ops.begin(), p.ops.end(), e.op) == p.ops.end()) {
        continue;
      }
      if (!subject_ok(e, pi) || !object_ok(e, pi)) continue;
      if (p.subj_var == p.obj_var &&
          (p.otype != EntityType::kProcess || e.subject != e.object)) {
        continue;
      }
      cands[pi].push_back(k);
    }
  }
  size_t bound = 1;
  for (const auto& c : cands) {
    bound = c.empty() ? 0 : std::min<size_t>(bound * c.size(), SIZE_MAX / 2);
  }
  *out_rows_bound = bound;

  ResultTable table;
  for (const auto& [var, attr] : q.returns) {
    table.columns.push_back(attr.empty() ? var : var + "." + attr);
  }

  // Nested-loop join over the candidate lists with entity-variable
  // consistency and temporal relation checks.
  struct Binding {
    EntityType type;
    size_t index;
  };
  std::map<std::string, Binding> bindings;
  std::vector<size_t> assignment(num_patterns, 0);
  std::set<std::vector<std::string>> distinct_rows;

  auto project = [&]() {
    std::vector<std::string> rendered;
    std::vector<Value> row;
    for (const auto& [var, attr] : q.returns) {
      Value value = int64_t{0};
      bool is_event = false;
      for (size_t pi = 0; pi < num_patterns; ++pi) {
        if (q.patterns[pi].event_var == var) {
          value = static_cast<int64_t>(
              world.events[assignment[pi]].amount);  // attr == "amount"
          is_event = true;
          break;
        }
      }
      if (!is_event) {
        const Binding& b = bindings.at(var);
        switch (b.type) {
          case EntityType::kProcess:
            value = world.procs[b.index].exe;
            break;
          case EntityType::kFile:
            value = world.files[b.index].path;
            break;
          case EntityType::kNetwork:
            value = world.nets[b.index].dst_ip;
            break;
        }
      }
      rendered.push_back(ValueToString(value));
      row.push_back(std::move(value));
    }
    if (q.distinct && !distinct_rows.insert(rendered).second) return;
    table.rows.push_back(std::move(row));
  };

  auto join = [&](auto&& self, size_t pi) -> void {
    if (pi == num_patterns) {
      project();
      return;
    }
    const GenPattern& p = q.patterns[pi];
    for (size_t k : cands[pi]) {
      const GenEvent& e = world.events[k];
      assignment[pi] = k;

      bool ok = true;
      for (const GenTemporal& rel : q.rels) {
        size_t other = rel.left == pi   ? rel.right
                       : rel.right == pi ? rel.left
                                         : num_patterns;
        if (other >= pi) continue;  // other pattern not yet assigned
        const GenEvent& a = world.events[assignment[rel.left]];
        const GenEvent& b = world.events[assignment[rel.right]];
        if (!OracleBefore(a, b, rel.within)) {
          ok = false;
          break;
        }
      }

      std::vector<std::string> bound_here;
      auto bind = [&](const std::string& var, EntityType type,
                      size_t index) {
        if (!ok) return;
        auto it = bindings.find(var);
        if (it == bindings.end()) {
          bindings.emplace(var, Binding{type, index});
          bound_here.push_back(var);
        } else if (it->second.type != type || it->second.index != index) {
          ok = false;
        }
      };
      bind(p.subj_var, EntityType::kProcess, e.subject);
      bind(p.obj_var, e.otype, e.object);

      if (ok) self(self, pi + 1);
      for (const std::string& var : bound_here) bindings.erase(var);
    }
  };
  join(join, 0);
  return table;
}

// --- the test ----------------------------------------------------------------

std::vector<std::pair<std::string, EngineOptions>> AllOptionCombos() {
  std::vector<std::pair<std::string, EngineOptions>> out;
  for (int mask = 0; mask < 16; ++mask) {
    EngineOptions options;
    options.enable_reordering = (mask & 1) != 0;
    options.enable_parallelism = (mask & 2) != 0;
    options.num_threads = 2;
    options.enable_semi_join = (mask & 4) != 0;
    options.enable_temporal_pruning = (mask & 8) != 0;
    std::string name = std::string("reorder=") + ((mask & 1) ? "1" : "0") +
                       " parallel=" + ((mask & 2) ? "1" : "0") +
                       " semijoin=" + ((mask & 4) ? "1" : "0") +
                       " temporal=" + ((mask & 8) ? "1" : "0");
    out.emplace_back(std::move(name), options);
  }
  return out;
}

TEST(OracleDiffTest, EngineMatchesBruteForceOracle) {
  const uint64_t seed = 20180510;
  World world = GenerateWorld(seed, 1500);
  AuditDatabase db = BuildDatabase(world);

  std::string snap_path = "/tmp/aiql_oracle_diff_test.snap";
  ASSERT_TRUE(SaveSnapshot(db, snap_path).ok());
  auto store = SnapshotStore::Open(snap_path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  auto combos = AllOptionCombos();
  std::vector<std::unique_ptr<AiqlEngine>> db_engines, snap_engines;
  for (const auto& [name, options] : combos) {
    db_engines.push_back(std::make_unique<AiqlEngine>(&db, options));
    snap_engines.push_back(
        std::make_unique<AiqlEngine>(store->get(), options));
  }

  int target = 200;
  if (const char* env = std::getenv("AIQL_ORACLE_QUERIES")) {
    target = std::max(1, std::atoi(env));
  }

  Rng rng(seed * 7919);
  int executed = 0;
  int attempts = 0;
  int mismatches = 0;
  while (executed < target && attempts < target * 20) {
    ++attempts;
    GenQuery q = GenerateQuery(&rng, world);
    size_t rows_bound = 0;
    ResultTable expected = OracleExecute(world, q, &rows_bound);
    // Skip pathological cross products: they only stress row copying.
    if (rows_bound > 100000 || expected.rows.size() > 20000) continue;
    expected.SortRows();

    std::string text = RenderQuery(q);
    for (size_t c = 0; c < combos.size(); ++c) {
      for (AiqlEngine* engine : {db_engines[c].get(), snap_engines[c].get()}) {
        const char* source = engine == db_engines[c].get() ? "db" : "snapshot";
        auto result = engine->Execute(text);
        ASSERT_TRUE(result.ok())
            << "[" << combos[c].first << " via " << source << "] failed on: "
            << text << "\n  " << result.status().ToString();
        result->table.SortRows();
        if (!(result->table == expected)) {
          ++mismatches;
          ADD_FAILURE() << "[" << combos[c].first << " via " << source
                        << "] MISMATCH on: " << text << "\n  engine rows="
                        << result->table.num_rows()
                        << " oracle rows=" << expected.num_rows();
        }
      }
    }
    ++executed;
  }
  std::remove(snap_path.c_str());
  EXPECT_EQ(mismatches, 0);
  ASSERT_GE(executed, std::min(target, 50))
      << "query generator rejected too many candidates";

  // Every query ran against the lazy store as well; by now it should have
  // materialized partitions on demand.
  EXPECT_GT((*store)->loaded_partitions(), 0u);
}

}  // namespace
}  // namespace aiql
