// Differential-oracle property test (issue #4 satellite, widened by issue
// #5): a deliberately naive brute-force reference matcher over the raw
// generated events, plus seeded-RNG generators of random AIQL queries —
// multi-pattern multievent queries (operation disjunctions, global time
// windows, agent filters, shared entity variables, bounded before/after
// relations, distinct) AND dependency path queries (forward/backward
// chains, anonymous nodes, per-edge hop windows), both with LIKE predicates
// covering leading/trailing/infix '%', '_', escapes and mixed case, and
// with ORDER BY + LIMIT. The optimized engine must agree with the oracle
//   * under every combination of EngineOptions toggles, and
//   * whether results are served from in-memory sealed partitions or from
//     a lazily opened v2 snapshot.
//
// Ordered results are verified tie-aware: the engine's rows must be a
// correctly ordered selection of the oracle's rows with the exact key-tuple
// sequence the comparator prescribes (ties may permute, LIMIT may keep any
// tied prefix).
//
// The oracle shares only LikeMatcher (string predicate semantics) with the
// engine; candidate filtering, joining, temporal checks, ordering, and
// projection are reimplemented as straight nested loops over the raw event
// list. Dependency semantics are reimplemented from the language spec (each
// edge an event, shared path nodes join, chain order temporal relations) —
// NOT by calling RewriteDependency.
//
// Query count per options combination defaults to 200 and can be raised
// via AIQL_ORACLE_QUERIES.
//
// Issue #6 adds a sharded axis: the same world is routed into 2/4/8-way
// agent-range shard maps (database- AND snapshot-backed), and every
// generated query also runs through the scatter/gather executor against a
// per-case rotated options combination — results must match the oracle (and
// hence the single-db engines) under the same tie-aware comparison,
// including dependency chains whose edges live on different shards.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/like_matcher.h"
#include "common/rng.h"
#include "engine/aiql_engine.h"
#include "engine/result.h"
#include "storage/database.h"
#include "storage/shard_map.h"
#include "storage/snapshot.h"
#include "storage/tiered.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }
constexpr Duration kSpan = 6 * kHour;
// Eight agents so an 8-way shard map gets one agent per shard.
constexpr int kNumAgents = 8;

// --- generated world ---------------------------------------------------------

struct GenProc {
  AgentId agent;
  uint32_t pid;
  std::string exe;
  std::string user;
};
struct GenFile {
  AgentId agent;
  std::string path;
};
struct GenNet {
  AgentId agent;
  std::string src_ip;
  std::string dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  std::string proto;
};

struct GenEvent {
  OpType op = OpType::kRead;
  EntityType otype = EntityType::kFile;
  size_t subject = 0;  ///< index into World::procs
  size_t object = 0;   ///< index into the pool of `otype`
  Timestamp start = 0;
  Timestamp end = 0;
  uint64_t amount = 0;
  AgentId agent = 0;
};

struct World {
  std::vector<GenProc> procs;
  std::vector<GenFile> files;
  std::vector<GenNet> nets;
  std::vector<GenEvent> events;
};

World GenerateWorld(uint64_t seed, int num_events) {
  Rng rng(seed);
  World world;
  // Names deliberately include '_' and literal '%' so wildcard and escape
  // patterns discriminate.
  const char* exes[] = {"cmd.exe",      "powershell.exe", "svchost.exe",
                        "chrome.exe",   "sqlservr.exe",   "osql.exe",
                        "backup.exe",   "winword.exe",    "sshd",
                        "bash",         "python",         "nginx",
                        "update_agent", "my%app.exe"};
  const char* users[] = {"root", "alice", "bob", "system"};
  for (uint32_t i = 0; i < 40; ++i) {
    // Unique pids keep every pool entry a distinct entity, so oracle
    // identity (pool index) coincides with engine identity (EntityId).
    world.procs.push_back(
        {static_cast<AgentId>(1 + rng.Uniform(kNumAgents)), 100 + i,
         exes[rng.Uniform(14)], users[rng.Uniform(4)]});
  }
  const char* dirs[] = {"/etc", "/var/log", "/home/alice",
                        "/tmp", "/usr/bin", "/data", "/srv/app_data"};
  for (int i = 0; i < 30; ++i) {
    world.files.push_back(
        {static_cast<AgentId>(1 + rng.Uniform(kNumAgents)),
         std::string(dirs[rng.Uniform(7)]) + "/file" + std::to_string(i)});
  }
  const char* ips[] = {"10.0.0.5",      "10.0.0.9",    "172.16.0.129",
                       "93.184.216.34", "192.168.1.7", "8.8.8.8"};
  for (uint16_t i = 0; i < 20; ++i) {
    world.nets.push_back(
        {static_cast<AgentId>(1 + rng.Uniform(kNumAgents)),
         ips[rng.Uniform(6)], ips[rng.Uniform(6)],
         static_cast<uint16_t>(40000 + i),  // unique: distinct 5-tuples
         static_cast<uint16_t>(rng.Chance(0.5) ? 443 : 8000 + i),
         rng.Chance(0.8) ? "tcp" : "udp"});
  }

  const OpType file_ops[] = {OpType::kRead, OpType::kWrite, OpType::kExecute,
                             OpType::kDelete, OpType::kRename};
  const OpType net_ops[] = {OpType::kRead, OpType::kWrite, OpType::kConnect,
                            OpType::kAccept};
  const OpType proc_ops[] = {OpType::kStart, OpType::kEnd, OpType::kConnect};
  for (int i = 0; i < num_events; ++i) {
    GenEvent e;
    e.subject = rng.Uniform(world.procs.size());
    double r = rng.NextDouble();
    if (r < 0.5) {
      e.otype = EntityType::kFile;
      e.object = rng.Uniform(world.files.size());
      e.op = file_ops[rng.Uniform(5)];
    } else if (r < 0.75) {
      e.otype = EntityType::kNetwork;
      e.object = rng.Uniform(world.nets.size());
      e.op = net_ops[rng.Uniform(4)];
    } else {
      e.otype = EntityType::kProcess;
      e.object = rng.Uniform(world.procs.size());
      e.op = proc_ops[rng.Uniform(3)];
    }
    if (rng.Chance(0.05)) {  // off-matrix (op, object type) combinations
      e.op = static_cast<OpType>(rng.Uniform(kNumOpTypes));
    }
    e.start = T0() + static_cast<Duration>(rng.Uniform(kSpan / kSecond)) *
                         kSecond;
    e.end = e.start + static_cast<Duration>(rng.Uniform(120)) * kSecond;
    e.amount = rng.Uniform(1000000);
    e.agent = world.procs[e.subject].agent;
    world.events.push_back(e);
  }
  return world;
}

StorageOptions OracleStorage() {
  StorageOptions options;
  options.partition_duration = kHour;
  options.dedup_window = 0;  // oracle works on raw events 1:1
  options.max_partition_events = 200;  // exercise rollover / seq partitions
  return options;
}

std::vector<EventRecord> WorldRecords(const World& world) {
  std::vector<EventRecord> records;
  records.reserve(world.events.size());
  for (const GenEvent& e : world.events) {
    EventRecord record;
    record.agent_id = e.agent;
    record.op = e.op;
    record.start_ts = e.start;
    record.end_ts = e.end;
    record.amount = e.amount;
    const GenProc& s = world.procs[e.subject];
    record.subject = ProcessRef{s.agent, s.pid, s.exe, s.user};
    switch (e.otype) {
      case EntityType::kFile: {
        const GenFile& f = world.files[e.object];
        record.object = FileRef{f.agent, f.path};
        break;
      }
      case EntityType::kNetwork: {
        const GenNet& n = world.nets[e.object];
        record.object = NetworkRef{n.agent, n.src_ip, n.dst_ip, n.src_port,
                                   n.dst_port, n.proto};
        break;
      }
      case EntityType::kProcess: {
        const GenProc& p = world.procs[e.object];
        record.object = ProcessRef{p.agent, p.pid, p.exe, p.user};
        break;
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

AuditDatabase BuildDatabase(const World& world) {
  AuditDatabase db(OracleStorage());
  for (const EventRecord& record : WorldRecords(world)) {
    EXPECT_TRUE(db.Append(record).ok());
  }
  EXPECT_TRUE(db.Seal().ok());
  return db;
}

// --- sharded worlds ----------------------------------------------------------

/// One sharded copy of the world: per-shard databases (optionally re-opened
/// through on-disk v2 snapshots) under a ShardMap.
struct ShardedWorld {
  std::string name;
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  std::vector<std::unique_ptr<SnapshotStore>> snaps;
  std::vector<std::string> snap_paths;
  ShardMap map;

  ~ShardedWorld() {
    snaps.clear();
    for (const std::string& path : snap_paths) std::remove(path.c_str());
  }
};

std::unique_ptr<ShardedWorld> BuildShardedWorld(
    const std::vector<EventRecord>& records, size_t num_shards,
    bool snapshot_backed) {
  auto world = std::make_unique<ShardedWorld>();
  world->name = std::to_string(num_shards) + "-way " +
                (snapshot_backed ? "snapshot" : "db");
  auto ranges = EvenAgentRanges(num_shards, 1, kNumAgents);
  auto routed = RouteRecordsByAgent(ranges, records);
  if (!routed.ok()) {
    ADD_FAILURE() << routed.status().ToString();
    return nullptr;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    auto db = std::make_unique<AuditDatabase>(OracleStorage());
    for (const EventRecord& record : (*routed)[s]) {
      EXPECT_TRUE(db->Append(record).ok());
    }
    EXPECT_TRUE(db->Seal().ok());
    world->dbs.push_back(std::move(db));
    Status added;
    if (snapshot_backed) {
      std::string path = "/tmp/aiql_oracle_shard_" +
                         std::to_string(num_shards) + "_" +
                         std::to_string(s) + ".snap";
      Status saved = SaveSnapshot(*world->dbs.back(), path);
      if (!saved.ok()) {
        ADD_FAILURE() << saved.ToString();
        return nullptr;
      }
      world->snap_paths.push_back(path);
      auto store = SnapshotStore::Open(path);
      if (!store.ok()) {
        ADD_FAILURE() << store.status().ToString();
        return nullptr;
      }
      world->snaps.push_back(std::move(*store));
      added = world->map.AddShard(world->snaps.back().get(), ranges[s]);
    } else {
      added = world->map.AddShard(world->dbs.back().get(), ranges[s]);
    }
    if (!added.ok()) {
      ADD_FAILURE() << added.ToString();
      return nullptr;
    }
  }
  return world;
}

// --- generated queries -------------------------------------------------------

struct GenConstraint {
  std::optional<std::string> like;     ///< default-attr LIKE
  std::optional<std::string> user_eq;  ///< proc only
  std::optional<uint16_t> dst_port;    ///< net only
};

struct GenPattern {
  EntityType otype = EntityType::kFile;
  std::vector<OpType> ops;
  std::string subj_var;
  std::string obj_var;
  GenConstraint subj;
  GenConstraint obj;
  std::string event_var;
};

struct GenTemporal {
  size_t left = 0;   ///< pattern index that must end first
  size_t right = 0;  ///< pattern index that starts later
  Duration within = 0;
  bool render_as_after = false;
};

struct GenQuery {
  std::optional<TimeRange> window;
  std::string from_text, to_text;
  std::optional<AgentId> agent;
  std::vector<GenPattern> patterns;
  std::vector<GenTemporal> rels;
  bool distinct = false;
  /// (var, attr) — attr empty renders the bare variable (default attr).
  std::vector<std::pair<std::string, std::string>> returns;
  /// ORDER BY keys: (index into `returns`, descending).
  std::vector<std::pair<size_t, bool>> order;
  /// LIMIT; only generated together with ORDER BY (an unordered LIMIT
  /// keeps an arbitrary engine-dependent subset, which no oracle can pin).
  std::optional<int64_t> limit;
};

/// One generated test case: the AIQL text handed to the engine plus the
/// independently built oracle form. For dependency queries the oracle form
/// is derived from the language spec, not from the engine's rewriter.
struct GenCase {
  std::string text;
  GenQuery oracle;
};

std::string TimeText(Timestamp ts) {
  int64_t secs = (ts - T0()) / kSecond;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d 05/10/2018",
                static_cast<int>(secs / 3600),
                static_cast<int>((secs / 60) % 60),
                static_cast<int>(secs % 60));
  return buf;
}

// LIKE pools shared by both generators. Mixed case exercises the
// case-insensitive fold; '_' the single-char wildcard; '\%' / '\_' the
// escape path (rendered verbatim through the lexer, which passes unknown
// escapes untouched). "update\\_agent" matches the literal exe
// "update_agent"; "my\\%app%" and "%\\%%" match "my%app.exe".
const char* kExeLikes[] = {"%cmd%",      "%.exe",   "%sh%",
                           "%sql%",      "chrome.exe", "%w%",
                           "nginx",      "%e%",     "%CMD%",
                           "c_d.exe",    "p_thon",  "%.e_e",
                           "update\\_agent", "my\\%app%", "%\\%%",
                           "bas_"};
const char* kPathLikes[] = {"/etc/%",  "%log%",   "%file1%",
                            "/tmp/%",  "%file2_", "%a%",
                            "%app\\_data%", "/srv/%", "%file__",
                            "%FILE1%"};
const char* kIpLikes[] = {"10.0.0.%", "%129",     "8.8.8.8", "%.16.%",
                          "192.168.%", "10.0.0._", "1__.%"};

std::string RenderLike(EntityType type, Rng* rng) {
  switch (type) {
    case EntityType::kProcess:
      return kExeLikes[rng->Uniform(16)];
    case EntityType::kFile:
      return kPathLikes[rng->Uniform(10)];
    case EntityType::kNetwork:
      return kIpLikes[rng->Uniform(7)];
  }
  return "%";
}

/// Fills window / agent globals (shared by both generators).
void GenerateGlobals(Rng* rng, GenQuery* q) {
  if (rng->Chance(0.6)) {
    int64_t span_secs = kSpan / kSecond;
    int64_t a = rng->UniformRange(0, span_secs - 1);
    int64_t b = rng->UniformRange(0, span_secs - 1);
    if (a > b) std::swap(a, b);
    Timestamp from = T0() + a * kSecond;
    Timestamp to = T0() + b * kSecond;
    q->window = TimeRange{from, to + 1};  // "(from X to Y)" includes Y
    q->from_text = TimeText(from);
    q->to_text = TimeText(to);
  }
  if (rng->Chance(0.5)) {
    q->agent = static_cast<AgentId>(1 + rng->Uniform(kNumAgents));
  }
}

/// Appends ORDER BY over a subset of the returns, plus LIMIT (ordered
/// queries only — see GenQuery::limit).
void GenerateOrderAndLimit(Rng* rng, GenQuery* q) {
  if (q->returns.empty() || !rng->Chance(0.35)) return;
  size_t num_keys = 1 + (q->returns.size() > 1 && rng->Chance(0.3) ? 1 : 0);
  std::vector<size_t> picked;
  for (size_t k = 0; k < num_keys; ++k) {
    size_t index = rng->Uniform(q->returns.size());
    if (std::find(picked.begin(), picked.end(), index) != picked.end()) {
      continue;
    }
    picked.push_back(index);
    q->order.emplace_back(index, rng->Chance(0.5));
  }
  if (rng->Chance(0.5)) {
    q->limit = 1 + static_cast<int64_t>(rng->Uniform(20));
  }
}

GenQuery GenerateQuery(Rng* rng, const World& /*world*/) {
  GenQuery q;
  GenerateGlobals(rng, &q);

  const char* user_eqs[] = {"root", "alice", "bob", "system"};
  const OpType file_ops[] = {OpType::kRead, OpType::kWrite, OpType::kExecute,
                             OpType::kDelete, OpType::kRename};
  const OpType net_ops[] = {OpType::kRead, OpType::kWrite, OpType::kConnect,
                            OpType::kAccept};
  const OpType proc_ops[] = {OpType::kStart, OpType::kEnd, OpType::kConnect};

  int num_patterns = 1 + static_cast<int>(rng->Uniform(3));
  int next_proc = 0, next_file = 0, next_net = 0;
  std::vector<std::string> proc_vars, file_vars, net_vars;

  for (int i = 0; i < num_patterns; ++i) {
    GenPattern p;
    p.event_var = "e" + std::to_string(i);

    // Subject (always a process): reuse a proc var sometimes — shared vars
    // are the implicit joins the semi-join optimization prunes on.
    bool fresh_subject = proc_vars.empty() || !rng->Chance(0.3);
    if (fresh_subject) {
      p.subj_var = "p" + std::to_string(next_proc++);
      proc_vars.push_back(p.subj_var);
    } else {
      p.subj_var = proc_vars[rng->Uniform(proc_vars.size())];
    }
    if (rng->Chance(fresh_subject ? 0.6 : 0.2)) {
      p.subj.like = RenderLike(EntityType::kProcess, rng);
    }
    if (rng->Chance(0.15)) p.subj.user_eq = user_eqs[rng->Uniform(4)];

    double r = rng->NextDouble();
    if (r < 0.5) {
      p.otype = EntityType::kFile;
      p.ops.push_back(file_ops[rng->Uniform(5)]);
      if (rng->Chance(0.3)) p.ops.push_back(file_ops[rng->Uniform(5)]);
    } else if (r < 0.75) {
      p.otype = EntityType::kNetwork;
      p.ops.push_back(net_ops[rng->Uniform(4)]);
      if (rng->Chance(0.3)) p.ops.push_back(net_ops[rng->Uniform(4)]);
    } else {
      p.otype = EntityType::kProcess;
      p.ops.push_back(proc_ops[rng->Uniform(3)]);
      if (rng->Chance(0.3)) p.ops.push_back(proc_ops[rng->Uniform(3)]);
    }
    // Drop duplicate ops from the disjunction.
    std::sort(p.ops.begin(), p.ops.end());
    p.ops.erase(std::unique(p.ops.begin(), p.ops.end()), p.ops.end());

    std::vector<std::string>* typed_vars =
        p.otype == EntityType::kFile      ? &file_vars
        : p.otype == EntityType::kNetwork ? &net_vars
                                          : &proc_vars;
    bool fresh_object = typed_vars->empty() || !rng->Chance(0.35);
    if (p.otype == EntityType::kProcess && rng->Chance(0.05)) {
      p.obj_var = p.subj_var;  // subject == object identity scan
      fresh_object = false;
    } else if (fresh_object) {
      switch (p.otype) {
        case EntityType::kFile:
          p.obj_var = "f" + std::to_string(next_file++);
          break;
        case EntityType::kNetwork:
          p.obj_var = "n" + std::to_string(next_net++);
          break;
        case EntityType::kProcess:
          p.obj_var = "p" + std::to_string(next_proc++);
          break;
      }
      typed_vars->push_back(p.obj_var);
    } else {
      p.obj_var = (*typed_vars)[rng->Uniform(typed_vars->size())];
    }
    if (rng->Chance(fresh_object ? 0.5 : 0.2)) {
      p.obj.like = RenderLike(p.otype, rng);
    }
    if (p.otype == EntityType::kNetwork && rng->Chance(0.15)) {
      p.obj.dst_port = 443;
    }
    q.patterns.push_back(std::move(p));
  }

  if (num_patterns >= 2 && rng->Chance(0.7)) {
    int num_rels = 1 + static_cast<int>(rng->Uniform(2));
    for (int r = 0; r < num_rels; ++r) {
      GenTemporal rel;
      rel.left = rng->Uniform(q.patterns.size());
      rel.right = rng->Uniform(q.patterns.size());
      if (rel.left == rel.right) continue;
      if (rng->Chance(0.4)) {
        const Duration bounds[] = {kMinute, 5 * kMinute, 30 * kMinute,
                                   2 * kHour};
        rel.within = bounds[rng->Uniform(4)];
      }
      rel.render_as_after = rng->Chance(0.5);
      q.rels.push_back(rel);
    }
  }

  // Return items: a subset of the entity vars (at least one), optionally an
  // event amount; `distinct` sometimes.
  std::vector<std::string> entity_vars;
  for (const GenPattern& p : q.patterns) {
    for (const std::string& var : {p.subj_var, p.obj_var}) {
      if (std::find(entity_vars.begin(), entity_vars.end(), var) ==
          entity_vars.end()) {
        entity_vars.push_back(var);
      }
    }
  }
  bool all_vars = rng->Chance(0.6);
  for (const std::string& var : entity_vars) {
    if (all_vars || rng->Chance(0.5)) q.returns.emplace_back(var, "");
  }
  if (q.returns.empty()) q.returns.emplace_back(entity_vars.front(), "");
  if (rng->Chance(0.3)) {
    size_t i = rng->Uniform(q.patterns.size());
    q.returns.emplace_back(q.patterns[i].event_var, "amount");
  }
  q.distinct = rng->Chance(0.4);
  GenerateOrderAndLimit(rng, &q);
  return q;
}

std::string RenderOrderAndLimit(const GenQuery& q) {
  std::string text;
  if (!q.order.empty()) {
    text += " order by ";
    for (size_t i = 0; i < q.order.size(); ++i) {
      if (i > 0) text += ", ";
      const auto& [index, desc] = q.order[i];
      text += q.returns[index].first;
      if (!q.returns[index].second.empty()) {
        text += "." + q.returns[index].second;
      }
      if (desc) text += " desc";
    }
  }
  if (q.limit.has_value()) text += " limit " + std::to_string(*q.limit);
  return text;
}

std::string RenderQuery(const GenQuery& q) {
  std::string text;
  if (q.window.has_value()) {
    text += "(from \"" + q.from_text + "\" to \"" + q.to_text + "\") ";
  }
  if (q.agent.has_value()) {
    text += "agentid = " + std::to_string(*q.agent) + " ";
  }
  for (const GenPattern& p : q.patterns) {
    auto render_entity = [](EntityType type, const std::string& var,
                            const GenConstraint& c) {
      std::string out = type == EntityType::kFile      ? "file "
                        : type == EntityType::kNetwork ? "ip "
                                                       : "proc ";
      out += var;
      std::vector<std::string> constraints;
      if (c.like.has_value()) constraints.push_back("\"" + *c.like + "\"");
      if (c.user_eq.has_value()) {
        constraints.push_back("user = \"" + *c.user_eq + "\"");
      }
      if (c.dst_port.has_value()) {
        constraints.push_back("dst_port = " + std::to_string(*c.dst_port));
      }
      if (!constraints.empty()) {
        out += "[";
        for (size_t i = 0; i < constraints.size(); ++i) {
          if (i > 0) out += ", ";
          out += constraints[i];
        }
        out += "]";
      }
      return out;
    };
    text += render_entity(EntityType::kProcess, p.subj_var, p.subj) + " ";
    for (size_t i = 0; i < p.ops.size(); ++i) {
      if (i > 0) text += " || ";
      text += OpTypeToString(p.ops[i]);
    }
    text += " " + render_entity(p.otype, p.obj_var, p.obj);
    text += " as " + p.event_var + " ";
  }
  if (!q.rels.empty()) {
    text += "with ";
    for (size_t i = 0; i < q.rels.size(); ++i) {
      const GenTemporal& rel = q.rels[i];
      if (i > 0) text += ", ";
      std::string bound;
      if (rel.within > 0) {
        bound = "[" + std::to_string(rel.within / kMinute) + " min]";
      }
      const std::string& left = q.patterns[rel.left].event_var;
      const std::string& right = q.patterns[rel.right].event_var;
      if (rel.render_as_after) {
        text += right + " after" + bound + " " + left;
      } else {
        text += left + " before" + bound + " " + right;
      }
    }
    text += " ";
  }
  text += "return ";
  if (q.distinct) text += "distinct ";
  for (size_t i = 0; i < q.returns.size(); ++i) {
    if (i > 0) text += ", ";
    text += q.returns[i].first;
    if (!q.returns[i].second.empty()) text += "." + q.returns[i].second;
  }
  text += RenderOrderAndLimit(q);
  return text;
}

// --- generated dependency queries --------------------------------------------

/// One path node as generated: anonymous nodes render without a variable
/// but keep a synthetic oracle var (the join the engine's rewriter creates
/// with its internal names).
struct GenDepNode {
  EntityType type = EntityType::kProcess;
  std::string var;   ///< oracle variable (always set)
  bool anonymous = false;
  GenConstraint constraint;
};

struct GenDepEdge {
  bool arrow_forward = true;  ///< previous node is the event's subject
  std::vector<OpType> ops;
  Duration within = 0;  ///< hop window vs the previous edge (never edge 0)
};

std::string RenderEntityDecl(EntityType type, const std::string& var,
                             const GenConstraint& c) {
  std::string out = type == EntityType::kFile      ? "file "
                    : type == EntityType::kNetwork ? "ip "
                                                   : "proc ";
  out += var;
  std::vector<std::string> constraints;
  if (c.like.has_value()) constraints.push_back("\"" + *c.like + "\"");
  if (c.user_eq.has_value()) {
    constraints.push_back("user = \"" + *c.user_eq + "\"");
  }
  if (c.dst_port.has_value()) {
    constraints.push_back("dst_port = " + std::to_string(*c.dst_port));
  }
  if (!constraints.empty()) {
    out += "[";
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (i > 0) out += ", ";
      out += constraints[i];
    }
    out += "]";
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

/// Generates a dependency path query plus its independent oracle form:
/// every edge becomes one event pattern (the arrow fixing the subject
/// side), shared path nodes join through their variable, and consecutive
/// events are chained before/after per the path direction with the edge's
/// hop window as the bound. Node constraints apply to the entity, i.e. at
/// every occurrence of its variable.
GenCase GenerateDependencyCase(Rng* rng, const World& /*world*/) {
  const OpType file_ops[] = {OpType::kRead, OpType::kWrite, OpType::kExecute,
                             OpType::kDelete, OpType::kRename};
  const OpType net_ops[] = {OpType::kRead, OpType::kWrite, OpType::kConnect,
                            OpType::kAccept};
  const OpType proc_ops[] = {OpType::kStart, OpType::kEnd, OpType::kConnect};
  const char* user_eqs[] = {"root", "alice", "bob", "system"};

  bool forward = rng->Chance(0.5);
  int num_edges = 1 + static_cast<int>(rng->Uniform(3));

  std::vector<GenDepNode> nodes;
  std::vector<GenDepEdge> edges;
  int anon_counter = 0;

  auto make_node = [&](EntityType type, bool may_be_anonymous) {
    GenDepNode node;
    node.type = type;
    node.anonymous = may_be_anonymous && rng->Chance(0.25);
    node.var = node.anonymous
                   ? "$anon" + std::to_string(++anon_counter)
                   : "d" + std::to_string(nodes.size());
    if (rng->Chance(0.45)) {
      node.constraint.like = RenderLike(type, rng);
    }
    if (type == EntityType::kProcess && rng->Chance(0.15)) {
      node.constraint.user_eq = user_eqs[rng->Uniform(4)];
    }
    if (type == EntityType::kNetwork && rng->Chance(0.2)) {
      node.constraint.dst_port = 443;
    }
    nodes.push_back(node);
  };

  auto random_type = [&]() {
    double r = rng->NextDouble();
    return r < 0.45   ? EntityType::kFile
           : r < 0.7  ? EntityType::kNetwork
                      : EntityType::kProcess;
  };

  // The start node stays named so the return clause always has a variable.
  make_node(rng->Chance(0.6) ? EntityType::kProcess : random_type(), false);
  for (int i = 0; i < num_edges; ++i) {
    const GenDepNode& prev = nodes.back();
    GenDepEdge edge;
    // The event's subject must be a process: a non-process previous node
    // forces a backward arrow (target becomes the subject); from a process
    // either direction is legal (backward then needs a process target).
    if (prev.type != EntityType::kProcess) {
      edge.arrow_forward = false;
    } else {
      edge.arrow_forward = rng->Chance(0.65);
    }
    EntityType target_type =
        edge.arrow_forward ? random_type() : EntityType::kProcess;
    // The event's object side decides which operations are legal.
    EntityType object_type = edge.arrow_forward ? target_type : prev.type;
    switch (object_type) {
      case EntityType::kFile:
        edge.ops.push_back(file_ops[rng->Uniform(5)]);
        if (rng->Chance(0.3)) edge.ops.push_back(file_ops[rng->Uniform(5)]);
        break;
      case EntityType::kNetwork:
        edge.ops.push_back(net_ops[rng->Uniform(4)]);
        if (rng->Chance(0.3)) edge.ops.push_back(net_ops[rng->Uniform(4)]);
        break;
      case EntityType::kProcess:
        edge.ops.push_back(proc_ops[rng->Uniform(3)]);
        if (rng->Chance(0.3)) edge.ops.push_back(proc_ops[rng->Uniform(3)]);
        break;
    }
    std::sort(edge.ops.begin(), edge.ops.end());
    edge.ops.erase(std::unique(edge.ops.begin(), edge.ops.end()),
                   edge.ops.end());
    if (i > 0 && rng->Chance(0.35)) {
      const Duration bounds[] = {kMinute, 5 * kMinute, 30 * kMinute,
                                 2 * kHour};
      edge.within = bounds[rng->Uniform(4)];
    }
    edges.push_back(edge);
    make_node(target_type, true);
  }

  // Oracle form: one pattern per edge, chained temporally.
  GenCase gen;
  GenerateGlobals(rng, &gen.oracle);
  for (int i = 0; i < num_edges; ++i) {
    const GenDepNode& prev = nodes[i];
    const GenDepNode& target = nodes[i + 1];
    const GenDepNode& subj = edges[i].arrow_forward ? prev : target;
    const GenDepNode& obj = edges[i].arrow_forward ? target : prev;
    GenPattern p;
    p.otype = obj.type;
    p.ops = edges[i].ops;
    p.subj_var = subj.var;
    p.obj_var = obj.var;
    // A node's constraint filters the entity itself, so it holds at every
    // occurrence of the variable.
    p.subj.like = subj.constraint.like;
    p.subj.user_eq = subj.constraint.user_eq;
    p.obj.like = obj.constraint.like;
    p.obj.dst_port = obj.constraint.dst_port;
    if (obj.type == EntityType::kProcess) p.obj.user_eq = obj.constraint.user_eq;
    p.event_var = "$dep" + std::to_string(i + 1);
    gen.oracle.patterns.push_back(std::move(p));
    if (i > 0) {
      GenTemporal rel;
      // forward: event i-1 ends before event i starts; backward reversed.
      rel.left = forward ? static_cast<size_t>(i - 1) : static_cast<size_t>(i);
      rel.right = forward ? static_cast<size_t>(i) : static_cast<size_t>(i - 1);
      rel.within = edges[i].within;
      gen.oracle.rels.push_back(rel);
    }
  }

  // Returns: a subset of the named nodes (the start node guarantees one).
  std::vector<std::string> named;
  for (const GenDepNode& node : nodes) {
    if (!node.anonymous) named.push_back(node.var);
  }
  bool all_vars = rng->Chance(0.6);
  for (const std::string& var : named) {
    if (all_vars || rng->Chance(0.5)) {
      gen.oracle.returns.emplace_back(var, "");
    }
  }
  if (gen.oracle.returns.empty()) {
    gen.oracle.returns.emplace_back(named.front(), "");
  }
  gen.oracle.distinct = rng->Chance(0.4);
  GenerateOrderAndLimit(rng, &gen.oracle);

  // Render the path text.
  std::string text;
  if (gen.oracle.window.has_value()) {
    text += "(from \"" + gen.oracle.from_text + "\" to \"" +
            gen.oracle.to_text + "\") ";
  }
  if (gen.oracle.agent.has_value()) {
    text += "agentid = " + std::to_string(*gen.oracle.agent) + " ";
  }
  text += forward ? "forward: " : "backward: ";
  text += RenderEntityDecl(nodes[0].type,
                           nodes[0].anonymous ? "" : nodes[0].var,
                           nodes[0].constraint);
  for (int i = 0; i < num_edges; ++i) {
    text += edges[i].arrow_forward ? " ->[" : " <-[";
    for (size_t k = 0; k < edges[i].ops.size(); ++k) {
      if (k > 0) text += " || ";
      text += OpTypeToString(edges[i].ops[k]);
    }
    if (edges[i].within > 0) {
      text += ", " + std::to_string(edges[i].within / kMinute) + " min";
    }
    text += "] ";
    const GenDepNode& target = nodes[i + 1];
    text += RenderEntityDecl(target.type,
                             target.anonymous ? "" : target.var,
                             target.constraint);
  }
  text += " return ";
  if (gen.oracle.distinct) text += "distinct ";
  for (size_t i = 0; i < gen.oracle.returns.size(); ++i) {
    if (i > 0) text += ", ";
    text += gen.oracle.returns[i].first;
  }
  text += RenderOrderAndLimit(gen.oracle);
  gen.text = std::move(text);
  return gen;
}

// --- the brute-force oracle --------------------------------------------------

/// Compiled-per-query constraint matchers (LikeMatcher is the one component
/// shared with the engine: it defines the language's LIKE semantics).
struct OracleConstraint {
  std::optional<LikeMatcher> like;
  std::optional<LikeMatcher> user_eq;
  std::optional<uint16_t> dst_port;

  explicit OracleConstraint(const GenConstraint& c) {
    if (c.like.has_value()) like.emplace(*c.like);
    if (c.user_eq.has_value()) user_eq.emplace(*c.user_eq);
    dst_port = c.dst_port;
  }
};

bool OracleBefore(const GenEvent& a, const GenEvent& b, Duration within) {
  if (a.end > b.start) return false;
  if (within > 0 && b.start - a.end > within) return false;
  return true;
}

/// One row per joined event tuple, exactly like the engine's backtracking
/// join; distinct dedupes rendered rows.
ResultTable OracleExecute(const World& world, const GenQuery& q,
                          size_t* out_rows_bound) {
  const size_t num_patterns = q.patterns.size();
  std::vector<OracleConstraint> subj_cs, obj_cs;
  for (const GenPattern& p : q.patterns) {
    subj_cs.emplace_back(p.subj);
    obj_cs.emplace_back(p.obj);
  }

  auto subject_ok = [&](const GenEvent& e, size_t pi) {
    const GenProc& proc = world.procs[e.subject];
    const OracleConstraint& c = subj_cs[pi];
    if (c.like.has_value() && !c.like->Matches(proc.exe)) return false;
    if (c.user_eq.has_value() && !c.user_eq->Matches(proc.user)) return false;
    return true;
  };
  auto object_ok = [&](const GenEvent& e, size_t pi) {
    const OracleConstraint& c = obj_cs[pi];
    switch (e.otype) {
      case EntityType::kFile:
        return !c.like.has_value() ||
               c.like->Matches(world.files[e.object].path);
      case EntityType::kNetwork: {
        const GenNet& n = world.nets[e.object];
        if (c.like.has_value() && !c.like->Matches(n.dst_ip)) return false;
        if (c.dst_port.has_value() && n.dst_port != *c.dst_port) return false;
        return true;
      }
      case EntityType::kProcess: {
        const GenProc& proc = world.procs[e.object];
        if (c.like.has_value() && !c.like->Matches(proc.exe)) return false;
        if (c.user_eq.has_value() && !c.user_eq->Matches(proc.user)) {
          return false;
        }
        return true;
      }
    }
    return false;
  };

  // Per-pattern candidate events (raw linear scans).
  std::vector<std::vector<size_t>> cands(num_patterns);
  for (size_t k = 0; k < world.events.size(); ++k) {
    const GenEvent& e = world.events[k];
    if (q.window.has_value() && !(e.start >= q.window->start &&
                                  e.start < q.window->end)) {
      continue;
    }
    if (q.agent.has_value() && e.agent != *q.agent) continue;
    for (size_t pi = 0; pi < num_patterns; ++pi) {
      const GenPattern& p = q.patterns[pi];
      if (e.otype != p.otype) continue;
      if (std::find(p.ops.begin(), p.ops.end(), e.op) == p.ops.end()) {
        continue;
      }
      if (!subject_ok(e, pi) || !object_ok(e, pi)) continue;
      if (p.subj_var == p.obj_var &&
          (p.otype != EntityType::kProcess || e.subject != e.object)) {
        continue;
      }
      cands[pi].push_back(k);
    }
  }
  size_t bound = 1;
  for (const auto& c : cands) {
    bound = c.empty() ? 0 : std::min<size_t>(bound * c.size(), SIZE_MAX / 2);
  }
  *out_rows_bound = bound;

  ResultTable table;
  for (const auto& [var, attr] : q.returns) {
    table.columns.push_back(attr.empty() ? var : var + "." + attr);
  }

  // Nested-loop join over the candidate lists with entity-variable
  // consistency and temporal relation checks.
  struct Binding {
    EntityType type;
    size_t index;
  };
  std::map<std::string, Binding> bindings;
  std::vector<size_t> assignment(num_patterns, 0);
  std::set<std::vector<std::string>> distinct_rows;

  auto project = [&]() {
    std::vector<std::string> rendered;
    std::vector<Value> row;
    for (const auto& [var, attr] : q.returns) {
      Value value = int64_t{0};
      bool is_event = false;
      for (size_t pi = 0; pi < num_patterns; ++pi) {
        if (q.patterns[pi].event_var == var) {
          value = static_cast<int64_t>(
              world.events[assignment[pi]].amount);  // attr == "amount"
          is_event = true;
          break;
        }
      }
      if (!is_event) {
        const Binding& b = bindings.at(var);
        switch (b.type) {
          case EntityType::kProcess:
            value = world.procs[b.index].exe;
            break;
          case EntityType::kFile:
            value = world.files[b.index].path;
            break;
          case EntityType::kNetwork:
            value = world.nets[b.index].dst_ip;
            break;
        }
      }
      rendered.push_back(ValueToString(value));
      row.push_back(std::move(value));
    }
    if (q.distinct && !distinct_rows.insert(rendered).second) return;
    table.rows.push_back(std::move(row));
  };

  auto join = [&](auto&& self, size_t pi) -> void {
    if (pi == num_patterns) {
      project();
      return;
    }
    const GenPattern& p = q.patterns[pi];
    for (size_t k : cands[pi]) {
      const GenEvent& e = world.events[k];
      assignment[pi] = k;

      bool ok = true;
      for (const GenTemporal& rel : q.rels) {
        size_t other = rel.left == pi   ? rel.right
                       : rel.right == pi ? rel.left
                                         : num_patterns;
        if (other >= pi) continue;  // other pattern not yet assigned
        const GenEvent& a = world.events[assignment[rel.left]];
        const GenEvent& b = world.events[assignment[rel.right]];
        if (!OracleBefore(a, b, rel.within)) {
          ok = false;
          break;
        }
      }

      std::vector<std::string> bound_here;
      auto bind = [&](const std::string& var, EntityType type,
                      size_t index) {
        if (!ok) return;
        auto it = bindings.find(var);
        if (it == bindings.end()) {
          bindings.emplace(var, Binding{type, index});
          bound_here.push_back(var);
        } else if (it->second.type != type || it->second.index != index) {
          ok = false;
        }
      };
      bind(p.subj_var, EntityType::kProcess, e.subject);
      bind(p.obj_var, e.otype, e.object);

      if (ok) self(self, pi + 1);
      for (const std::string& var : bound_here) bindings.erase(var);
    }
  };
  join(join, 0);
  return table;
}

// --- result comparison -------------------------------------------------------

/// Cell comparison replicating the engine's ORDER BY semantics (numbers
/// numerically, strings lexicographically, mixed treats strings as 0).
int CompareCells(const Value& a, const Value& b) {
  bool a_str = std::holds_alternative<std::string>(a);
  bool b_str = std::holds_alternative<std::string>(b);
  if (a_str && b_str) {
    return std::get<std::string>(a).compare(std::get<std::string>(b));
  }
  auto num = [](const Value& v) {
    if (const auto* i = std::get_if<int64_t>(&v)) {
      return static_cast<double>(*i);
    }
    if (const auto* d = std::get_if<double>(&v)) return *d;
    return 0.0;
  };
  double l = num(a), r = num(b);
  return l < r ? -1 : (l > r ? 1 : 0);
}

std::string RenderRow(const std::vector<Value>& row) {
  std::string out;
  for (const Value& value : row) {
    out += ValueToString(value);
    out += '\x1f';
  }
  return out;
}

/// Compares the engine's table with the oracle's. Unordered queries demand
/// multiset equality. Ordered queries are verified tie-aware: the engine's
/// key-tuple sequence must equal the comparator's prescribed sequence
/// (truncated under LIMIT), and every returned row must exist in the
/// oracle's result multiset — so ties may permute and LIMIT may keep any
/// tied prefix, but nothing else. Returns an empty string on agreement.
std::string CompareResult(ResultTable engine, ResultTable oracle,
                          const GenQuery& q) {
  if (engine.columns != oracle.columns) return "column headers differ";
  if (q.order.empty()) {
    engine.SortRows();
    oracle.SortRows();
    if (!(engine == oracle)) {
      return "rows differ: engine=" + std::to_string(engine.num_rows()) +
             " oracle=" + std::to_string(oracle.num_rows());
    }
    return "";
  }

  // Ordered: columns of the keys are the return indexes themselves.
  const auto& keys = q.order;
  std::stable_sort(
      oracle.rows.begin(), oracle.rows.end(),
      [&](const std::vector<Value>& a, const std::vector<Value>& b) {
        for (const auto& [column, desc] : keys) {
          int cmp = CompareCells(a[column], b[column]);
          if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
        }
        return false;
      });
  size_t expect = oracle.rows.size();
  if (q.limit.has_value()) {
    expect = std::min(expect, static_cast<size_t>(*q.limit));
  }
  if (engine.rows.size() != expect) {
    return "row count: engine=" + std::to_string(engine.num_rows()) +
           " expected=" + std::to_string(expect) + " (oracle total " +
           std::to_string(oracle.num_rows()) + ")";
  }
  for (size_t i = 0; i < expect; ++i) {
    for (const auto& [column, desc] : keys) {
      (void)desc;
      if (CompareCells(engine.rows[i][column], oracle.rows[i][column]) != 0) {
        return "order-key sequence diverges at row " + std::to_string(i);
      }
    }
  }
  std::multiset<std::string> pool;
  for (const auto& row : oracle.rows) pool.insert(RenderRow(row));
  for (const auto& row : engine.rows) {
    auto it = pool.find(RenderRow(row));
    if (it == pool.end()) return "engine row not in oracle result";
    pool.erase(it);
  }
  return "";
}

// --- the test ----------------------------------------------------------------

std::vector<std::pair<std::string, EngineOptions>> AllOptionCombos() {
  std::vector<std::pair<std::string, EngineOptions>> out;
  for (int mask = 0; mask < 32; ++mask) {
    EngineOptions options;
    options.enable_reordering = (mask & 1) != 0;
    options.enable_parallelism = (mask & 2) != 0;
    options.num_threads = 2;
    options.enable_semi_join = (mask & 4) != 0;
    options.enable_temporal_pruning = (mask & 8) != 0;
    options.enable_batch_kernels = (mask & 16) != 0;
    std::string name = std::string("reorder=") + ((mask & 1) ? "1" : "0") +
                       " parallel=" + ((mask & 2) ? "1" : "0") +
                       " semijoin=" + ((mask & 4) ? "1" : "0") +
                       " temporal=" + ((mask & 8) ? "1" : "0") +
                       " kernels=" + ((mask & 16) ? "1" : "0");
    out.emplace_back(std::move(name), options);
  }
  return out;
}

TEST(OracleDiffTest, EngineMatchesBruteForceOracle) {
  uint64_t seed = 20180510;
  if (const char* env = std::getenv("AIQL_ORACLE_SEED")) {
    seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  World world = GenerateWorld(seed, 1500);
  AuditDatabase db = BuildDatabase(world);

  std::string snap_path = "/tmp/aiql_oracle_diff_test.snap";
  ASSERT_TRUE(SaveSnapshot(db, snap_path).ok());
  auto store = SnapshotStore::Open(snap_path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  auto combos = AllOptionCombos();
  std::vector<std::unique_ptr<AiqlEngine>> db_engines, snap_engines;
  for (const auto& [name, options] : combos) {
    db_engines.push_back(std::make_unique<AiqlEngine>(&db, options));
    snap_engines.push_back(
        std::make_unique<AiqlEngine>(store->get(), options));
  }

  // Sharded axis: the same records routed into 2/4/8-way shard maps, each
  // once database-backed and once snapshot-backed.
  std::vector<EventRecord> records = WorldRecords(world);
  std::vector<std::unique_ptr<ShardedWorld>> sharded_worlds;
  for (size_t num_shards : {2u, 4u, 8u}) {
    for (bool snapshot_backed : {false, true}) {
      auto sharded = BuildShardedWorld(records, num_shards, snapshot_backed);
      ASSERT_NE(sharded, nullptr);
      sharded_worlds.push_back(std::move(sharded));
    }
  }

  // Tiered axis: the same records fully demoted into retention directories.
  // One store keeps an unlimited cold cache and runs merge compaction (so
  // merged partitions face the oracle); the other gets a deliberately tiny
  // byte budget, so every query evicts and re-materializes cold partitions.
  // Tiny-budget and unlimited must both match the oracle on every query.
  auto build_tiered = [&](const std::string& dir, size_t budget,
                          size_t min_merge) -> std::unique_ptr<TieredStore> {
    RetentionOptions retention;
    retention.dir = dir;
    retention.hot_buckets = -1;  // demote everything
    retention.memory_budget_bytes = budget;
    retention.compact_min_partitions = min_merge;
    auto store = TieredStore::Create(OracleStorage(), retention);
    if (!store.ok()) {
      ADD_FAILURE() << store.status().ToString();
      return nullptr;
    }
    EXPECT_TRUE((*store)->AppendBatch(records).ok());
    EXPECT_TRUE((*store)->Seal().ok());
    EXPECT_TRUE((*store)->CompactOnce().ok());
    EXPECT_EQ((*store)->stats().hot_partitions, 0u);
    return std::move(*store);
  };
  std::string tiered_dirs[] = {"/tmp/aiql_oracle_tiered_unlimited_" +
                                   std::to_string(getpid()),
                               "/tmp/aiql_oracle_tiered_tiny_" +
                                   std::to_string(getpid())};
  auto tiered_unlimited =
      build_tiered(tiered_dirs[0], /*budget=*/0, /*min_merge=*/2);
  auto tiered_tiny =
      build_tiered(tiered_dirs[1], /*budget=*/4096, /*min_merge=*/0);
  ASSERT_NE(tiered_unlimited, nullptr);
  ASSERT_NE(tiered_tiny, nullptr);
  EXPECT_GT(tiered_unlimited->stats().merges, 0u);
  std::vector<std::unique_ptr<AiqlEngine>> tiered_engines;
  tiered_engines.push_back(
      std::make_unique<AiqlEngine>(tiered_unlimited.get()));
  tiered_engines.push_back(std::make_unique<AiqlEngine>(tiered_tiny.get()));
  const char* tiered_names[] = {"tiered unlimited", "tiered tiny-budget"};

  int target = 200;
  if (const char* env = std::getenv("AIQL_ORACLE_QUERIES")) {
    target = std::max(1, std::atoi(env));
  }

  Rng rng(seed * 7919);
  int executed = 0;
  int attempts = 0;
  int mismatches = 0;
  int dependency_cases = 0;
  int ordered_cases = 0;
  int sharded_executions = 0;
  while (executed < target && attempts < target * 20) {
    ++attempts;
    GenCase gen;
    bool is_dependency = rng.Chance(0.35);
    if (is_dependency) {
      gen = GenerateDependencyCase(&rng, world);
    } else {
      gen.oracle = GenerateQuery(&rng, world);
      gen.text = RenderQuery(gen.oracle);
    }
    const GenQuery& q = gen.oracle;
    size_t rows_bound = 0;
    ResultTable expected = OracleExecute(world, q, &rows_bound);
    // Skip pathological cross products: they only stress row copying.
    if (rows_bound > 100000 || expected.rows.size() > 20000) continue;
    // Count coverage only for cases that actually execute below.
    if (is_dependency) ++dependency_cases;
    if (!q.order.empty()) ++ordered_cases;

    for (size_t c = 0; c < combos.size(); ++c) {
      for (AiqlEngine* engine : {db_engines[c].get(), snap_engines[c].get()}) {
        const char* source = engine == db_engines[c].get() ? "db" : "snapshot";
        auto result = engine->Execute(gen.text);
        ASSERT_TRUE(result.ok())
            << "[" << combos[c].first << " via " << source << "] failed on: "
            << gen.text << "\n  " << result.status().ToString();
        std::string failure = CompareResult(result->table, expected, q);
        if (!failure.empty()) {
          ++mismatches;
          ADD_FAILURE() << "[" << combos[c].first << " via " << source
                        << "] MISMATCH on: " << gen.text << "\n  "
                        << failure;
        }
      }
    }

    // Sharded axis: every shard configuration, with the options combination
    // rotating per case so all 32 combos meet the scatter/gather paths. The
    // oracle table doubles as the single-db reference the satellite demands
    // (the loop above just proved every single-db engine agrees with it).
    const auto& [shard_combo_name, shard_options] =
        combos[executed % combos.size()];
    for (const auto& sharded : sharded_worlds) {
      AiqlEngine engine(&sharded->map, shard_options);
      auto result = engine.Execute(gen.text);
      ASSERT_TRUE(result.ok())
          << "[" << shard_combo_name << " via " << sharded->name
          << "] failed on: " << gen.text << "\n  "
          << result.status().ToString();
      std::string failure = CompareResult(result->table, expected, q);
      if (!failure.empty()) {
        ++mismatches;
        ADD_FAILURE() << "[" << shard_combo_name << " via " << sharded->name
                      << "] MISMATCH on: " << gen.text << "\n  " << failure;
      }
      ++sharded_executions;
    }

    // Tiered axis: the same query against the all-cold stores.
    for (size_t t = 0; t < tiered_engines.size(); ++t) {
      auto result = tiered_engines[t]->Execute(gen.text);
      ASSERT_TRUE(result.ok())
          << "[" << tiered_names[t] << "] failed on: " << gen.text << "\n  "
          << result.status().ToString();
      std::string failure = CompareResult(result->table, expected, q);
      if (!failure.empty()) {
        ++mismatches;
        ADD_FAILURE() << "[" << tiered_names[t] << "] MISMATCH on: "
                      << gen.text << "\n  " << failure;
      }
    }
    ++executed;
  }
  // The widened generator must actually exercise the new surfaces.
  EXPECT_GT(dependency_cases, target / 8);
  EXPECT_GT(ordered_cases, target / 8);
  std::remove(snap_path.c_str());
  EXPECT_EQ(mismatches, 0);
  ASSERT_GE(executed, std::min(target, 50))
      << "query generator rejected too many candidates";

  // Every query ran against every shard configuration too (the acceptance
  // floor is 500 sharded executions with zero mismatches).
  EXPECT_GE(sharded_executions, std::min(target, 100) * 5);

  // Every query ran against the lazy store as well; by now it should have
  // materialized partitions on demand.
  EXPECT_GT((*store)->loaded_partitions(), 0u);

  // The tiny-budget tiered store must have been under real cache pressure —
  // identical results above were produced through eviction + re-reads.
  RetentionStats tiny_stats = tiered_tiny->stats();
  EXPECT_GT(tiny_stats.cache.evictions, 0u);
  EXPECT_GT(tiny_stats.reopens, 0u);
  tiered_engines.clear();
  tiered_unlimited.reset();
  tiered_tiny.reset();
  for (const std::string& dir : tiered_dirs) {
    std::remove((dir + "/DATA").c_str());
    for (uint64_t seq = 0; seq <= 64; ++seq) {
      std::remove((dir + "/FOOTER." + std::to_string(seq)).c_str());
    }
    rmdir(dir.c_str());
  }
}

// A handcrafted cross-shard join: the two patterns' events live on
// different shards and only the shared process variable binds them — the
// scatter/gather executor must exchange the binding across the shard
// boundary and return exactly one row under every options combination.
TEST(OracleDiffTest, CrossShardJoinDeterministic) {
  auto rec = [](AgentId agent, OpType op, Timestamp start, ProcessRef subject,
                ObjectRef object) {
    EventRecord record;
    record.agent_id = agent;
    record.op = op;
    record.start_ts = start;
    record.end_ts = start + kSecond;
    record.amount = 1;
    record.subject = std::move(subject);
    record.object = std::move(object);
    return record;
  };
  ProcessRef alpha{1, 100, "alpha.exe", "root"};
  ProcessRef beta{2, 200, "beta.exe", "root"};
  std::vector<EventRecord> records;
  // The matching pair: alpha writes a file on agent 1, then the SAME
  // process is observed connecting on agent 2.
  records.push_back(rec(1, OpType::kWrite, T0() + 10 * kSecond, alpha,
                        FileRef{1, "/data/x"}));
  records.push_back(
      rec(2, OpType::kConnect, T0() + 60 * kSecond, alpha,
          NetworkRef{2, "10.0.0.2", "8.8.8.8", 40000, 443, "tcp"}));
  // Decoys: a different process connecting, and an alpha write AFTER the
  // connect (fails the temporal relation).
  records.push_back(
      rec(2, OpType::kConnect, T0() + 70 * kSecond, beta,
          NetworkRef{2, "10.0.0.2", "9.9.9.9", 40001, 443, "tcp"}));
  records.push_back(rec(1, OpType::kWrite, T0() + 120 * kSecond, alpha,
                        FileRef{1, "/data/late"}));

  auto ranges = EvenAgentRanges(2, 1, 2);
  auto routed = RouteRecordsByAgent(ranges, records);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  ShardMap map;
  for (size_t s = 0; s < 2; ++s) {
    auto db = std::make_unique<AuditDatabase>(OracleStorage());
    for (const EventRecord& record : (*routed)[s]) {
      ASSERT_TRUE(db->Append(record).ok());
    }
    ASSERT_TRUE(db->Seal().ok());
    dbs.push_back(std::move(db));
    ASSERT_TRUE(map.AddShard(dbs.back().get(), ranges[s]).ok());
  }

  const std::string query =
      "proc p1[\"alpha.exe\"] write file f1[\"/data/x\"] as e1 "
      "proc p1 connect ip n1 as e2 "
      "with e1 before e2 "
      "return p1, f1, n1";
  for (const auto& [name, options] : AllOptionCombos()) {
    AiqlEngine engine(&map, options);
    auto result = engine.Execute(query);
    ASSERT_TRUE(result.ok())
        << "[" << name << "] " << result.status().ToString();
    ASSERT_EQ(result->table.num_rows(), 1u) << "[" << name << "]";
    EXPECT_EQ(ValueToString(result->table.rows[0][0]), "alpha.exe");
    EXPECT_EQ(ValueToString(result->table.rows[0][1]), "/data/x");
    EXPECT_EQ(ValueToString(result->table.rows[0][2]), "8.8.8.8");
  }
}

// --- chaos axis --------------------------------------------------------------

/// True when `sub`'s rows (as a multiset) are contained in `super`'s.
bool RowsAreSubset(const ResultTable& sub,
                   const std::multiset<std::string>& super) {
  std::multiset<std::string> pool = super;
  for (const auto& row : sub.rows) {
    auto it = pool.find(RenderRow(row));
    if (it == pool.end()) return false;
    pool.erase(it);
  }
  return true;
}

// A sampled query subset reruns with random failpoints armed. The contract
// under injected faults: strict mode either heals through retries (result
// byte-identical to the oracle) or fails cleanly with the injected /
// kUnavailable code — never silently wrong rows; partial mode returns a
// subset of the oracle rows with per-shard annotations that account for
// every dropped shard; and with failpoints cleared the same query matches
// the oracle byte-identically again.
TEST(OracleDiffTest, ChaosFailpointAxisMatchesOracle) {
  Failpoint::ClearAll();
  uint64_t seed = 20180510;
  if (const char* env = std::getenv("AIQL_ORACLE_SEED")) {
    seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  World world = GenerateWorld(seed, 1200);
  std::vector<EventRecord> records = WorldRecords(world);
  auto sharded = BuildShardedWorld(records, 4, /*snapshot_backed=*/true);
  ASSERT_NE(sharded, nullptr);

  int target = 20;
  if (const char* env = std::getenv("AIQL_ORACLE_CHAOS_QUERIES")) {
    target = std::max(1, std::atoi(env));
  }

  EngineOptions strict_options;
  strict_options.shard_retry_backoff = std::chrono::milliseconds(1);
  EngineOptions partial_options = strict_options;
  partial_options.shard_policy = ShardPolicy::kPartial;

  Rng rng(seed * 104729);
  int executed = 0;
  int attempts = 0;
  int degraded_runs = 0;
  while (executed < target && attempts < target * 20) {
    ++attempts;
    GenQuery q = GenerateQuery(&rng, world);
    // Subset-vs-oracle comparison is only sound un-limited: a top-k of a
    // shard subset need not be a subset of the global top-k.
    q.order.clear();
    q.limit.reset();
    std::string text = RenderQuery(q);
    size_t rows_bound = 0;
    ResultTable expected = OracleExecute(world, q, &rows_bound);
    if (rows_bound > 100000 || expected.rows.size() > 20000) continue;
    std::multiset<std::string> oracle_pool;
    for (const auto& row : expected.rows) oracle_pool.insert(RenderRow(row));

    // Weighted toward deterministic shard faults so the partial-mode
    // degradation path is reliably exercised; the probabilistic / healing
    // faults cover retry recovery and checksum-caught corruption.
    std::string fault;
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
        fault = "shard.scatter=error(IOError)@arg" +
                std::to_string(rng.Uniform(4));
        break;
      case 4:
      case 5:
        fault = "shard.scatter=error(Unavailable)@p0.4@seed" +
                std::to_string(rng.Next());
        break;
      case 6:
        fault = "snapshot.read.partition=error(IOError)@p0.25@seed" +
                std::to_string(rng.Next());
        break;
      case 7:
        fault = "snapshot.read.partition=corrupt@nth1";
        break;
      default:
        fault = "shard.scatter=latency(2000)@arg" +
                std::to_string(rng.Uniform(4));
        break;
    }
    auto clean_failure_code = [](StatusCode code) {
      return code == StatusCode::kUnavailable ||
             code == StatusCode::kIOError || code == StatusCode::kCorruption;
    };

    // Strict under fault: exact match or a clean failure.
    ASSERT_TRUE(Failpoint::Configure(fault).ok()) << fault;
    {
      AiqlEngine engine(&sharded->map, strict_options);
      auto result = engine.Execute(text);
      if (result.ok()) {
        EXPECT_EQ(CompareResult(result->table, expected, q), "")
            << "[strict chaos '" << fault << "'] on: " << text;
      } else {
        EXPECT_TRUE(clean_failure_code(result.status().code()))
            << "[strict chaos '" << fault << "'] dirty failure on: " << text
            << "\n  " << result.status().ToString();
      }
    }
    Failpoint::ClearAll();

    // Partial under fault (re-armed so per-site hit counters restart):
    // subset of the oracle rows with accounting annotations, or a clean
    // all-shards-failed error.
    ASSERT_TRUE(Failpoint::Configure(fault).ok()) << fault;
    {
      AiqlEngine engine(&sharded->map, partial_options);
      auto result = engine.Execute(text);
      if (result.ok()) {
        if (result->degraded.partial) {
          ++degraded_runs;
          EXPECT_TRUE(RowsAreSubset(result->table, oracle_pool))
              << "[partial chaos '" << fault
              << "'] rows not a subset of oracle on: " << text;
          int dropped = 0;
          for (const ShardExecStatus& st : result->degraded.shard_status) {
            if (st.dropped) ++dropped;
          }
          EXPECT_GE(dropped, 1);
          EXPECT_EQ(dropped, result->degraded.shards_failed +
                                 result->degraded.shards_timed_out)
              << "[partial chaos '" << fault << "'] annotation mismatch";
        } else {
          EXPECT_EQ(CompareResult(result->table, expected, q), "")
              << "[partial chaos '" << fault << "' not degraded] on: "
              << text;
        }
      } else {
        EXPECT_TRUE(clean_failure_code(result.status().code()))
            << "[partial chaos '" << fault << "'] dirty failure on: " << text
            << "\n  " << result.status().ToString();
      }
    }
    Failpoint::ClearAll();

    // Fault cleared: byte-identical to the oracle again.
    {
      AiqlEngine engine(&sharded->map, strict_options);
      auto result = engine.Execute(text);
      ASSERT_TRUE(result.ok())
          << "[cleared '" << fault << "'] " << result.status().ToString();
      EXPECT_EQ(CompareResult(result->table, expected, q), "")
          << "[cleared '" << fault << "'] on: " << text;
    }
    ++executed;
  }
  ASSERT_GE(executed, std::min(target, 10))
      << "chaos query generator rejected too many candidates";
  // The catalog skews toward real degradation; make sure the partial path
  // actually exercised shard drops rather than healing everything.
  EXPECT_GE(degraded_runs, executed / 4);
}

}  // namespace
}  // namespace aiql
