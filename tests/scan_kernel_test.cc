// Differential tests for the batch-at-a-time scan kernels (PR 8).
//
// The contract under test: ScanPartition with enable_batch_kernels on and
// off produces pointer-identical match vectors, identical inspected counts,
// and identical governance charges — across op masks, time ranges,
// candidate sets (including empty ones and out-of-universe object ids),
// agent filters (including hostile huge ids), same-var patterns, and row
// budgets that stop the scan mid-partition. Plus unit coverage for the
// bitset layer and the versioned dictionary-match cache the id-set
// predicates build on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bitset.h"
#include "common/cancellation.h"
#include "common/interner.h"
#include "common/like_matcher.h"
#include "common/rng.h"
#include "engine/scan.h"
#include "storage/database.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

// --- bitset layer -----------------------------------------------------------

TEST(DenseBitsetTest, AddContainsGrowRoundTrip) {
  DenseBitset set(130);
  EXPECT_EQ(set.num_words(), 3u);
  for (uint32_t id : {0u, 63u, 64u, 129u}) set.Add(id);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(63));
  EXPECT_TRUE(set.Contains(64));
  EXPECT_TRUE(set.Contains(129));
  EXPECT_FALSE(set.Contains(1));
  EXPECT_FALSE(set.Contains(128));
  // Guarded: beyond-universe ids are absent, not UB.
  EXPECT_FALSE(set.Contains(500));
  EXPECT_FALSE(set.Contains(UINT32_MAX));
  EXPECT_EQ(set.Count(), 4u);
  EXPECT_EQ(set.ToVector(), (std::vector<uint32_t>{0, 63, 64, 129}));

  set.Grow(1000);
  EXPECT_TRUE(set.Contains(129));  // members preserved
  set.Add(999);
  EXPECT_TRUE(set.Contains(999));
  set.Grow(10);  // never shrinks
  EXPECT_TRUE(set.Contains(999));
}

TEST(DenseBitsetTest, IntersectAndUnionMatchSetAlgebra) {
  DenseBitset a(200), b(100);
  for (uint32_t id : {1u, 70u, 99u, 150u}) a.Add(id);
  for (uint32_t id : {1u, 99u}) b.Add(id);
  // Intersect truncates beyond b's universe and returns the fused count.
  EXPECT_EQ(a.IntersectWith(b), 2u);
  EXPECT_EQ(a.ToVector(), (std::vector<uint32_t>{1, 99}));
  EXPECT_FALSE(a.Contains(150));

  DenseBitset c(10);
  c.Add(3);
  DenseBitset d(300);
  d.Add(3);
  d.Add(290);
  c.UnionWith(d);  // grows c
  EXPECT_EQ(c.ToVector(), (std::vector<uint32_t>{3, 290}));
}

TEST(IdFilterTest, HybridDenseSparseMembership) {
  // A hostile id near UINT32_MAX must not blow up the allocation; it lands
  // in the sorted-overflow representation instead.
  std::vector<uint32_t> ids = {7, 7, 1024, 4000000000u, IdFilter::kDenseLimit,
                               4000000000u};
  IdFilter filter(ids);
  EXPECT_TRUE(filter.Contains(7));
  EXPECT_TRUE(filter.Contains(1024));
  EXPECT_TRUE(filter.Contains(4000000000u));
  EXPECT_TRUE(filter.Contains(IdFilter::kDenseLimit));
  EXPECT_FALSE(filter.Contains(8));
  EXPECT_FALSE(filter.Contains(4000000001u));
  EXPECT_FALSE(filter.Contains(UINT32_MAX));
}

// --- dictionary-match cache -------------------------------------------------

std::vector<uint32_t> BruteForceMatches(const StringInterner& dict,
                                        const LikeMatcher& matcher) {
  std::vector<uint32_t> out;
  dict.ForEach([&](StringId id, std::string_view text) {
    if (matcher.Matches(text)) out.push_back(id);
  });
  return out;
}

TEST(DictionaryMatchCacheTest, MatchesBruteForceAndCachesByPattern) {
  StringInterner dict;
  for (int i = 0; i < 100; ++i) {
    dict.Intern((i % 3 == 0 ? "/usr/bin/tool" : "/tmp/scratch") +
                std::to_string(i));
  }
  DictionaryMatchCache cache;
  for (const char* pattern :
       {"/usr/bin/%", "%scratch%", "/tmp/scratch1", "%9", "nomatch"}) {
    LikeMatcher matcher(pattern);
    auto match = cache.Match(dict, matcher);
    ASSERT_NE(match, nullptr);
    EXPECT_EQ(match->version, dict.version());
    EXPECT_EQ(match->bits.ToVector(), BruteForceMatches(dict, matcher))
        << "pattern=" << pattern;
    // Same pattern again: cache hit, same immutable object.
    EXPECT_EQ(cache.Match(dict, matcher).get(), match.get());
  }
  EXPECT_EQ(cache.size(), 5u);
}

TEST(DictionaryMatchCacheTest, StaleEntryExtendsOverAppendedTail) {
  StringInterner dict;
  dict.Intern("cmd.exe");
  dict.Intern("bash");
  DictionaryMatchCache cache;
  LikeMatcher matcher("%.exe");
  auto before = cache.Match(dict, matcher);
  EXPECT_EQ(before->bits.ToVector(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(before->version, 2u);

  // Streaming append grows the dictionary; the entry is now stale.
  dict.Intern("powershell.exe");
  dict.Intern("sshd");
  auto after = cache.Match(dict, matcher);
  ASSERT_NE(after.get(), before.get());  // fresh immutable publication
  EXPECT_EQ(after->version, 4u);
  EXPECT_EQ(after->bits.ToVector(), (std::vector<uint32_t>{0, 2}));
  // The old shared_ptr a concurrent reader might hold is untouched.
  EXPECT_EQ(before->version, 2u);
  EXPECT_EQ(before->bits.ToVector(), (std::vector<uint32_t>{0}));
  // And the refreshed entry replaced the stale one in place.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Match(dict, matcher).get(), after.get());
}

TEST(DictionaryMatchCacheTest, EpochClearBoundsEntryCount) {
  StringInterner dict;
  dict.Intern("value");
  DictionaryMatchCache cache;
  for (size_t i = 0; i < DictionaryMatchCache::kMaxEntries + 50; ++i) {
    cache.Match(dict, LikeMatcher("pattern" + std::to_string(i)));
    EXPECT_LE(cache.size(), DictionaryMatchCache::kMaxEntries);
  }
}

TEST(DictionaryMatchCacheTest, ConcurrentMatchersSeeConsistentBitsets) {
  // ReadView contract: the dictionary is stable while queries run; many
  // query threads may Match the same cache concurrently (first-wins insert
  // races, stale-entry refresh races). Run alternating stable phases with a
  // growing dictionary in between; every thread verifies full bitset
  // contents against brute force. tsan covers the synchronization.
  StringInterner dict;
  DictionaryMatchCache cache;
  const std::vector<std::string> patterns = {"%.exe", "proc%", "%7%",
                                             "proc4.exe", "%"};
  std::atomic<int> mismatches{0};
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 40; ++i) {
      dict.Intern("proc" + std::to_string(phase * 40 + i) +
                  (i % 2 == 0 ? ".exe" : ".so"));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < 20; ++round) {
          LikeMatcher matcher(patterns[(t + round) % patterns.size()]);
          auto match = cache.Match(dict, matcher);
          if (match == nullptr || match->version != dict.version() ||
              match->bits.ToVector() != BruteForceMatches(dict, matcher)) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

// --- kernel-on vs kernel-off differential -----------------------------------

/// A database with all three object kinds, several agents, duplicate
/// subject/object ids, and enough rows that partitions span multiple
/// governance strides. dedup_window = 0 keeps row counts predictable.
AuditDatabase KernelDatabase(int rows) {
  StorageOptions options;
  options.dedup_window = 0;
  AuditDatabase db(options);
  Rng rng(20180510);
  const OpType ops[] = {OpType::kRead,    OpType::kWrite,  OpType::kExecute,
                        OpType::kConnect, OpType::kAccept, OpType::kStart};
  for (int i = 0; i < rows; ++i) {
    EventRecord record;
    record.agent_id = 1 + (i % 4);
    record.op = ops[rng.Uniform(6)];
    record.start_ts = T0() + static_cast<Duration>(rng.Uniform(4 * kHour));
    record.end_ts = record.start_ts + kSecond;
    record.amount = 1 + rng.Uniform(4096);
    record.subject =
        ProcessRef{record.agent_id, static_cast<uint32_t>(100 + (i % 7)),
                   "exe" + std::to_string(i % 5), "root"};
    switch (i % 3) {
      case 0:
        record.object = FileRef{record.agent_id,
                                "/data/f" + std::to_string(i % 11)};
        break;
      case 1:
        record.object = ProcessRef{
            record.agent_id, static_cast<uint32_t>(100 + ((i + 1) % 7)),
            "exe" + std::to_string((i + 1) % 5), "root"};
        break;
      default:
        record.object = NetworkRef{record.agent_id, "10.0.0.1",
                                   "10.1.2." + std::to_string(i % 9),
                                   1234, 443, "tcp"};
    }
    EXPECT_TRUE(db.Append(std::move(record)).ok());
  }
  db.Seal();
  return db;
}

CompiledPattern RandomPattern(const AuditDatabase& db, Rng* rng) {
  CompiledPattern pattern;
  pattern.op_mask = static_cast<OpMask>(1 + rng->Uniform(0x1FF));
  pattern.subject.type = EntityType::kProcess;
  pattern.object.type = static_cast<EntityType>(rng->Uniform(3));
  // Random candidate sets, universe-sized as CompilePatterns would build
  // them. ~Half the configs constrain each side.
  if (rng->Uniform(2) == 0) {
    size_t universe = db.entities().NumEntities(EntityType::kProcess);
    EntitySet candidates(universe);
    for (size_t id = 0; id < universe; ++id) {
      if (rng->Uniform(3) == 0) candidates.Add(static_cast<uint32_t>(id));
    }
    pattern.subject.candidates = std::move(candidates);
    pattern.subject.has_constraints = true;
  }
  if (rng->Uniform(2) == 0) {
    size_t universe = db.entities().NumEntities(pattern.object.type);
    EntitySet candidates(universe);
    for (size_t id = 0; id < universe; ++id) {
      if (rng->Uniform(2) == 0) candidates.Add(static_cast<uint32_t>(id));
    }
    pattern.object.candidates = std::move(candidates);
    pattern.object.has_constraints = true;
  }
  return pattern;
}

TimeRange RandomRange(Rng* rng) {
  switch (rng->Uniform(4)) {
    case 0:
      return TimeRange{INT64_MIN, INT64_MAX};
    case 1:
      return TimeRange{T0() + kHour, T0() + 3 * kHour};
    case 2:
      return TimeRange{T0() + static_cast<Duration>(rng->Uniform(2 * kHour)),
                       T0() + 2 * kHour +
                           static_cast<Duration>(rng->Uniform(2 * kHour))};
    default:  // empty-ish sliver
      return TimeRange{T0() + 90 * kMinute, T0() + 91 * kMinute};
  }
}

TEST(ScanKernelDifferentialTest, KernelOnAndOffArePointerIdentical) {
  AuditDatabase db = KernelDatabase(4000);
  Rng rng(42);
  int configs_with_matches = 0;
  for (int config = 0; config < 60; ++config) {
    CompiledPattern pattern = RandomPattern(db, &rng);
    TimeRange range = RandomRange(&rng);
    bool same_var = rng.Uniform(4) == 0;
    std::optional<AgentFilterSet> agent_filter;
    if (rng.Uniform(3) == 0) {
      // Include a hostile huge id to exercise the sparse overflow.
      agent_filter.emplace(std::vector<AgentId>{
          static_cast<AgentId>(1 + rng.Uniform(4)),
          static_cast<AgentId>(1 + rng.Uniform(4)), 4000000000u});
    }
    const AgentFilterSet* filter =
        agent_filter.has_value() ? &*agent_filter : nullptr;
    size_t total_matches = 0;
    for (const auto& [key, partition] : db.partitions()) {
      std::vector<const Event*> with_kernels, without_kernels;
      uint64_t inspected_on =
          ScanPartition(*partition, pattern, range, filter, same_var,
                        &with_kernels, nullptr, true);
      uint64_t inspected_off =
          ScanPartition(*partition, pattern, range, filter, same_var,
                        &without_kernels, nullptr, false);
      EXPECT_EQ(with_kernels, without_kernels) << "config=" << config;
      EXPECT_EQ(inspected_on, inspected_off) << "config=" << config;
      // Ascending event-index order, pointers into partition storage.
      EXPECT_TRUE(std::is_sorted(with_kernels.begin(), with_kernels.end()));
      total_matches += with_kernels.size();
    }
    if (total_matches > 0) ++configs_with_matches;
  }
  // The differential is vacuous if nothing ever matches.
  EXPECT_GT(configs_with_matches, 10);
}

TEST(ScanKernelDifferentialTest, EmptyCandidateSetMatchesNothing) {
  AuditDatabase db = KernelDatabase(500);
  CompiledPattern pattern;
  pattern.op_mask = static_cast<OpMask>(0x1FF);
  pattern.subject.type = EntityType::kProcess;
  pattern.object.type = EntityType::kFile;
  pattern.subject.candidates = EntitySet(0);  // zero-word landing pad
  pattern.subject.has_constraints = true;
  for (const auto& [key, partition] : db.partitions()) {
    for (bool kernels : {true, false}) {
      std::vector<const Event*> out;
      ScanPartition(*partition, pattern, TimeRange{INT64_MIN, INT64_MAX},
                    nullptr, false, &out, nullptr, kernels);
      EXPECT_TRUE(out.empty());
    }
  }
}

TEST(ScanKernelDifferentialTest, GovernedBudgetsChargeIdentically) {
  AuditDatabase db = KernelDatabase(6000);
  Rng rng(7);
  // Budgets straddling stride (1024) and batch (16) boundaries, including
  // mid-batch and mid-stride stops.
  const uint64_t budgets[] = {1, 7, 16, 100, 1023, 1024, 1025, 1500,
                              2048, 5000, 100000};
  for (uint64_t budget : budgets) {
    CompiledPattern pattern = RandomPattern(db, &rng);
    TimeRange range = RandomRange(&rng);
    QueryLimits limits;
    limits.max_rows = budget;
    QueryContext ctx_on(limits), ctx_off(limits);
    uint64_t inspected_on = 0, inspected_off = 0;
    std::vector<const Event*> with_kernels, without_kernels;
    for (const auto& [key, partition] : db.partitions()) {
      inspected_on += ScanPartition(*partition, pattern, range, nullptr,
                                    false, &with_kernels, &ctx_on, true);
      inspected_off += ScanPartition(*partition, pattern, range, nullptr,
                                     false, &without_kernels, &ctx_off, false);
    }
    EXPECT_EQ(with_kernels, without_kernels) << "budget=" << budget;
    EXPECT_EQ(inspected_on, inspected_off) << "budget=" << budget;
    EXPECT_EQ(ctx_on.rows_charged(), ctx_off.rows_charged())
        << "budget=" << budget;
    EXPECT_EQ(ctx_on.Check().code(), ctx_off.Check().code())
        << "budget=" << budget;
  }
}

TEST(ScanKernelDifferentialTest, ExhaustedBudgetStopsBothModesUpFront) {
  AuditDatabase db = KernelDatabase(2000);
  CompiledPattern pattern;
  pattern.op_mask = static_cast<OpMask>(0x1FF);
  pattern.subject.type = EntityType::kProcess;
  pattern.object.type = EntityType::kFile;
  QueryLimits limits;
  limits.max_rows = 1;
  for (bool kernels : {true, false}) {
    QueryContext ctx(limits);
    ASSERT_FALSE(ctx.ChargeRows(10).ok());  // already violated
    std::vector<const Event*> out;
    for (const auto& [key, partition] : db.partitions()) {
      ScanPartition(*partition, pattern, TimeRange{INT64_MIN, INT64_MAX},
                    nullptr, false, &out, &ctx, kernels);
    }
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace aiql
