// Tests for the SQL baseline: mini-SQL parser, generic executor, AIQL->SQL
// translation, and differential equivalence against the AIQL engine on both
// the normalized and the flat (unoptimized) schema.

#include <gtest/gtest.h>

#include "engine/aiql_engine.h"
#include "query/parser.h"
#include "sql/catalog.h"
#include "sql/sql_executor.h"
#include "sql/sql_parser.h"
#include "sql/translator.h"
#include "storage/database.h"

namespace aiql {
namespace {

Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

EventRecord MakeEvent(AgentId agent, OpType op, Timestamp start,
                      ProcessRef subject, ObjectRef object,
                      uint64_t amount = 0) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + kSecond;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions options;
    options.dedup_window = 0;  // these tests exercise SQL semantics, not dedup
    db_ = std::make_unique<AuditDatabase>(options);
    Timestamp t = T0() + 8 * kHour;
    ProcessRef cmd{7, 100, "cmd.exe", "system"};
    ProcessRef osql{7, 101, "osql.exe", "system"};
    ProcessRef sqlservr{7, 102, "sqlservr.exe", "system"};
    ProcessRef sbblv{7, 103, "sbblv.exe", "system"};
    ProcessRef chrome{7, 110, "chrome.exe", "alice"};
    FileRef dump{7, "C:\\Temp\\backup1.dmp"};
    NetworkRef exfil{7, "10.0.0.7", "172.16.0.129", 49152, 443, "tcp"};
    NetworkRef web{7, "10.0.0.7", "93.184.216.34", 50000, 443, "tcp"};

    EXPECT_TRUE(db_->Append(MakeEvent(7, OpType::kStart, t, cmd, osql)).ok());
    EXPECT_TRUE(db_->Append(MakeEvent(7, OpType::kWrite, t + 2 * kMinute,
                                      sqlservr, dump, 1 << 20))
                    .ok());
    EXPECT_TRUE(db_->Append(MakeEvent(7, OpType::kRead, t + 5 * kMinute,
                                      sbblv, dump, 1 << 20))
                    .ok());
    EXPECT_TRUE(db_->Append(MakeEvent(7, OpType::kWrite, t + 6 * kMinute,
                                      sbblv, exfil, 900000))
                    .ok());
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(db_->Append(MakeEvent(7, OpType::kWrite, t + i * kSecond,
                                        chrome, web, 1000))
                      .ok());
    }
    db_->Seal();
    optimized_ = std::make_unique<OptimizedCatalog>(db_.get());
    flat_ = std::make_unique<FlatCatalog>(db_.get());
  }

  std::unique_ptr<AuditDatabase> db_;
  std::unique_ptr<OptimizedCatalog> optimized_;
  std::unique_ptr<FlatCatalog> flat_;
};

TEST_F(SqlTest, ParserHandlesBasicSelect) {
  auto select = ParseSql(
      "SELECT p.exe_name AS name, p.pid FROM process p "
      "WHERE p.exe_name LIKE '%cmd%' AND p.pid >= 100 LIMIT 5;");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ((*select)->items.size(), 2u);
  EXPECT_EQ((*select)->items[0].alias, "name");
  EXPECT_EQ((*select)->from[0].table, "process");
  EXPECT_EQ((*select)->limit, 5);
}

TEST_F(SqlTest, ParserHandlesSubqueryAndLeftJoin) {
  auto select = ParseSql(
      "SELECT a.x FROM (SELECT p.pid AS x FROM process p) a "
      "LEFT JOIN (SELECT p.pid AS y FROM process p) b ON b.y = a.x - 1 "
      "WHERE COALESCE(a.x, 0) > 0");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ((*select)->from.size(), 2u);
  EXPECT_TRUE((*select)->from[1].left_join);
}

TEST_F(SqlTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseSql("SELECT FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT x FROM (SELECT y FROM t)").ok());  // no alias
  EXPECT_FALSE(ParseSql("FROBNICATE x").ok());
  EXPECT_FALSE(ParseSql("SELECT x FROM t WHERE 'unterminated").ok());
}

TEST_F(SqlTest, ExecutorScansWithPredicates) {
  SqlExecutor executor(optimized_.get());
  auto result = executor.Execute(
      "SELECT p.exe_name FROM process p WHERE p.exe_name LIKE '%sql%'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 2u);  // osql.exe + sqlservr.exe
}

TEST_F(SqlTest, ExecutorJoinsEventsWithEntities) {
  SqlExecutor executor(optimized_.get());
  auto result = executor.Execute(
      "SELECT DISTINCT s.exe_name, f.path "
      "FROM events e, process s, file f "
      "WHERE s.id = e.subject_id AND f.id = e.object_id "
      "AND e.object_type = 'file' AND e.op = 'read'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(ValueToString(result->table.rows[0][0]), "sbblv.exe");
}

TEST_F(SqlTest, ExecutorGroupByHaving) {
  SqlExecutor executor(optimized_.get());
  auto result = executor.Execute(
      "SELECT s.exe_name, COUNT(*) AS n, SUM(e.amount) AS total "
      "FROM events e, process s WHERE s.id = e.subject_id "
      "GROUP BY s.id, s.exe_name HAVING n > 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(ValueToString(result->table.rows[0][0]), "chrome.exe");
  EXPECT_EQ(ValueToString(result->table.rows[0][1]), "30");
}

TEST_F(SqlTest, ExecutorWindowsTableFunction) {
  SqlExecutor executor(optimized_.get());
  auto result = executor.Execute(
      "SELECT w.idx, w.wstart FROM windows(0, 100, 50, 25) w");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 4u);  // starts 0, 25, 50, 75
  EXPECT_EQ(ValueToString(result->table.rows[3][1]), "75");
}

TEST_F(SqlTest, ExecutorLeftJoinNullExtension) {
  SqlExecutor executor(optimized_.get());
  auto result = executor.Execute(
      "SELECT a.pid, COALESCE(b.pid, -1) "
      "FROM (SELECT p.pid AS pid FROM process p) a "
      "LEFT JOIN (SELECT p.pid AS pid FROM process p WHERE p.pid = 100) b "
      "ON b.pid = a.pid");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t minus_one = 0;
  for (const auto& row : result->table.rows) {
    if (ValueToString(row[1]) == "-1") ++minus_one;
  }
  EXPECT_EQ(result->table.num_rows(), 5u);
  EXPECT_EQ(minus_one, 4);  // all but pid=100 null-extended
}

TEST_F(SqlTest, FlatCatalogHasDenormalizedRows) {
  EXPECT_EQ(flat_->num_rows(), 34u);
  SqlExecutor executor(flat_.get());
  auto result = executor.Execute(
      "SELECT DISTINCT l.subject_exe FROM audit_log l "
      "WHERE l.op = 'write' AND l.dst_ip LIKE '172.16.0.129'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(ValueToString(result->table.rows[0][0]), "sbblv.exe");
}

// --- translator ---------------------------------------------------------------

constexpr const char* kExfilAiql = R"(
  (at "05/10/2018")
  agentid = 7
  proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
  proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
  proc p4["%sbblv.exe"] read file f1 as evt3
  proc p4 read || write ip i1[dstip = "172.16.0.129"] as evt4
  with evt1 before evt2, evt2 before evt3, evt3 before evt4
  return distinct p1, p2, p3, f1, p4, i1
)";

TEST_F(SqlTest, TranslatorEmitsJoinsAndConstraints) {
  auto parsed = ParseAiql(kExfilAiql);
  ASSERT_TRUE(parsed.ok());
  auto translated = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  const std::string& sql = translated->sql;
  EXPECT_NE(sql.find("FROM events e1"), std::string::npos);
  EXPECT_NE(sql.find("events e4"), std::string::npos);
  EXPECT_NE(sql.find("LIKE '%cmd.exe'"), std::string::npos);
  EXPECT_NE(sql.find("e1.end_ts <= e2.start_ts"), std::string::npos);
  EXPECT_GT(translated->metrics.constraints, 20u);
}

TEST_F(SqlTest, TranslatorReEncodesLikeEscapes) {
  // AIQL escape semantics ('\_' literal, bare '\' before other chars
  // ordinary) must become standard SQL escaping: ordinary backslashes
  // double and the operand gains an explicit ESCAPE '\' clause. Patterns
  // without backslashes stay untouched (no spurious ESCAPE).
  auto parsed = ParseAiql(
      "proc p[\"update\\_agent\"] write file f[\"%config\\SAM%\"] "
      "return p, f");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto translated = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  const std::string& sql = translated->sql;
  EXPECT_NE(sql.find("LIKE 'update\\_agent' ESCAPE '\\'"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("LIKE '%config\\\\SAM%' ESCAPE '\\'"),
            std::string::npos)
      << sql;

  // The mini-SQL front end accepts the emitted clause (and only '\').
  ASSERT_TRUE(
      ParseSql("SELECT p.exe_name FROM process p WHERE p.exe_name LIKE "
               "'update\\_agent' ESCAPE '\\'")
          .ok());
  EXPECT_FALSE(
      ParseSql("SELECT p.exe_name FROM process p WHERE p.exe_name LIKE "
               "'x%' ESCAPE '!'")
          .ok());
}

TEST_F(SqlTest, TranslatedSqlIsLessConciseThanAiql) {
  auto parsed = ParseAiql(kExfilAiql);
  ASSERT_TRUE(parsed.ok());
  QueryTextMetrics aiql_metrics = ComputeAiqlMetrics(*parsed);
  auto translated = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
  ASSERT_TRUE(translated.ok());
  EXPECT_GT(translated->metrics.constraints, aiql_metrics.constraints);
  EXPECT_GT(translated->metrics.words, aiql_metrics.words);
  EXPECT_GT(translated->metrics.chars, aiql_metrics.chars);
}

// Differential: AIQL engine vs generated SQL on both schemas.
class DifferentialTest : public SqlTest {
 protected:
  void CompareEngines(const std::string& aiql_text) {
    AiqlEngine engine(db_.get());
    auto aiql_result = engine.Execute(aiql_text);
    ASSERT_TRUE(aiql_result.ok()) << aiql_result.status().ToString();
    aiql_result->table.SortRows();

    auto parsed = ParseAiql(aiql_text);
    ASSERT_TRUE(parsed.ok());

    for (SqlSchemaMode mode :
         {SqlSchemaMode::kNormalized, SqlSchemaMode::kFlat}) {
      auto translated = TranslateToSql(*parsed, mode);
      ASSERT_TRUE(translated.ok()) << translated.status().ToString();
      const SqlCatalog* catalog =
          mode == SqlSchemaMode::kNormalized
              ? static_cast<const SqlCatalog*>(optimized_.get())
              : static_cast<const SqlCatalog*>(flat_.get());
      SqlExecutor executor(catalog);
      auto sql_result = executor.Execute(translated->sql);
      ASSERT_TRUE(sql_result.ok())
          << sql_result.status().ToString() << "\nSQL:\n" << translated->sql;
      sql_result->table.SortRows();
      ASSERT_EQ(sql_result->table.num_rows(), aiql_result->table.num_rows())
          << "mode=" << (mode == SqlSchemaMode::kFlat ? "flat" : "normalized")
          << "\nSQL:\n" << translated->sql;
      for (size_t r = 0; r < sql_result->table.rows.size(); ++r) {
        for (size_t c = 0; c < sql_result->table.rows[r].size(); ++c) {
          EXPECT_EQ(ValueToString(sql_result->table.rows[r][c]),
                    ValueToString(aiql_result->table.rows[r][c]))
              << "row " << r << " col " << c;
        }
      }
    }
  }
};

TEST_F(DifferentialTest, ExfiltrationQueryMatches) {
  CompareEngines(kExfilAiql);
}

TEST_F(DifferentialTest, SimpleScanMatches) {
  CompareEngines(
      "(at \"05/10/2018\") agentid = 7 "
      "proc p read file f return distinct p, f");
}

TEST_F(DifferentialTest, SharedSubjectMatches) {
  CompareEngines(
      "(at \"05/10/2018\") "
      "proc p read file f as e1 "
      "proc p write ip i as e2 "
      "with e1 before e2 "
      "return distinct p, f, i");
}

TEST_F(DifferentialTest, EventAttributesMatch) {
  CompareEngines(
      "(at \"05/10/2018\") "
      "proc p[\"%sbblv%\"] write ip i as e "
      "return p, i, e.amount");
}

TEST_F(DifferentialTest, AnomalyQueryMatches) {
  CompareEngines(R"(
    (at "05/10/2018")
    agentid = 7
    window = 1 min, step = 30 sec
    proc p write ip i as evt
    return p, avg(evt.amount) as amt, count(*) as n
    group by p
    having n >= 1
  )");
}

TEST_F(DifferentialTest, AnomalyWithHistoryMatches) {
  CompareEngines(R"(
    (at "05/10/2018")
    agentid = 7
    window = 1 min, step = 1 min
    proc p write ip i as evt
    return p, sum(evt.amount) as amt
    group by p
    having amt > amt[1] + amt[2]
  )");
}

TEST_F(DifferentialTest, DependencyQueryMatches) {
  CompareEngines(
      "(at \"05/10/2018\") "
      "forward: proc p3[\"%sqlservr%\"] ->[write] file f1 "
      "<-[read] proc p4 ->[write] ip i1 "
      "return p3, f1, p4, i1");
}

}  // namespace
}  // namespace aiql
