// Integration tests for the AIQL engine: multievent execution, joins,
// temporal relations, dependency rewriting, and anomaly windows — over a
// hand-built database with known ground truth.

#include "engine/aiql_engine.h"

#include <gtest/gtest.h>

#include "common/time_utils.h"
#include "storage/database.h"

namespace aiql {
namespace {

// Base timestamp: 2018-05-10 00:00:00 UTC.
Timestamp T0() { return *MakeTimestamp(2018, 5, 10); }

ProcessRef Proc(AgentId agent, uint32_t pid, std::string exe,
                std::string user = "system") {
  return ProcessRef{agent, pid, std::move(exe), std::move(user)};
}

EventRecord MakeEvent(AgentId agent, OpType op, Timestamp start,
                      ProcessRef subject, ObjectRef object,
                      uint64_t amount = 0, Duration len = kSecond) {
  EventRecord record;
  record.agent_id = agent;
  record.op = op;
  record.start_ts = start;
  record.end_ts = start + len;
  record.amount = amount;
  record.subject = std::move(subject);
  record.object = std::move(object);
  return record;
}

// Builds the exfiltration scenario of paper Query 1 on agent 7 plus benign
// noise on agents 7 and 8.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions options;
    options.partition_duration = kHour;
    options.dedup_window = 0;  // keep events exactly as written
    db_ = std::make_unique<AuditDatabase>(options);

    Timestamp t = T0() + 10 * kHour;
    auto cmd = Proc(7, 100, "C:\\Windows\\System32\\cmd.exe");
    auto osql = Proc(7, 101, "C:\\Tools\\osql.exe");
    auto sqlservr = Proc(7, 102, "C:\\SQL\\sqlservr.exe");
    auto sbblv = Proc(7, 103, "C:\\Temp\\sbblv.exe");
    FileRef dump{7, "C:\\Temp\\backup1.dmp"};
    NetworkRef exfil{7, "10.0.0.7", "172.16.0.129", 49152, 443, "tcp"};

    // The attack chain, in order.
    ASSERT_OK(db_->Append(
        MakeEvent(7, OpType::kStart, t, cmd, osql)));  // evt1
    ASSERT_OK(db_->Append(MakeEvent(7, OpType::kWrite, t + 2 * kMinute,
                                    sqlservr, dump, 1 << 20)));  // evt2
    ASSERT_OK(db_->Append(MakeEvent(7, OpType::kRead, t + 5 * kMinute, sbblv,
                                    dump, 1 << 20)));  // evt3
    ASSERT_OK(db_->Append(MakeEvent(7, OpType::kWrite, t + 6 * kMinute, sbblv,
                                    exfil, 900000)));  // evt4

    // Benign noise: same ops, wrong processes / files / hosts.
    auto chrome = Proc(7, 110, "C:\\Program Files\\chrome.exe", "alice");
    auto winword = Proc(8, 111, "C:\\Office\\winword.exe", "bob");
    FileRef doc{8, "C:\\Users\\bob\\report.docx"};
    NetworkRef web{7, "10.0.0.7", "93.184.216.34", 50000, 443, "tcp"};
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(db_->Append(MakeEvent(7, OpType::kWrite, t + i * kSecond,
                                      chrome, web, 1000 + i)));
      ASSERT_OK(db_->Append(MakeEvent(8, OpType::kWrite,
                                      t + i * kSecond + kMinute, winword, doc,
                                      500)));
      ASSERT_OK(db_->Append(MakeEvent(8, OpType::kRead,
                                      t + i * kSecond + 2 * kMinute, winword,
                                      doc, 500)));
    }
    db_->Seal();
    engine_ = std::make_unique<AiqlEngine>(db_.get());
  }

  static void ASSERT_OK(const Status& status) {
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  QueryResult MustExecute(const std::string& text) {
    auto result = engine_->Execute(text);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  std::unique_ptr<AuditDatabase> db_;
  std::unique_ptr<AiqlEngine> engine_;
};

TEST_F(EngineTest, SinglePatternWithConstraint) {
  QueryResult result = MustExecute(
      "proc p[\"%sbblv.exe\"] read file f return p, f");
  ASSERT_EQ(result.table.num_rows(), 1u);
  EXPECT_EQ(ValueToString(result.table.rows[0][0]), "C:\\Temp\\sbblv.exe");
  EXPECT_EQ(ValueToString(result.table.rows[0][1]), "C:\\Temp\\backup1.dmp");
}

TEST_F(EngineTest, PaperQuery1FindsExactlyTheAttackChain) {
  QueryResult result = MustExecute(R"(
    (at "05/10/2018")
    agentid = 7
    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
    proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
    proc p4["%sbblv.exe"] read file f1 as evt3
    proc p4 read || write ip i1[dstip = "172.16.0.129"] as evt4
    with evt1 before evt2, evt2 before evt3, evt3 before evt4
    return distinct p1, p2, p3, f1, p4, i1
  )");
  ASSERT_EQ(result.table.num_rows(), 1u);
  const auto& row = result.table.rows[0];
  EXPECT_EQ(ValueToString(row[0]), "C:\\Windows\\System32\\cmd.exe");
  EXPECT_EQ(ValueToString(row[1]), "C:\\Tools\\osql.exe");
  EXPECT_EQ(ValueToString(row[2]), "C:\\SQL\\sqlservr.exe");
  EXPECT_EQ(ValueToString(row[3]), "C:\\Temp\\backup1.dmp");
  EXPECT_EQ(ValueToString(row[4]), "C:\\Temp\\sbblv.exe");
  EXPECT_EQ(ValueToString(row[5]), "172.16.0.129");
  EXPECT_EQ(result.stats.patterns, 4);
}

TEST_F(EngineTest, SharedFileVariableJoins) {
  // Who read the file that sqlservr wrote?
  QueryResult result = MustExecute(
      "agentid = 7 "
      "proc p3[\"%sqlservr.exe\"] write file f1 as e1 "
      "proc p4 read file f1 as e2 "
      "return distinct p4, f1");
  ASSERT_EQ(result.table.num_rows(), 1u);
  EXPECT_EQ(ValueToString(result.table.rows[0][0]), "C:\\Temp\\sbblv.exe");
}

TEST_F(EngineTest, TemporalOrderFiltersOutWrongChains) {
  // Reversed temporal order: nothing matches.
  QueryResult result = MustExecute(
      "agentid = 7 "
      "proc p3[\"%sqlservr.exe\"] write file f1 as e1 "
      "proc p4[\"%sbblv.exe\"] read file f1 as e2 "
      "with e2 before e1 "
      "return p3, p4");
  EXPECT_EQ(result.table.num_rows(), 0u);
}

TEST_F(EngineTest, TemporalBoundEnforced) {
  // sbblv read happens 3 minutes after the write; a 1-minute bound fails,
  // a 10-minute bound succeeds.
  QueryResult narrow = MustExecute(
      "agentid = 7 "
      "proc a[\"%sqlservr.exe\"] write file f as e1 "
      "proc b[\"%sbblv.exe\"] read file f as e2 "
      "with e1 before[1 min] e2 return a, b");
  EXPECT_EQ(narrow.table.num_rows(), 0u);

  QueryResult wide = MustExecute(
      "agentid = 7 "
      "proc a[\"%sqlservr.exe\"] write file f as e1 "
      "proc b[\"%sbblv.exe\"] read file f as e2 "
      "with e1 before[10 min] e2 return a, b");
  EXPECT_EQ(wide.table.num_rows(), 1u);
}

TEST_F(EngineTest, AgentFilterIsSpatial) {
  QueryResult on7 = MustExecute(
      "agentid = 7 proc p read file f return distinct p");
  EXPECT_EQ(on7.table.num_rows(), 1u);  // only sbblv reads files on agent 7

  QueryResult on8 = MustExecute(
      "agentid = 8 proc p read file f return distinct p");
  EXPECT_EQ(on8.table.num_rows(), 1u);  // winword
  EXPECT_EQ(ValueToString(on8.table.rows[0][0]), "C:\\Office\\winword.exe");
}

TEST_F(EngineTest, TimeWindowExcludesOutside) {
  QueryResult result = MustExecute(
      "(at \"05/11/2018\") proc p read file f return p");
  EXPECT_EQ(result.table.num_rows(), 0u);
}

TEST_F(EngineTest, DistinctCollapsesDuplicates) {
  QueryResult all = MustExecute(
      "agentid = 8 proc p write file f return p");
  EXPECT_EQ(all.table.num_rows(), 50u);
  QueryResult distinct = MustExecute(
      "agentid = 8 proc p write file f return distinct p");
  EXPECT_EQ(distinct.table.num_rows(), 1u);
}

TEST_F(EngineTest, LimitStopsEarly) {
  QueryResult result = MustExecute(
      "agentid = 8 proc p write file f return p limit 7");
  EXPECT_EQ(result.table.num_rows(), 7u);
}

TEST_F(EngineTest, ReturnShortcutsAndExplicitAttrs) {
  QueryResult result = MustExecute(
      "proc p[\"%sbblv.exe\"] write ip i as e "
      "return p, p.pid, p.user, i.dst_port, e.amount");
  ASSERT_EQ(result.table.num_rows(), 1u);
  const auto& row = result.table.rows[0];
  EXPECT_EQ(ValueToString(row[0]), "C:\\Temp\\sbblv.exe");
  EXPECT_EQ(ValueToString(row[1]), "103");
  EXPECT_EQ(ValueToString(row[2]), "system");
  EXPECT_EQ(ValueToString(row[3]), "443");
  EXPECT_EQ(ValueToString(row[4]), "900000");
}

TEST_F(EngineTest, ExplicitAttributeRelation) {
  // Join on user instead of process identity.
  QueryResult result = MustExecute(
      "proc a write file f1 as e1 proc b read file f2 as e2 "
      "with a.user = b.user, a.pid != b.pid "
      "return distinct a, b");
  // chrome (alice) has no read; winword (bob) writes and reads but the
  // pid != pid kills the self pair; sqlservr/sbblv share user "system".
  bool found_pair = false;
  for (const auto& row : result.table.rows) {
    if (ValueToString(row[0]) == "C:\\SQL\\sqlservr.exe" &&
        ValueToString(row[1]) == "C:\\Temp\\sbblv.exe") {
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST_F(EngineTest, StatsArePopulated) {
  QueryResult result = MustExecute(
      "agentid = 7 proc p[\"%sbblv.exe\"] read file f return p");
  EXPECT_GT(result.stats.events_scanned, 0u);
  EXPECT_GT(result.stats.partitions_scanned, 0u);
  EXPECT_EQ(result.stats.events_matched, 1u);
  EXPECT_GE(result.stats.exec_time, 0);
  EXPECT_FALSE(result.plan.empty());
}

TEST_F(EngineTest, CheckValidatesWithoutExecuting) {
  EXPECT_TRUE(engine_->Check("proc p read file f return p").ok());
  EXPECT_FALSE(engine_->Check("proc p read file f").ok());
  EXPECT_FALSE(engine_->Check("proc p frob file f return p").ok());
  auto kind = engine_->Check(
      "forward: proc p ->[write] file f return p");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, QueryKind::kDependency);
}

// --- dependency queries -----------------------------------------------------

class DependencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<AuditDatabase>();
    Timestamp t = T0();
    // Host 1: cp writes the malicious script under /var/www.
    auto cp = Proc(1, 200, "/bin/cp", "root");
    FileRef stealer1{1, "/var/www/html/info_stealer.sh"};
    // Host 1: apache reads it and serves it to host 2's wget.
    auto apache = Proc(1, 201, "/usr/sbin/apache2", "www-data");
    auto wget = Proc(2, 300, "/usr/bin/wget", "user");
    FileRef stealer2{2, "/home/user/info_stealer.sh"};

    ASSERT_TRUE(db_->Append(MakeEvent(1, OpType::kWrite, t + 1 * kMinute, cp,
                                      stealer1, 4096))
                    .ok());
    ASSERT_TRUE(db_->Append(MakeEvent(1, OpType::kRead, t + 2 * kMinute,
                                      apache, stealer1, 4096))
                    .ok());
    // Cross-host session: apache (host 1) -> wget (host 2).
    ASSERT_TRUE(db_->Append(MakeEvent(1, OpType::kConnect, t + 3 * kMinute,
                                      apache, wget))
                    .ok());
    ASSERT_TRUE(db_->Append(MakeEvent(2, OpType::kWrite, t + 4 * kMinute,
                                      wget, stealer2, 4096))
                    .ok());
    // Noise: unrelated apache reads.
    FileRef index{1, "/var/www/html/index.html"};
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_->Append(MakeEvent(1, OpType::kRead,
                                        t + 10 * kMinute + i * kSecond,
                                        apache, index, 1024))
                      .ok());
    }
    db_->Seal();
    engine_ = std::make_unique<AiqlEngine>(db_.get());
  }

  std::unique_ptr<AuditDatabase> db_;
  std::unique_ptr<AiqlEngine> engine_;
};

TEST_F(DependencyTest, PaperQuery2ForwardTracking) {
  auto result = engine_->Execute(R"(
    (at "05/10/2018")
    forward: proc p1["%/bin/cp%", agentid = 1] ->[write] file
        f1["/var/www/%info_stealer%"]
    <-[read] proc p2["%apache%"]
    ->[connect] proc p3[agentid = 2]
    ->[write] file f2["%info_stealer%"]
    return f1, p1, p2, p3, f2
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 1u);
  const auto& row = result->table.rows[0];
  EXPECT_EQ(ValueToString(row[0]), "/var/www/html/info_stealer.sh");
  EXPECT_EQ(ValueToString(row[1]), "/bin/cp");
  EXPECT_EQ(ValueToString(row[2]), "/usr/sbin/apache2");
  EXPECT_EQ(ValueToString(row[3]), "/usr/bin/wget");  // cross-host target
  EXPECT_EQ(ValueToString(row[4]), "/home/user/info_stealer.sh");
}

TEST_F(DependencyTest, ForwardOrderRejectsBackwardChains) {
  // Reverse the direction: demand the connect happen before the cp write.
  auto result = engine_->Execute(
      "backward: proc p1[\"%/bin/cp%\"] ->[write] file "
      "f1[\"%info_stealer%\"] <-[read] proc p2[\"%apache%\"] "
      "return p1, p2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows(), 0u);
}

TEST_F(DependencyTest, BackwardTrackingFindsOrigin) {
  // Start from the file on host 2 and walk provenance backwards.
  auto result = engine_->Execute(
      "backward: file f2[\"%info_stealer%\", agentid = 2] "
      "<-[write] proc p3[agentid = 2] "
      "<-[connect] proc p2[\"%apache%\"] "
      "return p3, p2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(ValueToString(result->table.rows[0][0]), "/usr/bin/wget");
  EXPECT_EQ(ValueToString(result->table.rows[0][1]), "/usr/sbin/apache2");
}

// --- anomaly queries ---------------------------------------------------------

class AnomalyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<AuditDatabase>();
    Timestamp t = T0();
    auto sbblv = Proc(7, 103, "sbblv.exe");
    auto chrome = Proc(7, 110, "chrome.exe", "alice");
    NetworkRef exfil{7, "10.0.0.7", "172.16.0.129", 49152, 443, "tcp"};
    NetworkRef web{7, "10.0.0.7", "93.184.216.34", 50000, 443, "tcp"};

    // chrome: steady 1 KB/s the whole time (no anomaly).
    for (int s = 0; s < 600; s += 5) {
      ASSERT_TRUE(db_->Append(MakeEvent(7, OpType::kWrite, t + s * kSecond,
                                        chrome, web, 1000))
                      .ok());
    }
    // sbblv: quiet trickle for 5 min, then a burst in minute 6-7.
    for (int s = 0; s < 300; s += 30) {
      ASSERT_TRUE(db_->Append(MakeEvent(7, OpType::kWrite, t + s * kSecond,
                                        sbblv, exfil, 100))
                      .ok());
    }
    for (int s = 360; s < 420; s += 5) {
      ASSERT_TRUE(db_->Append(MakeEvent(7, OpType::kWrite, t + s * kSecond,
                                        sbblv, exfil, 500000))
                      .ok());
    }
    db_->Seal();
    engine_ = std::make_unique<AiqlEngine>(db_.get());
  }

  std::unique_ptr<AuditDatabase> db_;
  std::unique_ptr<AiqlEngine> engine_;
};

TEST_F(AnomalyTest, PaperQuery3FlagsOnlyTheBurstProcess) {
  auto result = engine_->Execute(R"(
    (at "05/10/2018")
    agentid = 7
    window = 1 min, step = 10 sec
    proc p write ip i[dstip = "172.16.0.129"] as evt
    return p, avg(evt.amount) as amt
    group by p
    having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->table.num_rows(), 0u);
  for (const auto& row : result->table.rows) {
    EXPECT_EQ(ValueToString(row[1]), "sbblv.exe");  // col 0 = window_start
  }
}

TEST_F(AnomalyTest, MovingAverageIgnoresSteadyTraffic) {
  // Without the dstip filter chrome also enters the aggregation, but its
  // steady rate never trips the moving-average spike condition.
  auto result = engine_->Execute(R"(
    agentid = 7
    window = 1 min, step = 10 sec
    proc p write ip i as evt
    return p, avg(evt.amount) as amt
    group by p
    having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& row : result->table.rows) {
    EXPECT_NE(ValueToString(row[1]), "chrome.exe");
  }
}

TEST_F(AnomalyTest, CountAndSumAggregates) {
  auto result = engine_->Execute(R"(
    agentid = 7
    window = 10 min, step = 10 min
    proc p write ip i as evt
    return p, count(*) as n, sum(evt.amount) as total
    group by p
    having n > 0
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Two groups (chrome, sbblv), one 10-minute window each.
  ASSERT_EQ(result->table.num_rows(), 2u);
  int64_t chrome_total = 0, sbblv_total = 0;
  for (const auto& row : result->table.rows) {
    double total = std::stod(ValueToString(row[3]));
    if (ValueToString(row[1]) == "chrome.exe") {
      chrome_total = static_cast<int64_t>(total);
    } else {
      sbblv_total = static_cast<int64_t>(total);
    }
  }
  EXPECT_EQ(chrome_total, 120 * 1000);
  EXPECT_EQ(sbblv_total, 10 * 100 + 12 * 500000);
}

TEST_F(AnomalyTest, HavingHistoryComparesToEarlierWindows) {
  // amt > amt[3]: strictly growing traffic only. sbblv's burst qualifies.
  auto result = engine_->Execute(R"(
    agentid = 7
    window = 1 min, step = 1 min
    proc p write ip i[dstip = "172.16.0.129"] as evt
    return p, sum(evt.amount) as amt
    group by p
    having amt > amt[3] + 1000
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->table.num_rows(), 1u);
}

TEST_F(AnomalyTest, EmptyWhenNothingMatches) {
  auto result = engine_->Execute(R"(
    window = 1 min, step = 30 sec
    proc p["%nonexistent%"] write ip i as evt
    return p, sum(evt.amount) as s
    group by p
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows(), 0u);
}

// --- optimization-equivalence (property) -------------------------------------

struct EngineVariant {
  const char* name;
  EngineOptions options;
};

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_F(EngineTest, EmptyCandidateSetSkipsScan) {
  // A constraint matching no entity short-circuits the whole query without
  // scanning any events.
  QueryResult result = MustExecute(
      "proc p[\"%no_such_binary_xyz%\"] write file f return p");
  EXPECT_EQ(result.table.num_rows(), 0u);
  EXPECT_EQ(result.stats.events_scanned, 0u);
}

TEST_F(EngineTest, OptimizationsDoNotChangeResults) {
  const std::string queries[] = {
      "agentid = 7 proc p read file f return distinct p, f",
      R"((at "05/10/2018") agentid = 7
         proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
         proc p3["%sqlservr.exe"] write file f1 as e2
         proc p4 read file f1 as e3
         with e1 before e2, e2 before e3
         return distinct p1, p2, p3, p4, f1)",
      "proc a write file f as e1 proc b read file f as e2 "
      "with e1 before e2 return distinct a, b, f",
  };
  EngineOptions all_off;
  all_off.enable_reordering = false;
  all_off.enable_parallelism = false;
  all_off.enable_semi_join = false;
  all_off.enable_temporal_pruning = false;
  EngineOptions no_reorder = EngineOptions{};
  no_reorder.enable_reordering = false;
  EngineOptions sequential = EngineOptions{};
  sequential.enable_parallelism = false;

  AiqlEngine baseline(db_.get(), all_off);
  AiqlEngine no_reorder_engine(db_.get(), no_reorder);
  AiqlEngine sequential_engine(db_.get(), sequential);

  for (const std::string& query : queries) {
    auto expected = baseline.Execute(query);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    expected->table.SortRows();
    for (AiqlEngine* engine :
         {engine_.get(), &no_reorder_engine, &sequential_engine}) {
      auto actual = engine->Execute(query);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      actual->table.SortRows();
      EXPECT_EQ(actual->table, expected->table) << "query: " << query;
    }
  }
}

}  // namespace
}  // namespace aiql
