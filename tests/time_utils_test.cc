// Unit tests for timestamp / duration parsing and formatting.

#include "common/time_utils.h"

#include <gtest/gtest.h>

namespace aiql {
namespace {

TEST(TimeUtilsTest, EpochIsZero) {
  auto ts = MakeTimestamp(1970, 1, 1);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, 0);
}

TEST(TimeUtilsTest, KnownDate) {
  // 2018-05-10 00:00:00 UTC == 1525910400 seconds since epoch.
  auto ts = MakeTimestamp(2018, 5, 10);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, 1525910400LL * kSecond);
}

TEST(TimeUtilsTest, TimeOfDayComponents) {
  auto base = MakeTimestamp(2018, 5, 10);
  auto ts = MakeTimestamp(2018, 5, 10, 10, 30, 15);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, *base + 10 * kHour + 30 * kMinute + 15 * kSecond);
}

TEST(TimeUtilsTest, RejectsInvalidCalendarDates) {
  EXPECT_FALSE(MakeTimestamp(2018, 13, 1).ok());
  EXPECT_FALSE(MakeTimestamp(2018, 0, 1).ok());
  EXPECT_FALSE(MakeTimestamp(2018, 2, 29).ok());  // 2018 not a leap year
  EXPECT_TRUE(MakeTimestamp(2020, 2, 29).ok());   // 2020 is
  EXPECT_FALSE(MakeTimestamp(2018, 4, 31).ok());
  EXPECT_FALSE(MakeTimestamp(1969, 1, 1).ok());
  EXPECT_FALSE(MakeTimestamp(2018, 1, 1, 24, 0, 0).ok());
}

TEST(TimeUtilsTest, ParseDateOnly) {
  auto ts = ParseTimestamp("05/10/2018");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, *MakeTimestamp(2018, 5, 10));
}

TEST(TimeUtilsTest, ParseDateTime) {
  auto ts = ParseTimestamp("10:30:15 05/10/2018");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, *MakeTimestamp(2018, 5, 10, 10, 30, 15));
}

TEST(TimeUtilsTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("").ok());
  EXPECT_FALSE(ParseTimestamp("yesterday").ok());
  EXPECT_FALSE(ParseTimestamp("13/45/2018").ok());
  EXPECT_FALSE(ParseTimestamp("25:00:00 05/10/2018").ok());
  EXPECT_FALSE(ParseTimestamp("05-10-2018").ok());
}

TEST(TimeUtilsTest, TimePointDateCoversWholeDay) {
  auto range = ParseTimePoint("05/10/2018");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->start, *MakeTimestamp(2018, 5, 10));
  EXPECT_EQ(range->end - range->start, kDay);
}

TEST(TimeUtilsTest, TimePointInstantIsOneMicro) {
  auto range = ParseTimePoint("01:02:03 05/10/2018");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->end - range->start, 1);
}

TEST(TimeUtilsTest, ParseDurations) {
  EXPECT_EQ(*ParseDuration("10 sec"), 10 * kSecond);
  EXPECT_EQ(*ParseDuration("1 min"), kMinute);
  EXPECT_EQ(*ParseDuration("2 hour"), 2 * kHour);
  EXPECT_EQ(*ParseDuration("1 day"), kDay);
  EXPECT_EQ(*ParseDuration("500 ms"), 500 * kMillisecond);
  EXPECT_EQ(*ParseDuration("42"), 42 * kSecond);  // bare number = seconds
  EXPECT_EQ(*ParseDuration("1.5 min"), 90 * kSecond);
}

TEST(TimeUtilsTest, ParseDurationRejectsGarbage) {
  EXPECT_FALSE(ParseDuration("min").ok());
  EXPECT_FALSE(ParseDuration("10 fortnights").ok());
  EXPECT_FALSE(ParseDuration("").ok());
}

TEST(TimeUtilsTest, FormatRoundTrip) {
  Timestamp ts = *MakeTimestamp(2018, 5, 10, 1, 2, 3);
  EXPECT_EQ(FormatTimestamp(ts), "2018-05-10 01:02:03.000");
}

TEST(TimeRangeTest, ContainsAndOverlaps) {
  TimeRange r{100, 200};
  EXPECT_TRUE(r.Contains(100));
  EXPECT_TRUE(r.Contains(199));
  EXPECT_FALSE(r.Contains(200));
  EXPECT_TRUE(r.Overlaps(TimeRange{150, 250}));
  EXPECT_TRUE(r.Overlaps(TimeRange{0, 101}));
  EXPECT_FALSE(r.Overlaps(TimeRange{200, 300}));
  EXPECT_FALSE(r.Overlaps(TimeRange{0, 100}));
}

TEST(TimeRangeTest, Intersect) {
  TimeRange r{100, 200};
  TimeRange i = r.Intersect(TimeRange{150, 400});
  EXPECT_EQ(i.start, 150);
  EXPECT_EQ(i.end, 200);
  EXPECT_TRUE(r.Intersect(TimeRange{300, 400}).empty());
}

}  // namespace
}  // namespace aiql
