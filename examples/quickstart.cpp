// Quickstart: build a tiny audit database, run the paper's Query 1 (data
// exfiltration from a database server), and print the result.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "engine/aiql_engine.h"
#include "storage/database.h"

using namespace aiql;

namespace {

EventRecord Make(AgentId agent, OpType op, Timestamp start, ProcessRef subj,
                 ObjectRef obj, uint64_t amount = 0) {
  EventRecord r;
  r.agent_id = agent;
  r.op = op;
  r.start_ts = start;
  r.end_ts = start + kSecond;
  r.amount = amount;
  r.subject = std::move(subj);
  r.object = std::move(obj);
  return r;
}

}  // namespace

int main() {
  // 1. Ingest system monitoring data (normally streamed by the agents).
  AuditDatabase db;
  Timestamp t = *MakeTimestamp(2018, 5, 10, 10, 0, 0);

  ProcessRef cmd{7, 100, "C:\\Windows\\System32\\cmd.exe", "system"};
  ProcessRef osql{7, 101, "C:\\Tools\\osql.exe", "system"};
  ProcessRef sqlservr{7, 102, "C:\\SQL\\sqlservr.exe", "system"};
  ProcessRef sbblv{7, 103, "C:\\Temp\\sbblv.exe", "system"};
  FileRef dump{7, "C:\\Temp\\backup1.dmp"};
  NetworkRef exfil{7, "10.0.0.7", "66.77.88.129", 49152, 443, "tcp"};

  (void)db.Append(Make(7, OpType::kStart, t, cmd, osql));
  (void)db.Append(Make(7, OpType::kWrite, t + 2 * kMinute, sqlservr, dump,
                       1 << 20));
  (void)db.Append(Make(7, OpType::kRead, t + 5 * kMinute, sbblv, dump,
                       1 << 20));
  (void)db.Append(Make(7, OpType::kWrite, t + 6 * kMinute, sbblv, exfil,
                       900000));
  db.Seal();

  // 2. Ask AIQL who exfiltrated the database dump (paper §2.2.1, Query 1).
  AiqlEngine engine(&db);
  auto result = engine.Execute(R"(
    (at "05/10/2018")
    agentid = 7
    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
    proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
    proc p4["%sbblv.exe"] read file f1 as evt3
    proc p4 read || write ip i1[dstip = "66.77.88.129"] as evt4
    with evt1 before evt2, evt2 before evt3, evt3 before evt4
    return distinct p1, p2, p3, f1, p4, i1
  )");

  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Data exfiltration from the database server:\n%s\n",
              result->table.ToString().c_str());
  std::printf("execution: %s  (events scanned: %llu, matched: %llu)\n",
              FormatDuration(result->stats.exec_time).c_str(),
              static_cast<unsigned long long>(result->stats.events_scanned),
              static_cast<unsigned long long>(result->stats.events_matched));
  std::printf("\nplan:\n%s", result->plan.c_str());
  return 0;
}
