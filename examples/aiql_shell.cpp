// Interactive AIQL shell — the reproduction's stand-in for the paper's web
// UI (Fig. 3): a query input box, an execution-status area, a result table,
// and syntax checking for query debugging.
//
//   $ ./build/examples/aiql_shell              # demo scenario, interactive
//   $ echo 'proc p read file f return distinct p limit 5' |
//       ./build/examples/aiql_shell
//
// Commands:
//   .help              this text
//   .stats             database statistics
//   .check  <query>    syntax/semantic check only
//   .explain <query>   show the execution plan
//   .sql    <query>    show the equivalent SQL (normalized schema)
//   .cypher <query>    show the equivalent Cypher
//   track ...          iterative provenance tracking (see `track` below)
//   shards [<n>|off]   split the scenario into <n> agent-range shards and
//                      execute everything through the scatter/gather
//                      engine; 'off' returns to the single database;
//                      no argument prints the current layout
//   timeout <ms>|off   deadline for every following query/track
//   budget rows|nodes|bytes <n> | budget off
//                      per-query budgets (kResourceExhausted on breach)
//   partial on|off     degraded sharded execution: drop failed/slow shards
//                      and return annotated partial results (off = strict)
//   connect <host:port>  attach to a running aiql_server: queries, track,
//                      .stats/.check/.explain and the timeout/budget/
//                      partial/shards options all run server-side over the
//                      wire protocol until 'disconnect'
//   disconnect         back to the local in-process engine
//   .quit              exit
//
// Exits nonzero when any query, track, or check failed — scripts piping
// queries in can gate on the exit code.
//
// track backward|forward proc|file|ip "<like>" [at "<time>"] [depth N]
//       [fanout N] [nodes N] [hop <N> <sec|min|hour>] [dot|cypher]
//   expands the dependency graph hop by hop from the matching entities,
//   e.g.:  track backward ip "66.77.88.%" depth 8 hop 30 min
// Anything else is executed as an AIQL query (single line or until an
// empty line when the first line does not contain 'return').

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/net.h"
#include "common/string_utils.h"
#include "common/table_printer.h"
#include "engine/aiql_engine.h"
#include "graph/cypher_gen.h"
#include "graph/graph_store.h"
#include "query/parser.h"
#include "server/protocol.h"
#include "simulator/scenario.h"
#include "sql/translator.h"
#include "storage/shard_map.h"

using namespace aiql;

namespace {

void PrintStats(const AuditDatabase& db) {
  const DatabaseStats& stats = db.stats();
  std::printf("raw events      : %llu\n",
              static_cast<unsigned long long>(stats.raw_events));
  std::printf("stored events   : %llu  (dedup ratio %.2fx)\n",
              static_cast<unsigned long long>(stats.total_events),
              stats.total_events > 0
                  ? static_cast<double>(stats.raw_events) /
                        static_cast<double>(stats.total_events)
                  : 0.0);
  std::printf("partitions      : %llu\n",
              static_cast<unsigned long long>(stats.total_partitions));
  std::printf("processes/files/connections: %zu / %zu / %zu\n",
              db.entities().processes().size(), db.entities().files().size(),
              db.entities().networks().size());
  if (stats.total_events > 0) {
    std::printf("time range      : %s .. %s\n",
                FormatTimestamp(stats.min_ts).c_str(),
                FormatTimestamp(stats.max_ts).c_str());
  }
}

/// Sharded execution state: per-shard databases under one ShardMap. Null
/// `ShardedSetup` in the shell loop means plain single-database mode.
struct ShardedSetup {
  std::vector<ShardRange> ranges;
  std::vector<std::unique_ptr<AuditDatabase>> dbs;
  ShardMap map;
};

std::unique_ptr<ShardedSetup> BuildShards(
    const std::vector<EventRecord>& records, size_t num_shards) {
  AgentId min_agent = UINT32_MAX, max_agent = 0;
  for (const EventRecord& record : records) {
    min_agent = std::min(min_agent, record.agent_id);
    max_agent = std::max(max_agent, record.agent_id);
  }
  if (min_agent > max_agent) {
    std::printf("!! no records to shard\n");
    return nullptr;
  }
  auto setup = std::make_unique<ShardedSetup>();
  setup->ranges = EvenAgentRanges(num_shards, min_agent, max_agent);
  auto routed = RouteRecordsByAgent(setup->ranges, records);
  if (!routed.ok()) {
    std::printf("!! %s\n", routed.status().ToString().c_str());
    return nullptr;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    auto db = IngestRecords((*routed)[s], StorageOptions{});
    if (!db.ok()) {
      std::printf("!! shard %zu ingest failed: %s\n", s,
                  db.status().ToString().c_str());
      return nullptr;
    }
    setup->dbs.push_back(std::make_unique<AuditDatabase>(std::move(*db)));
    Status added = setup->map.AddShard(setup->dbs.back().get(),
                                       setup->ranges[s]);
    if (!added.ok()) {
      std::printf("!! %s\n", added.ToString().c_str());
      return nullptr;
    }
  }
  return setup;
}

void PrintShardInfo(const ShardedSetup& setup) {
  TablePrinter printer({"shard", "agents", "events", "partitions"});
  for (size_t s = 0; s < setup.map.num_shards(); ++s) {
    const ShardRange& range = setup.map.range(s);
    const DatabaseStats& stats = setup.dbs[s]->stats();
    printer.AddRow({std::to_string(s),
                    "[" + std::to_string(range.begin) + ", " +
                        std::to_string(range.end) + ")",
                    std::to_string(stats.total_events),
                    std::to_string(stats.total_partitions)});
  }
  std::printf("%s", printer.ToString().c_str());
  std::printf("-- %zu shards, %llu events total; queries scatter/gather\n",
              setup.map.num_shards(),
              static_cast<unsigned long long>(setup.map.TotalEvents()));
}

/// Splits a track command line into tokens, keeping quoted strings whole.
std::vector<std::string> TokenizeTrack(const std::string& text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    if (text[i] == '"') {
      size_t close = text.find('"', i + 1);
      if (close == std::string::npos) close = text.size();
      tokens.push_back(text.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    size_t end = i;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    tokens.push_back(text.substr(i, end - i));
    i = end;
  }
  return tokens;
}

/// Wall-clock elapsed milliseconds since `start`, printed after every
/// query/track so analysts see real latency, governed or not.
double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Bounded positive integer through the shared checked parser: trailing
/// garbage and out-of-range saturation (strtoll's silent LLONG_MAX on
/// ERANGE) are both rejections, not values.
bool ParsePositiveInt(const std::string& text, int64_t* out) {
  auto parsed = ParseInt64(text);
  if (!parsed.ok() || *parsed <= 0 || *parsed > 1000000000000LL) {
    return false;
  }
  *out = *parsed;
  return true;
}

/// Parses `track backward file "%db.bak%" [at "..."] [depth N] [fanout N]
/// [nodes N] [hop N unit] [dot|cypher]` into a TrackCommand that executes
/// identically against the local engine or a connected server. Returns
/// false (after printing the problem) on a malformed command.
bool ParseTrackCommand(const std::string& args, TrackCommand* command) {
  std::vector<std::string> tokens = TokenizeTrack(args);
  if (tokens.size() < 3) {
    std::printf("usage: track backward|forward proc|file|ip \"<like>\" "
                "[at \"<time>\"] [depth N] [fanout N] [nodes N] "
                "[hop <N> <sec|min|hour>] [dot|cypher]\n");
    return false;
  }
  TrackRequest& request = command->request;
  std::string direction = ToLower(tokens[0]);
  if (direction == "backward") {
    request.options.backward = true;
  } else if (direction == "forward") {
    request.options.backward = false;
  } else {
    std::printf("!! expected 'backward' or 'forward', got '%s'\n",
                tokens[0].c_str());
    return false;
  }
  std::string type = ToLower(tokens[1]);
  if (type == "proc" || type == "process") {
    request.type = EntityType::kProcess;
  } else if (type == "file") {
    request.type = EntityType::kFile;
  } else if (type == "ip" || type == "net") {
    request.type = EntityType::kNetwork;
  } else {
    std::printf("!! expected 'proc', 'file' or 'ip', got '%s'\n",
                tokens[1].c_str());
    return false;
  }
  request.name_like = tokens[2];

  for (size_t i = 3; i < tokens.size(); ++i) {
    std::string key = ToLower(tokens[i]);
    // Parses the next token as a bounded positive integer without
    // consuming it on failure, so error messages name the right option.
    auto next_int = [&](int64_t* out) {
      if (i + 1 >= tokens.size() || !ParsePositiveInt(tokens[i + 1], out)) {
        return false;
      }
      ++i;
      return true;
    };
    int64_t value = 0;
    if (key == "at") {
      if (i + 1 >= tokens.size()) {
        std::printf("!! 'at' expects a \"<time>\" argument\n");
        return false;
      }
      auto ts = ParseTimestamp(tokens[++i]);
      if (!ts.ok()) {
        std::printf("!! bad timestamp: %s\n", ts.status().ToString().c_str());
        return false;
      }
      request.anchor = *ts;
    } else if (key == "depth" || key == "fanout" || key == "nodes") {
      if (!next_int(&value)) {
        std::printf("!! '%s' expects a positive integer\n", key.c_str());
        return false;
      }
      if (key == "depth") {
        request.options.max_depth = static_cast<int>(std::min<int64_t>(
            value, 1000000));
      } else if (key == "fanout") {
        request.options.max_fanout = static_cast<size_t>(value);
      } else {
        request.options.max_nodes = static_cast<size_t>(value);
      }
    } else if (key == "hop") {
      if (!next_int(&value) || i + 1 >= tokens.size()) {
        std::printf("!! 'hop' expects '<N> <sec|min|hour>'\n");
        return false;
      }
      std::string unit = ToLower(tokens[++i]);
      Duration scale = unit == "sec" || unit == "s"    ? kSecond
                       : unit == "min" || unit == "m"  ? kMinute
                       : unit == "hour" || unit == "h" ? kHour
                                                       : 0;
      if (scale == 0) {
        std::printf("!! bad hop window unit '%s'\n", unit.c_str());
        return false;
      }
      if (value > INT64_MAX / scale) {
        std::printf("!! hop window overflows; use a smaller value\n");
        return false;
      }
      request.options.hop_window = value * scale;
    } else if (key == "dot") {
      command->want_dot = true;
    } else if (key == "cypher") {
      command->want_cypher = true;
    } else {
      std::printf("!! unknown track option '%s'\n", tokens[i].c_str());
      return false;
    }
  }
  return true;
}

/// Runs a parsed track command against the local engine. `name_of` renders
/// a node's display name (per-shard stores in sharded mode);
/// `export_store` backs the dot/cypher exporters and is null in sharded
/// mode (node ids span several stores there). Returns false on failure
/// (shell exit code).
bool RunTrack(AiqlEngine* engine,
              const std::function<std::string(const ProvenanceNode&)>& name_of,
              const EntityStore* export_store, const TrackCommand& command) {
  const TrackRequest& request = command.request;
  bool want_dot = command.want_dot, want_cypher = command.want_cypher;

  auto start = std::chrono::steady_clock::now();
  auto result = engine->Track(request);
  double elapsed_ms = ElapsedMs(start);
  if (!result.ok()) {
    std::printf("!! %s\n", result.status().ToString().c_str());
    return false;
  }
  if (want_dot || want_cypher) {
    if (export_store == nullptr) {
      std::printf("!! dot/cypher export is single-database only; "
                  "run 'shards off' first\n");
      return false;
    }
    std::printf("%s", want_dot
                          ? ProvenanceToDot(*result, *export_store).c_str()
                          : ProvenanceToCypher(*result, *export_store).c_str());
    return true;
  }

  TablePrinter printer({"depth", "type", "entity", "bound"});
  for (const ProvenanceNode& node : result->nodes) {
    printer.AddRow({std::to_string(node.depth),
                    EntityTypeToString(node.type),
                    name_of(node),
                    node.bound == INT64_MAX || node.bound == INT64_MIN
                        ? "-"
                        : FormatTimestamp(node.bound)});
  }
  std::printf("%s", printer.ToString().c_str());
  Duration total_us = 0;
  for (Duration us : result->stats.hop_latency_us) total_us += us;
  std::printf("-- %zu nodes (%zu roots), %zu edges in %d hops%s; "
              "%llu postings inspected, %llu partition scans",
              result->nodes.size(), result->num_roots, result->edges.size(),
              result->stats.hops,
              result->stats.truncated ? " (TRUNCATED by budget)" : "",
              static_cast<unsigned long long>(result->stats.events_inspected),
              static_cast<unsigned long long>(
                  result->stats.partitions_selected));
  std::printf("; hop latency us:");
  for (Duration us : result->stats.hop_latency_us) {
    std::printf(" %lld", static_cast<long long>(us));
  }
  std::printf(" (total %lld); elapsed %.1f ms\n",
              static_cast<long long>(total_us), elapsed_ms);
  if (!result->stats.truncated_expansions.empty()) {
    uint64_t dropped = 0;
    for (const TruncatedExpansion& cut : result->stats.truncated_expansions) {
      dropped += cut.dropped;
    }
    std::printf("-- %zu frontier expansion(s) truncated by budget "
                "(%llu candidate events dropped)\n",
                result->stats.truncated_expansions.size(),
                static_cast<unsigned long long>(dropped));
  }
  for (const ShardTrackStatus& shard : result->stats.shard_status) {
    std::printf("-- shard %u: %s%s after %d attempt(s)\n", shard.shard,
                shard.dropped ? "DROPPED " : "recovered",
                shard.dropped ? shard.status.ToString().c_str() : "",
                shard.attempts);
  }
  return true;
}

bool Execute(AiqlEngine* engine, const std::string& query) {
  auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(query);
  double elapsed_ms = ElapsedMs(start);
  if (!result.ok()) {
    std::printf("!! %s (after %.1f ms)\n",
                result.status().ToString().c_str(), elapsed_ms);
    return false;
  }
  std::printf("%s", result->table.ToString(40).c_str());
  std::printf("-- %zu rows in %s (parse %s, plan %s, exec %s); "
              "%llu events scanned on %llu partitions, %d threads; "
              "elapsed %.1f ms\n",
              result->table.num_rows(),
              FormatDuration(result->stats.total_time()).c_str(),
              FormatDuration(result->stats.parse_time).c_str(),
              FormatDuration(result->stats.plan_time).c_str(),
              FormatDuration(result->stats.exec_time).c_str(),
              static_cast<unsigned long long>(result->stats.events_scanned),
              static_cast<unsigned long long>(
                  result->stats.partitions_scanned),
              result->stats.threads_used, elapsed_ms);
  // Degraded sharded execution: name every dropped/retried shard so a
  // partial table is never mistaken for a complete one.
  std::string degraded = result->degraded.ToString();
  if (!degraded.empty()) std::printf("-- %s\n", degraded.c_str());
  return true;
}

/// One attached aiql_server session (the `connect` command). Strictly
/// synchronous: every call writes one request frame and reads exactly one
/// response frame.
struct RemoteClient {
  Connection conn;
  std::string endpoint;

  Result<Response> Call(const std::string& frame) {
    AIQL_RETURN_IF_ERROR(conn.WriteFrame(frame));
    AIQL_ASSIGN_OR_RETURN(std::string reply, conn.ReadFrame());
    return DecodeResponse(reply);
  }
};

void PrintTextBlock(const std::string& text) {
  std::printf("%s", text.c_str());
  if (text.empty() || text.back() != '\n') std::printf("\n");
}

/// Renders one server response the way the matching local command would.
/// Returns false for error responses (shell exit code).
bool RenderResponse(const Response& response, double elapsed_ms) {
  switch (response.type) {
    case MsgType::kError:
      std::printf("!! %s (after %.1f ms)\n",
                  response.error.ToString().c_str(), elapsed_ms);
      return false;
    case MsgType::kQueryOk: {
      const QueryReply& reply = response.query;
      std::printf("%s", reply.table.ToString(40).c_str());
      std::printf("-- %zu rows in %s (parse %s, plan %s, exec %s); "
                  "%llu events scanned on %llu partitions, %d threads; "
                  "round-trip %.1f ms\n",
                  reply.table.num_rows(),
                  FormatDuration(reply.stats.total_time()).c_str(),
                  FormatDuration(reply.stats.parse_time).c_str(),
                  FormatDuration(reply.stats.plan_time).c_str(),
                  FormatDuration(reply.stats.exec_time).c_str(),
                  static_cast<unsigned long long>(
                      reply.stats.events_scanned),
                  static_cast<unsigned long long>(
                      reply.stats.partitions_scanned),
                  reply.stats.threads_used, elapsed_ms);
      if (!reply.degraded.empty()) {
        std::printf("-- %s\n", reply.degraded.c_str());
      }
      return true;
    }
    case MsgType::kTrackOk: {
      const TrackReply& reply = response.track;
      if (!reply.text.empty()) {
        std::printf("%s", reply.text.c_str());
        return true;
      }
      std::printf("%s",
                  reply.table.ToString(
                      std::max<size_t>(reply.table.num_rows(), 1)).c_str());
      PrintTextBlock(reply.summary);
      std::printf("-- round-trip %.1f ms\n", elapsed_ms);
      return true;
    }
    case MsgType::kCheckOk:
      std::printf("ok: valid %s query\n", response.text.c_str());
      return true;
    case MsgType::kStatsOk:
      PrintTextBlock(response.text);
      // Structured tail (absent from pre-retention servers): render the
      // decoded fields so budget drift is visible even if the server's
      // text rendering ever diverges from its counters.
      if (response.stats_fields.has_fields) {
        const StatsFields& f = response.stats_fields;
        std::string budget = f.cache_budget_bytes == 0
                                 ? "unlimited"
                                 : std::to_string(f.cache_budget_bytes);
        std::printf("tiers: %llu hot / %llu cold partitions; cache %llu/%s "
                    "bytes, %llu resident, %llu hits, %llu misses, "
                    "%llu evictions\n",
                    static_cast<unsigned long long>(f.hot_partitions),
                    static_cast<unsigned long long>(f.cold_partitions),
                    static_cast<unsigned long long>(f.cache_charged_bytes),
                    budget.c_str(),
                    static_cast<unsigned long long>(f.cache_resident),
                    static_cast<unsigned long long>(f.cache_hits),
                    static_cast<unsigned long long>(f.cache_misses),
                    static_cast<unsigned long long>(f.cache_evictions));
        std::printf("compactor: %llu passes, %llu merges, %llu demotions, "
                    "%llu tombstones, %llu commits, %llu reopens, "
                    "%llu entities aged\n",
                    static_cast<unsigned long long>(f.compactor_passes),
                    static_cast<unsigned long long>(f.merges),
                    static_cast<unsigned long long>(f.demotions),
                    static_cast<unsigned long long>(f.tombstones),
                    static_cast<unsigned long long>(f.commits),
                    static_cast<unsigned long long>(f.reopens),
                    static_cast<unsigned long long>(f.entities_aged));
      }
      return true;
    case MsgType::kExplainOk:
    case MsgType::kOptionOk:
      PrintTextBlock(response.text);
      return true;
    case MsgType::kHelloOk:
      std::printf("connected: %s\n", response.text.c_str());
      return true;
    case MsgType::kPong:
      std::printf("pong\n");
      return true;
    default:
      std::printf("!! unexpected response type %d\n",
                  static_cast<int>(response.type));
      return false;
  }
}

/// Round-trips one request frame and renders the reply. A transport or
/// protocol failure (as opposed to a server-reported error, which keeps
/// the session) drops back to the local engine.
bool RemoteCall(std::unique_ptr<RemoteClient>* remote,
                const std::string& frame) {
  auto start = std::chrono::steady_clock::now();
  auto response = (*remote)->Call(frame);
  double elapsed_ms = ElapsedMs(start);
  if (!response.ok()) {
    std::printf("!! %s; disconnected from %s\n",
                response.status().ToString().c_str(),
                (*remote)->endpoint.c_str());
    remote->reset();
    return false;
  }
  return RenderResponse(*response, elapsed_ms);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("AIQL shell — attack investigation over system monitoring "
              "data\n");
  std::printf("loading the demo enterprise scenario...\n");
  ScenarioOptions options;
  options.num_clients = 4;
  if (argc > 1) options.events_per_host_per_hour = std::stod(argv[1]);
  DemoScenarioData data = GenerateDemoScenario(options);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  PrintStats(*db);
  std::printf("attack ground truth: web=%u client=%u dc=%u db=%u "
              "attacker=%s\ntype .help for commands\n\n",
              data.truth.web_server, data.truth.client,
              data.truth.domain_controller, data.truth.database_server,
              data.truth.attacker_ip.c_str());

  // Governance state: every engine rebuild (shards on/off, limit changes)
  // re-applies these options; all-zero limits keep the ungoverned path.
  EngineOptions engine_options;
  std::unique_ptr<ShardedSetup> sharded;  // null = single-database mode
  std::unique_ptr<RemoteClient> remote;   // non-null = attached to a server
  auto engine = std::make_unique<AiqlEngine>(&*db, engine_options);
  auto rebuild_engine = [&] {
    engine = sharded != nullptr
                 ? std::make_unique<AiqlEngine>(&sharded->map, engine_options)
                 : std::make_unique<AiqlEngine>(&*db, engine_options);
  };
  bool had_error = false;  // any failed query/track/check -> exit nonzero
  // Node-name rendering for track output: per-shard stores when sharded.
  auto name_of = [&](const ProvenanceNode& node) {
    const EntityStore& entities = sharded != nullptr
                                      ? sharded->map.entities(node.shard)
                                      : db->entities();
    return entities.EntityName(node.type, node.id);
  };
  std::string line;
  while (true) {
    std::printf("aiql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(TrimString(line));
    if (trimmed.empty()) continue;

    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      std::printf(".stats | .check <q> | .explain <q> | .sql <q> | "
                  ".cypher <q> | shards [<n>|off] | .quit\n");
      std::printf("track backward|forward proc|file|ip \"<like>\" "
                  "[at \"<time>\"] [depth N] [fanout N] [nodes N] "
                  "[hop <N> <sec|min|hour>] [dot|cypher]\n");
      std::printf("timeout <ms>|off | budget rows|nodes|bytes <n> | "
                  "budget off | partial on|off\n");
      std::printf("connect <host:port> | disconnect   (run against a "
                  "remote aiql_server)\n");
      continue;
    }
    if (StartsWith(trimmed, "connect ")) {
      std::string endpoint(TrimString(trimmed.substr(std::strlen("connect"))));
      size_t colon = endpoint.rfind(':');
      int64_t port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !ParsePositiveInt(endpoint.substr(colon + 1), &port) ||
          port > 65535) {
        std::printf("!! usage: connect <host:port>\n");
        had_error = true;
        continue;
      }
      auto conn = ConnectTo(endpoint.substr(0, colon),
                            static_cast<uint16_t>(port));
      if (!conn.ok()) {
        std::printf("!! %s\n", conn.status().ToString().c_str());
        had_error = true;
        continue;
      }
      auto client = std::make_unique<RemoteClient>();
      client->conn = std::move(*conn);
      client->endpoint = endpoint;
      remote = std::move(client);
      if (!RemoteCall(&remote, EncodeHello())) had_error = true;
      continue;
    }
    if (trimmed == "disconnect") {
      if (remote != nullptr) {
        std::printf("disconnected from %s; back to the local engine\n",
                    remote->endpoint.c_str());
        remote.reset();
      } else {
        std::printf("not connected\n");
      }
      continue;
    }
    if (StartsWith(trimmed, "track ")) {
      TrackCommand command;
      if (!ParseTrackCommand(trimmed.substr(std::strlen("track ")),
                             &command)) {
        had_error = true;
      } else if (remote != nullptr) {
        if (!RemoteCall(&remote, EncodeTrack(command))) had_error = true;
      } else if (!RunTrack(engine.get(), name_of,
                           sharded != nullptr ? nullptr : &db->entities(),
                           command)) {
        had_error = true;
      }
      continue;
    }
    if (trimmed == "timeout" || StartsWith(trimmed, "timeout ")) {
      std::string arg(TrimString(trimmed.substr(std::strlen("timeout"))));
      int64_t ms = 0;
      bool off = ToLower(arg) == "off";
      if (!off && !ParsePositiveInt(arg, &ms)) {
        std::printf("!! 'timeout' expects a positive millisecond count or "
                    "'off'\n");
        continue;
      }
      if (remote != nullptr) {
        if (!RemoteCall(&remote, EncodeSetOption("timeout_ms", arg))) {
          had_error = true;
        }
        continue;
      }
      engine_options.default_limits.timeout = std::chrono::milliseconds(ms);
      rebuild_engine();
      if (off) {
        std::printf("deadline off\n");
      } else {
        std::printf("deadline %lld ms per query\n",
                    static_cast<long long>(ms));
      }
      continue;
    }
    if (trimmed == "budget" || StartsWith(trimmed, "budget ")) {
      std::vector<std::string> args =
          TokenizeTrack(trimmed.substr(std::strlen("budget")));
      if (args.size() == 1 && ToLower(args[0]) == "off") {
        if (remote != nullptr) {
          if (!RemoteCall(&remote, EncodeSetOption("budget_off", ""))) {
            had_error = true;
          }
          continue;
        }
        QueryLimits& limits = engine_options.default_limits;
        limits.max_rows = limits.max_nodes = limits.max_bytes = 0;
        rebuild_engine();
        std::printf("budgets off\n");
        continue;
      }
      int64_t value = 0;
      std::string kind = args.empty() ? "" : ToLower(args[0]);
      if (args.size() != 2 || !ParsePositiveInt(args[1], &value) ||
          (kind != "rows" && kind != "nodes" && kind != "bytes")) {
        std::printf("!! usage: budget rows|nodes|bytes <n> | budget off\n");
        continue;
      }
      if (remote != nullptr) {
        if (!RemoteCall(&remote, EncodeSetOption(kind, args[1]))) {
          had_error = true;
        }
        continue;
      }
      QueryLimits& limits = engine_options.default_limits;
      if (kind == "rows") {
        limits.max_rows = static_cast<uint64_t>(value);
      } else if (kind == "nodes") {
        limits.max_nodes = static_cast<uint64_t>(value);
      } else {
        limits.max_bytes = static_cast<uint64_t>(value);
      }
      rebuild_engine();
      std::printf("budget: %s <= %lld per query\n", kind.c_str(),
                  static_cast<long long>(value));
      continue;
    }
    if (trimmed == "partial" || StartsWith(trimmed, "partial ")) {
      std::string arg(
          ToLower(TrimString(trimmed.substr(std::strlen("partial")))));
      if (arg != "on" && arg != "off") {
        std::printf("!! usage: partial on|off\n");
        continue;
      }
      if (remote != nullptr) {
        if (!RemoteCall(&remote, EncodeSetOption("partial", arg))) {
          had_error = true;
        }
        continue;
      }
      engine_options.shard_policy =
          arg == "on" ? ShardPolicy::kPartial : ShardPolicy::kStrict;
      rebuild_engine();
      std::printf("degraded sharded execution %s (%s)\n", arg.c_str(),
                  arg == "on" ? "failed shards drop, results annotated"
                              : "any shard failure fails the query");
      continue;
    }
    if (trimmed == "shards" || StartsWith(trimmed, "shards ")) {
      std::string arg(TrimString(trimmed.substr(std::strlen("shards"))));
      if (remote != nullptr) {
        // The server's shard layout is fixed; sessions only toggle between
        // it and the single database.
        if (!RemoteCall(&remote, EncodeSetOption("shards", arg))) {
          had_error = true;
        }
        continue;
      }
      if (arg.empty()) {
        if (sharded != nullptr) {
          PrintShardInfo(*sharded);
        } else {
          std::printf("single-database mode; 'shards <n>' to shard\n");
        }
        continue;
      }
      if (ToLower(arg) == "off") {
        sharded.reset();
        rebuild_engine();
        std::printf("back to single-database mode\n");
        continue;
      }
      int64_t value = 0;
      if (!ParsePositiveInt(arg, &value) || value > 64) {
        std::printf("!! 'shards' expects a count in [1, 64] or 'off'\n");
        continue;
      }
      auto setup = BuildShards(data.records, static_cast<size_t>(value));
      if (setup == nullptr) continue;
      sharded = std::move(setup);
      rebuild_engine();
      PrintShardInfo(*sharded);
      continue;
    }
    if (trimmed == ".stats") {
      if (remote != nullptr) {
        if (!RemoteCall(&remote, EncodeBare(MsgType::kStats))) {
          had_error = true;
        }
        continue;
      }
      PrintStats(*db);
      if (sharded != nullptr) PrintShardInfo(*sharded);
      continue;
    }
    auto run_sub = [&](const char* cmd) -> std::string {
      return std::string(TrimString(trimmed.substr(std::strlen(cmd))));
    };
    if (StartsWith(trimmed, ".check ")) {
      if (remote != nullptr) {
        if (!RemoteCall(&remote, EncodeTextRequest(MsgType::kCheck,
                                                   run_sub(".check ")))) {
          had_error = true;
        }
        continue;
      }
      auto kind = engine->Check(run_sub(".check "));
      if (kind.ok()) {
        std::printf("ok: valid %s query\n", QueryKindToString(*kind));
      } else {
        std::printf("!! %s\n", kind.status().ToString().c_str());
        had_error = true;
      }
      continue;
    }
    if (StartsWith(trimmed, ".explain ")) {
      if (remote != nullptr) {
        if (!RemoteCall(&remote, EncodeTextRequest(MsgType::kExplain,
                                                   run_sub(".explain ")))) {
          had_error = true;
        }
        continue;
      }
      auto plan = engine->Explain(run_sub(".explain "));
      if (!plan.ok()) had_error = true;
      std::printf("%s\n", plan.ok() ? plan->c_str()
                                    : plan.status().ToString().c_str());
      continue;
    }
    if (StartsWith(trimmed, ".sql ")) {
      auto parsed = ParseAiql(run_sub(".sql "));
      if (!parsed.ok()) {
        std::printf("!! %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto sql = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
      std::printf("%s\n", sql.ok() ? sql->sql.c_str()
                                   : sql.status().ToString().c_str());
      continue;
    }
    if (StartsWith(trimmed, ".cypher ")) {
      auto parsed = ParseAiql(run_sub(".cypher "));
      if (!parsed.ok()) {
        std::printf("!! %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto cypher = TranslateToCypher(*parsed);
      std::printf("%s\n", cypher.ok()
                              ? cypher->cypher.c_str()
                              : cypher.status().ToString().c_str());
      continue;
    }

    // Multi-line query entry: keep reading until 'return' has been seen.
    std::string query = trimmed;
    while (ToLower(query).find("return") == std::string::npos) {
      std::printf("  ... ");
      std::fflush(stdout);
      std::string more;
      if (!std::getline(std::cin, more)) break;
      if (TrimString(more).empty()) break;
      query += "\n" + more;
    }
    if (remote != nullptr) {
      if (!RemoteCall(&remote, EncodeTextRequest(MsgType::kQuery, query))) {
        had_error = true;
      }
    } else if (!Execute(engine.get(), query)) {
      had_error = true;
    }
  }
  std::printf("bye\n");
  return had_error ? 2 : 0;
}
