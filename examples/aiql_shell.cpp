// Interactive AIQL shell — the reproduction's stand-in for the paper's web
// UI (Fig. 3): a query input box, an execution-status area, a result table,
// and syntax checking for query debugging.
//
//   $ ./build/examples/aiql_shell              # demo scenario, interactive
//   $ echo 'proc p read file f return distinct p limit 5' |
//       ./build/examples/aiql_shell
//
// Commands:
//   .help              this text
//   .stats             database statistics
//   .check  <query>    syntax/semantic check only
//   .explain <query>   show the execution plan
//   .sql    <query>    show the equivalent SQL (normalized schema)
//   .cypher <query>    show the equivalent Cypher
//   .quit              exit
// Anything else is executed as an AIQL query (single line or until an
// empty line when the first line does not contain 'return').

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/string_utils.h"
#include "engine/aiql_engine.h"
#include "graph/cypher_gen.h"
#include "query/parser.h"
#include "simulator/scenario.h"
#include "sql/translator.h"

using namespace aiql;

namespace {

void PrintStats(const AuditDatabase& db) {
  const DatabaseStats& stats = db.stats();
  std::printf("raw events      : %llu\n",
              static_cast<unsigned long long>(stats.raw_events));
  std::printf("stored events   : %llu  (dedup ratio %.2fx)\n",
              static_cast<unsigned long long>(stats.total_events),
              stats.total_events > 0
                  ? static_cast<double>(stats.raw_events) /
                        static_cast<double>(stats.total_events)
                  : 0.0);
  std::printf("partitions      : %llu\n",
              static_cast<unsigned long long>(stats.total_partitions));
  std::printf("processes/files/connections: %zu / %zu / %zu\n",
              db.entities().processes().size(), db.entities().files().size(),
              db.entities().networks().size());
  if (stats.total_events > 0) {
    std::printf("time range      : %s .. %s\n",
                FormatTimestamp(stats.min_ts).c_str(),
                FormatTimestamp(stats.max_ts).c_str());
  }
}

void Execute(AiqlEngine* engine, const std::string& query) {
  auto result = engine->Execute(query);
  if (!result.ok()) {
    std::printf("!! %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->table.ToString(40).c_str());
  std::printf("-- %zu rows in %s (parse %s, plan %s, exec %s); "
              "%llu events scanned on %llu partitions, %d threads\n",
              result->table.num_rows(),
              FormatDuration(result->stats.total_time()).c_str(),
              FormatDuration(result->stats.parse_time).c_str(),
              FormatDuration(result->stats.plan_time).c_str(),
              FormatDuration(result->stats.exec_time).c_str(),
              static_cast<unsigned long long>(result->stats.events_scanned),
              static_cast<unsigned long long>(
                  result->stats.partitions_scanned),
              result->stats.threads_used);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("AIQL shell — attack investigation over system monitoring "
              "data\n");
  std::printf("loading the demo enterprise scenario...\n");
  ScenarioOptions options;
  options.num_clients = 4;
  if (argc > 1) options.events_per_host_per_hour = std::stod(argv[1]);
  DemoScenarioData data = GenerateDemoScenario(options);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  PrintStats(*db);
  std::printf("attack ground truth: web=%u client=%u dc=%u db=%u "
              "attacker=%s\ntype .help for commands\n\n",
              data.truth.web_server, data.truth.client,
              data.truth.domain_controller, data.truth.database_server,
              data.truth.attacker_ip.c_str());

  AiqlEngine engine(&*db);
  std::string line;
  while (true) {
    std::printf("aiql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(TrimString(line));
    if (trimmed.empty()) continue;

    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      std::printf(".stats | .check <q> | .explain <q> | .sql <q> | "
                  ".cypher <q> | .quit\n");
      continue;
    }
    if (trimmed == ".stats") {
      PrintStats(*db);
      continue;
    }
    auto run_sub = [&](const char* cmd) -> std::string {
      return std::string(TrimString(trimmed.substr(std::strlen(cmd))));
    };
    if (StartsWith(trimmed, ".check ")) {
      auto kind = engine.Check(run_sub(".check "));
      if (kind.ok()) {
        std::printf("ok: valid %s query\n", QueryKindToString(*kind));
      } else {
        std::printf("!! %s\n", kind.status().ToString().c_str());
      }
      continue;
    }
    if (StartsWith(trimmed, ".explain ")) {
      auto plan = engine.Explain(run_sub(".explain "));
      std::printf("%s\n", plan.ok() ? plan->c_str()
                                    : plan.status().ToString().c_str());
      continue;
    }
    if (StartsWith(trimmed, ".sql ")) {
      auto parsed = ParseAiql(run_sub(".sql "));
      if (!parsed.ok()) {
        std::printf("!! %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto sql = TranslateToSql(*parsed, SqlSchemaMode::kNormalized);
      std::printf("%s\n", sql.ok() ? sql->sql.c_str()
                                   : sql.status().ToString().c_str());
      continue;
    }
    if (StartsWith(trimmed, ".cypher ")) {
      auto parsed = ParseAiql(run_sub(".cypher "));
      if (!parsed.ok()) {
        std::printf("!! %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto cypher = TranslateToCypher(*parsed);
      std::printf("%s\n", cypher.ok()
                              ? cypher->cypher.c_str()
                              : cypher.status().ToString().c_str());
      continue;
    }

    // Multi-line query entry: keep reading until 'return' has been seen.
    std::string query = trimmed;
    while (ToLower(query).find("return") == std::string::npos) {
      std::printf("  ... ");
      std::fflush(stdout);
      std::string more;
      if (!std::getline(std::cin, more)) break;
      if (TrimString(more).empty()) break;
      query += "\n" + more;
    }
    Execute(&engine, query);
  }
  std::printf("bye\n");
  return 0;
}
