// Frequency-based anomaly models, paper §2.2.3: sliding windows, moving
// averages over historical windows, and threshold rules — Query 3 and two
// variations.
//
//   $ ./build/examples/anomaly_detection

#include <cstdio>
#include <string>

#include "engine/aiql_engine.h"
#include "simulator/scenario.h"

using namespace aiql;

namespace {

void Run(AiqlEngine* engine, const char* narrative,
         const std::string& query) {
  std::printf("\n=== %s\n--- query:\n%s\n", narrative, query.c_str());
  auto result = engine->Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  // Format the raw window_start timestamps for display.
  ResultTable display = result->table;
  for (auto& row : display.rows) {
    if (const auto* ts = std::get_if<int64_t>(&row[0])) {
      row[0] = FormatTimestamp(*ts);
    }
  }
  std::printf("--- flagged windows (%zu, in %s):\n%s",
              display.num_rows(),
              FormatDuration(result->stats.total_time()).c_str(),
              display.ToString(12).c_str());
}

}  // namespace

int main() {
  ScenarioOptions options;
  options.num_clients = 4;
  DemoScenarioData data = GenerateDemoScenario(options);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) return 1;
  AiqlEngine engine(&*db);
  const std::string dbagent = std::to_string(data.truth.database_server);
  const std::string attacker = data.truth.attacker_ip;

  Run(&engine,
      "Query 3 (paper): moving-average spike of outbound volume per process "
      "on the database server",
      "(at \"05/10/2018\")\nagentid = " + dbagent +
          "\nwindow = 1 min, step = 10 sec\n"
          "proc p write ip i[dstip = \"" + attacker + "\"] as evt\n"
          "return p, avg(evt.amount) as amt\ngroup by p\n"
          "having amt > 2 * (amt + amt[1] + amt[2]) / 3");

  Run(&engine,
      "Variation: absolute threshold — any process sending >64 MB per "
      "5-minute window to anywhere",
      "(at \"05/10/2018\")\nagentid = " + dbagent +
          "\nwindow = 5 min, step = 5 min\n"
          "proc p write ip i as evt\n"
          "return p, sum(evt.amount) as total, count(*) as n\ngroup by p\n"
          "having total > 67108864");

  Run(&engine,
      "Variation: sudden growth — outbound volume more than 10x the window "
      "two steps ago",
      "(at \"05/10/2018\")\nagentid = " + dbagent +
          "\nwindow = 2 min, step = 1 min\n"
          "proc p write ip i as evt\n"
          "return p, sum(evt.amount) as vol\ngroup by p\n"
          "having vol > 10 * vol[2] and vol > 1048576");

  return 0;
}
