// aiql_server — the long-lived AIQL query server (docs/server-protocol.md):
// loads the demo enterprise scenario, optionally shards it by agent range,
// and serves concurrent client sessions over TCP. Connect with
// `aiql_shell` and its `connect <host:port>` command.
//
//   $ ./build/examples/aiql_server --port 7447 --shards 4
//   listening on 127.0.0.1:7447
//
// Flags (all optional):
//   --host <addr>        bind address          (default 127.0.0.1)
//   --port <n>           TCP port, 0=ephemeral (default 0)
//   --shards <n>         agent-range shards, 0=single database (default 4)
//   --rate <x>           scenario events per host per hour
//   --max-sessions <n>   concurrent session cap
//   --max-queries <n>    queries executing at once
//   --queue <n>          admission queue depth behind the running queries
//   --queue-wait-ms <n>  longest a queued query waits for a slot
//   --timeout-ms <n>     initial per-session query deadline (0 = none)
//   --retention <dir>    tiered retention: demote sealed partitions older
//                        than the hot window into <dir>, background
//                        compactor on (single-database sessions serve
//                        hot + cold; see docs/retention.md)
//   --retention-budget <bytes>  cold-partition cache budget (0 = unlimited)
//   --retention-hot <n>  buckets kept hot behind the newest (default 2)
//   --retention-keep <n> buckets retained before tombstoning (0 = forever)
//
// The server runs until stdin reaches EOF or reads a line saying "quit",
// then shuts down cleanly and prints its counters. Exit code 0 on a clean
// shutdown, 1 on startup failure.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/string_utils.h"
#include "server/aiql_server.h"
#include "simulator/scenario.h"
#include "storage/shard_map.h"
#include "storage/tiered.h"

using namespace aiql;

namespace {

struct ServerArgs {
  ServerOptions server;
  size_t num_shards = 4;
  double rate = -1.0;  // < 0 = scenario default
  RetentionOptions retention;  // active when dir is non-empty
};

bool ParseArgs(int argc, char** argv, ServerArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' expects a value\n", flag.c_str());
      return false;
    }
    std::string value = argv[++i];
    if (flag == "--host") {
      args->server.host = value;
      continue;
    }
    if (flag == "--retention") {
      args->retention.dir = value;
      continue;
    }
    if (flag == "--rate") {
      auto rate = ParseDouble(value);
      if (!rate.ok() || *rate <= 0.0) {
        std::fprintf(stderr, "--rate expects a positive number, got '%s'\n",
                     value.c_str());
        return false;
      }
      args->rate = *rate;
      continue;
    }
    auto number = ParseInt64(value);
    if (!number.ok() || *number < 0) {
      std::fprintf(stderr, "%s expects a non-negative integer: %s\n",
                   flag.c_str(), number.ok()
                                     ? "negative value"
                                     : number.status().ToString().c_str());
      return false;
    }
    if (flag == "--port" && *number <= 65535) {
      args->server.port = static_cast<uint16_t>(*number);
    } else if (flag == "--shards" && *number <= 64) {
      args->num_shards = static_cast<size_t>(*number);
    } else if (flag == "--max-sessions" && *number >= 1) {
      args->server.max_sessions = static_cast<size_t>(*number);
    } else if (flag == "--max-queries" && *number >= 1) {
      args->server.max_concurrent_queries = static_cast<size_t>(*number);
    } else if (flag == "--queue") {
      args->server.admission_queue_depth = static_cast<size_t>(*number);
    } else if (flag == "--queue-wait-ms") {
      args->server.admission_wait = std::chrono::milliseconds(*number);
    } else if (flag == "--timeout-ms") {
      args->server.session_limits.timeout = std::chrono::milliseconds(*number);
    } else if (flag == "--retention-budget") {
      args->retention.memory_budget_bytes = static_cast<size_t>(*number);
    } else if (flag == "--retention-hot") {
      args->retention.hot_buckets = *number;
    } else if (flag == "--retention-keep") {
      args->retention.retention_buckets = *number;
    } else {
      std::fprintf(stderr, "unknown or out-of-range flag '%s %s'\n",
                   flag.c_str(), value.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerArgs args;
  if (!ParseArgs(argc, argv, &args)) return 1;

  std::fprintf(stderr, "loading the demo enterprise scenario...\n");
  ScenarioOptions scenario;
  scenario.num_clients = 4;
  if (args.rate > 0.0) scenario.events_per_host_per_hour = args.rate;
  DemoScenarioData data = GenerateDemoScenario(scenario);

  // Backends: a single database (or tiered store with --retention) always,
  // so sessions can `shards off`, and a shard map when --shards > 0.
  std::optional<AuditDatabase> db;
  std::unique_ptr<TieredStore> tiered;
  if (!args.retention.dir.empty()) {
    auto store = TieredStore::Create(StorageOptions{}, args.retention);
    if (!store.ok()) {
      std::fprintf(stderr, "retention open failed: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    tiered = std::move(*store);
    Status appended = tiered->AppendBatch(data.records);
    if (appended.ok()) appended = tiered->Flush();
    if (!appended.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   appended.ToString().c_str());
      return 1;
    }
    tiered->StartCompactor();
  } else {
    auto ingested = IngestRecords(data.records, StorageOptions{});
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingested.status().ToString().c_str());
      return 1;
    }
    db.emplace(std::move(*ingested));
  }
  std::vector<std::unique_ptr<AuditDatabase>> shard_dbs;
  ShardMap shard_map;
  bool have_shards = false;
  if (args.num_shards > 0) {
    AgentId min_agent = UINT32_MAX, max_agent = 0;
    for (const EventRecord& record : data.records) {
      min_agent = std::min(min_agent, record.agent_id);
      max_agent = std::max(max_agent, record.agent_id);
    }
    auto ranges = EvenAgentRanges(args.num_shards, min_agent, max_agent);
    auto routed = RouteRecordsByAgent(ranges, data.records);
    if (!routed.ok()) {
      std::fprintf(stderr, "%s\n", routed.status().ToString().c_str());
      return 1;
    }
    for (size_t s = 0; s < ranges.size(); ++s) {
      auto shard_db = IngestRecords((*routed)[s], StorageOptions{});
      if (!shard_db.ok()) {
        std::fprintf(stderr, "shard %zu ingest failed: %s\n", s,
                     shard_db.status().ToString().c_str());
        return 1;
      }
      shard_dbs.push_back(
          std::make_unique<AuditDatabase>(std::move(*shard_db)));
      Status added = shard_map.AddShard(shard_dbs.back().get(), ranges[s]);
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.ToString().c_str());
        return 1;
      }
    }
    have_shards = true;
  }

  std::unique_ptr<AiqlServer> server;
  if (tiered != nullptr) {
    server = std::make_unique<AiqlServer>(
        tiered.get(), have_shards ? &shard_map : nullptr, args.server);
  } else {
    server = std::make_unique<AiqlServer>(
        &*db, have_shards ? &shard_map : nullptr, args.server);
  }
  Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  // The smoke harness scrapes this exact line for the bound port.
  std::printf("listening on %s:%u\n", args.server.host.c_str(),
              server->port());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (std::string(TrimString(line)) == "quit") break;
  }
  server->Stop();
  if (tiered != nullptr) tiered->StopCompactor();
  ServerCounters counters = server->stats();
  std::printf("shutdown: %llu sessions (%llu refused), %llu queries ok, "
              "%llu failed, %llu rejected by admission, %llu tracks, "
              "%llu bad frames\n",
              static_cast<unsigned long long>(counters.sessions_accepted),
              static_cast<unsigned long long>(counters.sessions_rejected),
              static_cast<unsigned long long>(counters.queries_executed),
              static_cast<unsigned long long>(counters.queries_failed),
              static_cast<unsigned long long>(counters.queries_rejected),
              static_cast<unsigned long long>(counters.tracks_executed),
              static_cast<unsigned long long>(counters.frames_rejected));
  return 0;
}
