// The full data pipeline (paper Fig. 1 left half): agents emit audit logs,
// the storage tier ingests them, snapshots persist the database, and the
// investigation runs against the reloaded store.
//
//   $ ./build/examples/replay_audit_log [/tmp/dir]

#include <cstdio>
#include <string>

#include "engine/aiql_engine.h"
#include "simulator/scenario.h"
#include "storage/log_format.h"
#include "storage/snapshot.h"

using namespace aiql;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  std::string log_path = dir + "/aiql_demo.log";
  std::string snap_path = dir + "/aiql_demo.snap";

  // 1. "Agents" record a monitored day (simulated here).
  ScenarioOptions options;
  options.num_clients = 3;
  options.events_per_host_per_hour = 1000;
  DemoScenarioData data = GenerateDemoScenario(options);
  std::printf("agents recorded %zu events\n", data.records.size());

  // 2. Ship them as a text audit log.
  if (auto status = WriteAuditLog(data.records, log_path); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", log_path.c_str());

  // 3. The storage tier replays the log into the optimized store.
  auto records = ReadAuditLog(log_path);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  auto db = IngestRecords(*records, StorageOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested: %llu stored events (dedup %.2fx), %llu partitions\n",
              static_cast<unsigned long long>(db->stats().total_events),
              static_cast<double>(db->stats().raw_events) /
                  static_cast<double>(db->stats().total_events),
              static_cast<unsigned long long>(db->stats().total_partitions));

  // 4. Persist a snapshot and reload it (restart survival).
  if (auto status = SaveSnapshot(*db, snap_path); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  auto restored = LoadSnapshot(snap_path);
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::printf("snapshot round-trip ok: %s\n", snap_path.c_str());

  // 5. Investigate against the reloaded store.
  AiqlEngine engine(&*restored);
  auto result = engine.Execute(
      "(at \"05/10/2018\") agentid = " +
      std::to_string(data.truth.database_server) +
      " proc p[\"%powershell%\"] read file f return distinct p, f");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nWhat did powershell read on the database server?\n%s",
              result->table.ToString().c_str());

  std::remove(log_path.c_str());
  std::remove(snap_path.c_str());
  return 0;
}
