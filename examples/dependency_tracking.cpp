// Dependency (causality) tracking, paper §2.2.2: forward-track the
// ramification of a malware binary across hosts, then backward-track its
// origin — the backtracking-intrusions workflow over AIQL event paths.
//
//   $ ./build/examples/dependency_tracking

#include <cstdio>
#include <string>

#include "engine/aiql_engine.h"
#include "simulator/scenario.h"

using namespace aiql;

namespace {

void Run(AiqlEngine* engine, const char* narrative,
         const std::string& query) {
  std::printf("\n=== %s\n--- query:\n%s\n", narrative, query.c_str());
  auto result = engine->Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("--- results (%zu rows, %s):\n%s",
              result->table.num_rows(),
              FormatDuration(result->stats.total_time()).c_str(),
              result->table.ToString(10).c_str());
}

}  // namespace

int main() {
  ScenarioOptions options;
  options.num_clients = 4;
  DemoScenarioData data = GenerateDemoScenario(options);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) return 1;
  AiqlEngine engine(&*db);

  const std::string web = std::to_string(data.truth.web_server);
  const std::string client = std::to_string(data.truth.client);

  Run(&engine,
      "Forward tracking: what did the dropped malware binary lead to? "
      "(write -> execute -> spawned process)",
      "(at \"05/10/2018\")\n"
      "forward: proc p1[\"%telnetd%\", agentid = " + web +
          "] ->[write] file f1[\"%malnet%\"]\n"
          "<-[execute] proc p2[\"%/bin/sh%\"]\n"
          "return p1, f1, p2");

  Run(&engine,
      "Forward tracking across hosts: the malware process reaches another "
      "host and drops a copy there",
      "(at \"05/10/2018\")\n"
      "forward: proc m[\"%malnet%\", agentid = " + web +
          "] ->[connect] proc s[agentid = " + client +
          "]\n->[write] file f2[\"%malnet%\"]\n"
          "return m, s, f2");

  Run(&engine,
      "Backward tracking: where did the credential file on the client come "
      "from? (who wrote it, who spawned the writer)",
      "(at \"05/10/2018\")\n"
      "backward: file f[\"%creds.txt%\", agentid = " + client +
          "]\n<-[write] proc p1[agentid = " + client +
          "]\n<-[start] proc p2\n"
          "return f, p1, p2");

  return 0;
}
