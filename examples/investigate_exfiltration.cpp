// The live end-to-end investigation of paper §3, step a5: starting from an
// anomaly alert, iteratively drill into the data exfiltration on the
// database server — the workflow a security analyst runs in the web UI.
//
//   $ ./build/examples/investigate_exfiltration

#include <cstdio>
#include <string>

#include "engine/aiql_engine.h"
#include "simulator/scenario.h"

using namespace aiql;

namespace {

void RunStep(AiqlEngine* engine, const char* narrative,
             const std::string& query) {
  std::printf("\n=== %s\n", narrative);
  std::printf("--- AIQL query:\n%s\n", query.c_str());
  auto result = engine->Execute(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("--- results (%zu rows, %s):\n%s",
              result->table.num_rows(),
              FormatDuration(result->stats.total_time()).c_str(),
              result->table.ToString(10).c_str());
}

}  // namespace

int main() {
  std::printf("Generating the monitored enterprise (background noise + the "
              "demo APT attack)...\n");
  ScenarioOptions options;
  options.num_clients = 4;
  options.events_per_host_per_hour = 2000;
  DemoScenarioData data = GenerateDemoScenario(options);
  auto db = IngestRecords(data.records, StorageOptions{});
  if (!db.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %llu raw events -> %llu stored events on %llu "
              "partitions\n",
              static_cast<unsigned long long>(db->stats().raw_events),
              static_cast<unsigned long long>(db->stats().total_events),
              static_cast<unsigned long long>(db->stats().total_partitions));

  AiqlEngine engine(&*db);
  const std::string dbagent = std::to_string(data.truth.database_server);
  const std::string attacker = data.truth.attacker_ip;

  RunStep(&engine,
          "Step 1 — no prior knowledge: an anomaly query looks for processes "
          "on the database server moving unusual volumes off-host",
          "(at \"05/10/2018\")\nagentid = " + dbagent +
              "\nwindow = 1 min, step = 10 sec\n"
              "proc p write ip i[dstip = \"" + attacker + "\"] as evt\n"
              "return p, avg(evt.amount) as amt\ngroup by p\n"
              "having amt > 2 * (amt + amt[1] + amt[2]) / 3");

  RunStep(&engine,
          "Step 2 — powershell.exe flagged; which files did it read?",
          "(at \"05/10/2018\")\nagentid = " + dbagent +
              "\nproc p[\"%powershell.exe\"] read file f as e\n"
              "return distinct p, f");

  RunStep(&engine,
          "Step 3 — a database dump 'db.bak'; which process created it?",
          "(at \"05/10/2018\")\nagentid = " + dbagent +
              "\nproc p write file f[\"%db.bak%\"] as e\n"
              "return distinct p, f");

  RunStep(&engine,
          "Step 4 — sqlservr.exe is legitimate; confirm powershell connected "
          "to the suspicious address *before* the data transfer",
          "(at \"05/10/2018\")\nagentid = " + dbagent +
              "\nproc p[\"%powershell%\"] connect ip i[dstip = \"" + attacker +
              "\"] as e1\nproc p write ip i as e2\nwith e1 before e2\n"
              "return distinct p, i");

  RunStep(&engine,
          "Step 5 — the confirmed exfiltration chain in one multievent query",
          "(at \"05/10/2018\")\nagentid = " + dbagent +
              "\nproc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e1\n"
              "proc p3[\"%sqlservr.exe\"] write file f1[\"%db.bak%\"] as e2\n"
              "proc p4[\"%powershell%\"] read file f1 as e3\n"
              "proc p4 write ip i1[dstip = \"" + attacker + "\"] as e4\n"
              "with e1 before e2, e2 before e3, e3 before e4\n"
              "return distinct p1, p2, p3, f1, p4, i1");

  std::printf("\nInvestigation of step a5 complete: data exfiltration "
              "confirmed.\n");
  return 0;
}
