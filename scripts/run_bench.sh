#!/usr/bin/env bash
# Runs the scan-path benchmark suite at the pinned configuration and writes
# a BENCH_*.json trajectory file (schema in README.md).
#
#   scripts/run_bench.sh [--baseline prev.json] [--out BENCH_PRn.json] \
#                        [--label after] [--streaming] [--snapshot] \
#                        [--retention]
#
# --retention replays both suites into fully demoted tiered stores with the
# cold cache capped at 25% of the all-hot footprint; the JSON gains a
# "retention" section with peak-RSS and partitions-resident series, and the
# run fails unless throughput, row identity, cache charge, and RSS flatness
# all hold (see docs/retention.md).
#
# The configuration is pinned so numbers stay comparable across PRs on the
# same machine; override AIQL_BENCH_* in the environment only for local
# experiments (never for checked-in files).
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
RUNNER="${BUILD_DIR}/bench/bench_runner"

if [[ ! -x "${RUNNER}" ]]; then
  echo "error: ${RUNNER} not built (cmake --build ${BUILD_DIR} --target bench_runner)" >&2
  exit 1
fi

export AIQL_BENCH_SEED="${AIQL_BENCH_SEED:-42}"
export AIQL_BENCH_CLIENTS="${AIQL_BENCH_CLIENTS:-5}"
export AIQL_BENCH_RATE="${AIQL_BENCH_RATE:-20000}"
export AIQL_BENCH_HOURS="${AIQL_BENCH_HOURS:-6}"
export AIQL_BENCH_REPEAT="${AIQL_BENCH_REPEAT:-5}"
# Pinned streaming ingest rate for `--streaming` runs (records/second).
export AIQL_BENCH_STREAM_RATE="${AIQL_BENCH_STREAM_RATE:-50000}"
# Throughput floor for `--retention` replay into the tiered store.
export AIQL_BENCH_RETENTION_MIN_RATE="${AIQL_BENCH_RETENTION_MIN_RATE:-50000}"

exec "${RUNNER}" "$@"
