#!/usr/bin/env bash
# Server smoke gate: boots aiql_server, drives a scripted aiql_shell
# session over the wire (query + provenance track + stats), then induces
# admission-control overload with a failpoint-stalled query and requires a
# clean kResourceExhausted refusal plus a clean server shutdown.
#
# Usage: scripts/server_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
SERVER_BIN="$BUILD_DIR/examples/aiql_server"
SHELL_BIN="$BUILD_DIR/examples/aiql_shell"
for bin in "$SERVER_BIN" "$SHELL_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "missing binary: $bin (build the 'aiql_server' and 'aiql_shell' targets first)" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
SERVER_PID=""
HOLD_PID=""
cleanup() {
  [[ -n "$HOLD_PID" ]] && kill "$HOLD_PID" 2>/dev/null || true
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Polls $2 for a line matching regex $1 for up to $3 seconds.
wait_for_line() {
  local pattern=$1 file=$2 deadline=$((SECONDS + ${3:-30}))
  until grep -Eq "$pattern" "$file" 2>/dev/null; do
    if (( SECONDS >= deadline )); then
      echo "timed out waiting for /$pattern/ in $file" >&2
      cat "$file" >&2 || true
      return 1
    fi
    sleep 0.2
  done
}

# start_server <log> <extra flags...>; FAILPOINTS (optional) is forwarded
# as AIQL_FAILPOINTS to the server process only.
start_server() {
  local log=$1; shift
  local fifo="$WORK/server_stdin"
  rm -f "$fifo"; mkfifo "$fifo"
  AIQL_FAILPOINTS="${FAILPOINTS:-}" \
    "$SERVER_BIN" --rate 300 "$@" < "$fifo" > "$log" 2>&1 &
  SERVER_PID=$!
  # Keep the write end open so the server doesn't see EOF until we quit.
  exec 3> "$fifo"
  wait_for_line '^listening on ' "$log" 60
  PORT=$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' "$log" | head -1)
  [[ -n "$PORT" ]] || { echo "could not scrape port from $log" >&2; exit 1; }
}

stop_server() {  # stop_server <log>
  echo "quit" >&3
  exec 3>&-
  wait "$SERVER_PID" || { echo "server exited nonzero" >&2; cat "$1" >&2; exit 1; }
  SERVER_PID=""
  wait_for_line '^shutdown: ' "$1" 10
}

echo "== phase 1: remote session (query + track + stats) =="
start_server "$WORK/server1.log" --shards 4
SESSION_LOG="$WORK/session1.log"
"$SHELL_BIN" > "$SESSION_LOG" 2>&1 <<EOF
connect 127.0.0.1:$PORT
proc p read file f return distinct p limit 5
track backward ip "66.77.88.%" depth 4
.stats
disconnect
.quit
EOF
# The shell exits nonzero when any query/track/check failed.
grep -q 'connected: aiql-server protocol 1' "$SESSION_LOG" || {
  echo "handshake banner missing" >&2; cat "$SESSION_LOG" >&2; exit 1; }
# The query footer proves rows came back over the wire.
grep -Eq -- '-- [1-9][0-9]* rows in .*round-trip' "$SESSION_LOG" || {
  echo "no remote query rows" >&2; cat "$SESSION_LOG" >&2; exit 1; }
# The track summary proves the provenance path worked remotely.
grep -Eq -- '-- [1-9][0-9]* nodes \([1-9][0-9]* roots\)' "$SESSION_LOG" || {
  echo "no remote track nodes" >&2; cat "$SESSION_LOG" >&2; exit 1; }
grep -q 'shards' "$SESSION_LOG" || {
  echo "remote .stats missing shard layout" >&2; cat "$SESSION_LOG" >&2; exit 1; }
stop_server "$WORK/server1.log"
grep -Eq 'shutdown: .* 0 failed, 0 rejected by admission, .* 0 bad frames' \
    "$WORK/server1.log" || {
  echo "unexpected server counters" >&2; cat "$WORK/server1.log" >&2; exit 1; }
echo "phase 1 OK"

echo "== phase 2: admission overload refuses instead of queueing =="
# One execution slot, no queue; every scatter stalls 30s, so the first
# query parks on the slot and the second must be refused immediately.
FAILPOINTS="shard.scatter=latency(30000000)" \
  start_server "$WORK/server2.log" --shards 4 --max-queries 1 --queue 0
HOLD_LOG="$WORK/hold.log"
"$SHELL_BIN" > "$HOLD_LOG" 2>&1 <<EOF &
connect 127.0.0.1:$PORT
proc p read file f return distinct p limit 5
.quit
EOF
HOLD_PID=$!
wait_for_line 'connected: aiql-server protocol 1' "$HOLD_LOG" 60
sleep 2  # let the holder's query occupy the only execution slot

PROBE_LOG="$WORK/probe.log"
PROBE_START=$SECONDS
if "$SHELL_BIN" > "$PROBE_LOG" 2>&1 <<EOF
connect 127.0.0.1:$PORT
proc p read file f return distinct p limit 5
.quit
EOF
then
  echo "probe session should have failed with an admission refusal" >&2
  cat "$PROBE_LOG" >&2; exit 1
fi
PROBE_SECS=$((SECONDS - PROBE_START))
grep -Eqi '!!.*(resource|slot|admission|exhaust)' "$PROBE_LOG" || {
  echo "no kResourceExhausted refusal in probe output" >&2
  cat "$PROBE_LOG" >&2; exit 1; }
# The refusal must be immediate, not after the 30s stall drains.
(( PROBE_SECS < 20 )) || {
  echo "refusal took ${PROBE_SECS}s — the probe queued behind the stall" >&2
  exit 1; }
stop_server "$WORK/server2.log"  # cancels the held query and unblocks A
wait "$HOLD_PID" || true         # its query was cancelled; exit code is moot
HOLD_PID=""
grep -Eq 'shutdown: .* [1-9][0-9]* rejected by admission' "$WORK/server2.log" || {
  echo "server counters show no admission rejection" >&2
  cat "$WORK/server2.log" >&2; exit 1; }
echo "phase 2 OK (refused in ${PROBE_SECS}s)"

echo "server smoke OK"
